"""Tests for the graph and nested-data workload generators."""

import random

from repro.objects.values import SetVal, check_type
from repro.relational.algebra import transitive_closure_squaring
from repro.workloads.graphs import (
    binary_tree,
    cycle_graph,
    edge_count,
    grid_graph,
    layered_dag,
    node_count,
    path_graph,
    random_graph,
)
from repro.workloads.nested import (
    DEPARTMENTS_T,
    department_database,
    random_bits,
    random_object,
    random_type,
    tagged_booleans,
)


class TestGraphs:
    def test_path_graph_shape(self):
        g = path_graph(10)
        assert edge_count(g) == 9
        assert node_count(g) == 10

    def test_cycle_graph_closure_is_complete(self):
        g = cycle_graph(5)
        closure, _ = transitive_closure_squaring(frozenset(g.tuples))
        assert len(closure) == 25

    def test_binary_tree_edges(self):
        g = binary_tree(3)
        assert edge_count(g) == 2 ** 4 - 2

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert node_count(g) == 12
        assert edge_count(g) == 3 * 3 + 2 * 4

    def test_random_graph_is_reproducible(self):
        a = random_graph(10, 0.3, seed=1)
        b = random_graph(10, 0.3, seed=1)
        assert a.tuples == b.tuples

    def test_layered_dag_respects_layers(self):
        g = layered_dag(4, 3, seed=0)
        for src, dst in g.tuples:
            assert dst // 3 == src // 3 + 1


class TestNested:
    def test_random_object_inhabits_its_type(self):
        rng = random.Random(5)
        for _ in range(25):
            t = random_type(rng, max_height=2)
            v = random_object(t, rng)
            assert check_type(v, t)

    def test_department_database_type(self):
        db = department_database(4, 3, seed=1)
        assert isinstance(db, SetVal)
        assert check_type(db, DEPARTMENTS_T)
        assert len(db) == 4

    def test_department_database_reproducible(self):
        assert department_database(3, 2, seed=7) == department_database(3, 2, seed=7)

    def test_tagged_booleans_length(self):
        assert len(tagged_booleans([True, False, True])) == 3

    def test_random_bits_reproducible(self):
        assert random_bits(16, seed=3) == random_bits(16, seed=3)
        assert len(random_bits(16, seed=3)) == 16
