"""Tests for the graph and nested-data workload generators."""

import random

from repro.objects.values import SetVal, check_type
from repro.relational.algebra import transitive_closure_squaring
from repro.workloads.graphs import (
    binary_tree,
    cycle_graph,
    edge_count,
    grid_graph,
    layered_dag,
    node_count,
    path_graph,
    random_graph,
)
from repro.workloads.nested import (
    DEPARTMENTS_T,
    department_database,
    random_bits,
    random_object,
    random_type,
    tagged_booleans,
)


class TestGraphs:
    def test_path_graph_shape(self):
        g = path_graph(10)
        assert edge_count(g) == 9
        assert node_count(g) == 10

    def test_cycle_graph_closure_is_complete(self):
        g = cycle_graph(5)
        closure, _ = transitive_closure_squaring(frozenset(g.tuples))
        assert len(closure) == 25

    def test_binary_tree_edges(self):
        g = binary_tree(3)
        assert edge_count(g) == 2 ** 4 - 2

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert node_count(g) == 12
        assert edge_count(g) == 3 * 3 + 2 * 4

    def test_random_graph_is_reproducible(self):
        a = random_graph(10, 0.3, seed=1)
        b = random_graph(10, 0.3, seed=1)
        assert a.tuples == b.tuples

    def test_layered_dag_respects_layers(self):
        g = layered_dag(4, 3, seed=0)
        for src, dst in g.tuples:
            assert dst // 3 == src // 3 + 1


class TestNested:
    def test_random_object_inhabits_its_type(self):
        rng = random.Random(5)
        for _ in range(25):
            t = random_type(rng, max_height=2)
            v = random_object(t, rng)
            assert check_type(v, t)

    def test_department_database_type(self):
        db = department_database(4, 3, seed=1)
        assert isinstance(db, SetVal)
        assert check_type(db, DEPARTMENTS_T)
        assert len(db) == 4

    def test_department_database_reproducible(self):
        assert department_database(3, 2, seed=7) == department_database(3, 2, seed=7)

    def test_tagged_booleans_length(self):
        assert len(tagged_booleans([True, False, True])) == 3

    def test_random_bits_reproducible(self):
        assert random_bits(16, seed=3) == random_bits(16, seed=3)
        assert len(random_bits(16, seed=3)) == 16


class TestNestedGraphs:
    def test_adjacency_database_type_and_size(self):
        from repro.workloads.graphs import path_graph
        from repro.workloads.nested_graphs import ADJ_DB_T, adjacency_database

        db = adjacency_database(path_graph(6))
        assert check_type(db, ADJ_DB_T)
        assert len(db) == 6  # one record per node, sinks included

    def test_unnest_recovers_the_edge_set(self):
        from repro.nra.eval import run
        from repro.objects.values import to_python
        from repro.workloads.graphs import random_graph
        from repro.workloads.nested_graphs import adjacency_database, edges_query

        g = random_graph(9, 0.3, seed=5)
        db = adjacency_database(g)
        recovered = to_python(run(edges_query(), db))
        assert recovered == frozenset(g.tuples)

    def test_two_hop_matches_python_composition(self):
        from repro.nra.eval import run
        from repro.objects.values import to_python
        from repro.relational.algebra import natural_join_binary
        from repro.workloads.graphs import random_graph
        from repro.workloads.nested_graphs import adjacency_database, two_hop_query

        g = random_graph(10, 0.25, seed=3)
        db = adjacency_database(g)
        got = to_python(run(two_hop_query(), db))
        assert got == natural_join_binary(frozenset(g.tuples), frozenset(g.tuples))

    def test_nested_reachability_matches_flat_closure(self):
        from repro.nra.eval import run
        from repro.objects.values import to_python
        from repro.workloads.graphs import path_graph
        from repro.workloads.nested_graphs import adjacency_database, nested_reachability_query

        g = path_graph(7)
        db = adjacency_database(g)
        closure, _ = transitive_closure_squaring(frozenset(g.tuples))
        assert to_python(run(nested_reachability_query("logloop"), db)) == closure

    def test_nested_random_graph_reproducible(self):
        from repro.workloads.nested_graphs import nested_random_graph

        assert nested_random_graph(12, 0.2, seed=4) == nested_random_graph(12, 0.2, seed=4)
