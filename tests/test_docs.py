"""Documentation consistency: no dangling references from code to docs.

The repo once referenced a "substitution note in DESIGN.md" from two
docstrings while no DESIGN.md existed (and an EXPERIMENTS.md from the
benchmark harness).  This test makes that class of drift impossible to
reintroduce: every ``*.md`` file mentioned anywhere in the Python sources --
``src/``, ``tests/``, ``benchmarks/`` and ``examples/`` -- must exist in the
repository, and the documents the docstrings lean on hardest must actually
cover what they are cited for.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
SCANNED_DIRS = ("src", "tests", "benchmarks", "examples")

_MD_REF = re.compile(r"\b([A-Za-z0-9_][A-Za-z0-9_./-]*\.md)\b")


def _md_references():
    """Yield (source file, referenced markdown name) pairs from the Python tree."""
    for top in SCANNED_DIRS:
        for py in sorted((REPO_ROOT / top).rglob("*.py")):
            text = py.read_text(encoding="utf-8")
            for match in _MD_REF.finditer(text):
                yield py.relative_to(REPO_ROOT), match.group(1)


def test_every_md_reference_resolves():
    missing = []
    for source, ref in _md_references():
        # References are repo-root-relative (bare names like DESIGN.md).
        if not (REPO_ROOT / ref).exists():
            missing.append(f"{source}: {ref}")
    assert not missing, "dangling doc references:\n" + "\n".join(missing)


def test_the_docs_layer_exists():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "DESIGN.md").exists()


def test_design_md_contains_the_substitution_note():
    """eval.py and cost.py cite 'the substitution note in DESIGN.md'."""
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    assert "substitution note" in design
    assert "work" in design and "depth" in design


def test_src_files_that_cite_design_md_still_exist():
    citing = [str(src) for src, ref in _md_references() if ref == "DESIGN.md"]
    # The two original citation sites must keep citing (guards against the
    # note and its citations drifting apart silently).
    assert any("eval.py" in c for c in citing)
    assert any("cost.py" in c for c in citing)


def test_readme_mentions_every_top_level_package():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    packages = sorted(
        p.name for p in (SRC / "repro").iterdir() if p.is_dir() and not p.name.startswith("__")
    )
    missing = [p for p in packages if f"repro.{p}" not in readme]
    assert not missing, f"README.md module index is missing packages: {missing}"
