"""Tests for growth fitting, syntactic classification and the separation demos."""

import math

import pytest

from repro.complexity.classify import classify
from repro.complexity.fit import (
    best_fit,
    doubling_ratios,
    fit_model,
    growth_class,
    is_polylog,
    is_polynomial_not_exponential,
)
from repro.complexity.separations import (
    arithmetic_blowup,
    bounded_arithmetic_growth,
    bounded_powerset_growth,
    dcr_vs_sri_depth,
    powerset_growth,
)
from repro.nra.ast import (
    Bdcr,
    BoolConst,
    EmptySet,
    Lambda,
    Singleton,
    Union,
    Var,
    lam2,
)
from repro.objects.types import BASE, SetType
from repro.relational.queries import (
    parity_dcr,
    transitive_closure_dcr,
    transitive_closure_sri,
)


class TestFitting:
    NS = [8, 16, 32, 64, 128, 256]

    def test_recovers_logarithmic_series(self):
        ys = [math.log2(n + 1) * 3 + 1 for n in self.NS]
        assert growth_class(self.NS, ys) == "log"

    def test_recovers_linear_series(self):
        ys = [2 * n + 5 for n in self.NS]
        assert growth_class(self.NS, ys) == "linear"

    def test_recovers_quadratic_series(self):
        ys = [n * n for n in self.NS]
        assert growth_class(self.NS, ys) == "n^2"

    def test_recovers_constant_series(self):
        assert growth_class(self.NS, [7] * len(self.NS)) == "constant"

    def test_log_squared(self):
        ys = [math.log2(n + 1) ** 2 for n in self.NS]
        assert growth_class(self.NS, ys) in ("log^2",)

    def test_fit_model_coefficient(self):
        fit = fit_model("linear", self.NS, [3 * n for n in self.NS])
        assert fit.coefficient == pytest.approx(3, rel=1e-6)
        assert fit.predict(1000) == pytest.approx(3000, rel=1e-3)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_model("log", [4], [1])

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model("exp", self.NS, self.NS)

    def test_is_polylog_distinguishes(self):
        log_ys = [math.log2(n + 1) for n in self.NS]
        lin_ys = list(self.NS)
        assert is_polylog(self.NS, log_ys)
        assert not is_polylog(self.NS, lin_ys)

    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 4]) == [2.0, 2.0]

    def test_polynomial_vs_exponential(self):
        # On a geometric grid of n, polynomial series have bounded doubling
        # ratios while exponential series have ratios that themselves explode.
        geometric_ns = [2, 4, 8, 16, 32]
        poly = [n ** 2 for n in geometric_ns]
        expo = [2 ** n for n in geometric_ns]
        assert is_polynomial_not_exponential(geometric_ns, poly)
        assert not is_polynomial_not_exponential(geometric_ns, expo)


class TestClassification:
    def test_tc_dcr_is_ac1(self):
        report = classify(transitive_closure_dcr())
        assert report.nesting_depth == 1
        assert report.flat
        assert "AC^1" in report.parallel_class

    def test_parity_is_ac1(self):
        assert "AC^1" in classify(parity_dcr()).parallel_class

    def test_sri_query_gets_only_ptime(self):
        report = classify(transitive_closure_sri())
        assert report.uses_insert_recursion
        assert "PTIME" in report.sequential_class
        assert "no NC bound" in report.parallel_class

    def test_recursion_free_is_ac0(self):
        report = classify(Singleton(BoolConst(True)))
        assert report.nesting_depth == 0
        assert "AC^0" in report.parallel_class

    def test_bounded_nested_query_keeps_ack(self):
        q = Bdcr(
            EmptySet(BASE),
            Lambda("x", BASE, Singleton(Var("x"))),
            lam2("a", SetType(BASE), "b", SetType(BASE), Union(Var("a"), Var("b"))),
            EmptySet(BASE),
        )
        report = classify(q)
        assert report.bounded_only
        assert "AC^1" in report.parallel_class

    def test_report_renders_as_text(self):
        text = str(classify(transitive_closure_dcr()))
        assert "nesting depth" in text and "AC^1" in text


class TestSeparations:
    def test_powerset_growth_is_exponential(self):
        growth = powerset_growth([2, 4, 6, 8])
        assert [size for _, size in growth] == [4, 16, 64, 256]

    def test_bounded_powerset_growth_is_linear(self):
        growth = bounded_powerset_growth([2, 4, 6, 8])
        assert all(size <= n + 1 for n, size in growth)

    def test_arithmetic_blowup_doubles_bits_each_round(self):
        # geometric grid of iteration counts, so the exponential shape shows
        # up as exploding doubling ratios
        growth = arithmetic_blowup([2, 4, 8, 16])
        bits = [b for _, b in growth]
        assert bits[1] / bits[0] > 3
        assert not is_polynomial_not_exponential([n for n, _ in growth], bits)

    def test_bounded_arithmetic_stays_flat(self):
        growth = bounded_arithmetic_growth([2, 4, 6, 8])
        bits = [b for _, b in growth]
        assert max(bits) - min(bits) <= 14

    def test_dcr_vs_sri_depth_contrast(self):
        rows = dcr_vs_sri_depth([8, 64, 512])
        for n, dcr_depth, sri_depth in rows:
            assert dcr_depth <= math.log2(n) + 2
            assert sri_depth == n
