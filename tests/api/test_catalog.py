"""Databases and catalogs: registration, typecheck-backed schemas, versioning."""

import pytest

from repro.api import Catalog, Database, Q
from repro.objects.types import BASE, BOOL, ProdType, SetType
from repro.objects.values import SetVal, from_python
from repro.relational.database import OrderedDatabase
from repro.relational.relation import Relation
from repro.workloads.graphs import path_graph
from repro.workloads.nested_graphs import ADJ_DB_T, nested_random_graph

EDGES_T = SetType(ProdType(BASE, BASE))


def test_register_relation_infers_relation_type():
    db = Database("g").register("edges", path_graph(4))
    assert db.schema() == {"edges": EDGES_T}
    assert db["edges"] == path_graph(4).value()


def test_register_python_data_infers_type():
    db = Database().register("s", {1, 2, 3}).register("flags", {(1, True), (2, False)})
    assert db.schema()["s"] == SetType(BASE)
    assert db.schema()["flags"] == SetType(ProdType(BASE, BOOL))


def test_register_validates_value_against_declared_type():
    from repro.nra.errors import NRATypeError

    with pytest.raises(NRATypeError):
        Database().register("s", {1, 2}, type=SetType(BOOL))


def test_explicit_type_needed_for_empty_inner_sets():
    adj = nested_random_graph(8, 0.2, seed=3)
    # Inference cannot see through the sinks' empty successor sets ...
    with pytest.raises(TypeError):
        Database().register("adj", adj)
    # ... a declared type both registers and is validated.
    db = Database().register("adj", adj, type=ADJ_DB_T)
    assert db.schema()["adj"] == ADJ_DB_T


def test_duplicate_and_param_namespace_rejected():
    db = Database().register("edges", path_graph(3))
    with pytest.raises(ValueError):
        db.register("edges", path_graph(4))
    with pytest.raises(ValueError):
        db.register("$oops", {1})


def test_drop_bumps_version_and_sessions_refresh():
    db = Database("g").register("edges", path_graph(4))
    session = db.connect()
    assert len(session.execute(Q.coll("edges"))) == 3
    db.drop("edges")
    db.register("edges", path_graph(7))
    # The session re-interns the new collection because the version changed.
    assert len(session.execute(Q.coll("edges"))) == 6


def test_from_relations_and_from_ordered():
    r1 = Relation.from_pairs("e1", [(0, 1)])
    r2 = Relation.unary("names", ["a", "b"])
    db = Database.from_relations(r1, r2)
    assert set(db) == {"e1", "names"}
    odb = OrderedDatabase.of(r1, r2)
    db2 = Database.from_ordered(odb)
    assert db2.schema() == db.schema()
    assert db2["e1"] == db["e1"]


def test_catalog_lifecycle():
    cat = Catalog()
    cat.register(Database.of("g", edges=path_graph(4)))
    assert "g" in cat and cat.names() == ["g"]
    with pytest.raises(ValueError):
        cat.register(Database("g"))
    session = cat.connect("g")
    assert session.db.name == "g"
    cat.drop("g")
    assert "g" not in cat


def test_database_of_kwargs():
    db = Database.of("w", edges=path_graph(3), bits={(0, True), (1, False)})
    assert set(db) == {"edges", "bits"}
    assert isinstance(db["bits"], SetVal)
