"""Sessions: prepared statements, cursors, batching, stats, concurrency.

The load-bearing assertion here is the prepared-statement acceptance
criterion: ``prepare`` then ``execute`` with N distinct bindings performs
exactly one rewrite and one vectorized compile pass -- every post-prepare
execute must be a pure cache hit (zero plan-cache misses, zero compiled
subexpressions), while producing exactly the reference interpreter's values.
"""

import threading

import pytest

from repro.api import Database, PreparedStatement, Q, Row, connect, lift_constants
from repro.nra import ast
from repro.nra.ast import Const, Eq, Lambda, Proj1, Var
from repro.nra.eval import run as ref_run
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, from_python
from repro.relational.queries import reachable_from_query
from repro.workloads.graphs import path_graph, random_graph

EDGE_T = ProdType(BASE, BASE)


@pytest.fixture()
def session():
    return connect(Database.of("g", edges=path_graph(12)))


# ---------------------------------------------------------------------------
# Prepared statements: the cache-keying contract
# ---------------------------------------------------------------------------

def test_prepare_then_execute_compiles_once(session):
    q = Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))
    ps = session.prepare(q)
    after_prepare = session.stats.snapshot()
    # Preparing did the one rewrite and the one (multi-subexpression)
    # compile pass for the template.
    assert after_prepare.prepares == 1
    assert after_prepare.rewrites == 1
    assert after_prepare.vec_compiles > 0

    results = {}
    for src in range(10):
        results[src] = ps.execute(src=src).value

    # N distinct bindings: zero further rewrites, zero further compiles.
    assert session.stats.rewrites == after_prepare.rewrites
    assert session.stats.vec_compiles == after_prepare.vec_compiles
    assert session.stats.executes == after_prepare.executes + 10
    assert session.stats.plan_hits >= 10

    # Value-for-value against the reference interpreter.
    el = q.elaborate(session.schema(), session.engine.sigma)
    env = dict(session.db.environment())
    for src in range(10):
        env["$src"] = from_python(src)
        assert results[src] == ref_run(el.expr, None, env=env)


def test_preparing_same_template_twice_returns_cached(session):
    q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
    ps1 = session.prepare(q)
    ps2 = session.prepare(q)
    assert ps1 is ps2
    assert session.stats.prepares == 1
    assert session.stats.prepared_hits == 1


def test_unprepared_distinct_constants_recompile(session):
    """The counterfactual the prepared path removes: per-constant compiles."""
    before = session.stats.snapshot()
    for k in range(4):
        session.execute(Q.coll("edges").where(lambda e, k=k: e.fst == k))
    assert session.stats.rewrites - before.rewrites == 4
    assert session.stats.vec_compiles > before.vec_compiles


def test_prepare_raw_expr_lifts_constants(session):
    sel = ast.Apply(
        ast.Ext(
            Lambda(
                "e",
                EDGE_T,
                ast.If(
                    Eq(Proj1(Var("e")), Const(BaseVal(2), BASE)),
                    ast.Singleton(Var("e")),
                    ast.EmptySet(EDGE_T),
                ),
            )
        ),
        Var("edges"),
    )
    ps = session.prepare(sel)
    assert ps.param_names == ["c0"]
    # Default binding reproduces the original expression's result.
    assert ps.execute().fetchall() == [(2, 3)]
    # Rebinding the lifted slot needs no recompilation.
    snap = session.stats.snapshot()
    assert ps.execute(c0=7).fetchall() == [(7, 8)]
    assert session.stats.rewrites == snap.rewrites
    assert session.stats.vec_compiles == snap.vec_compiles


def test_lift_constants_dedups_equal_constants():
    e = ast.Pair(Const(BaseVal(1), BASE), ast.Pair(Const(BaseVal(1), BASE), Const(BaseVal(2), BASE)))
    template, types, defaults = lift_constants(e)
    assert sorted(types) == ["c0", "c1"]
    assert defaults["c0"] == BaseVal(1)
    assert defaults["c1"] == BaseVal(2)
    names = {n.name for n in ast.subexpressions(template) if isinstance(n, Var)}
    assert names == {"$c0", "$c1"}


def test_prepared_cache_distinguishes_lifted_defaults(session):
    """Two raw expressions differing only in their constants share a
    template but must not share a statement (regression: the cache keyed on
    the template alone, so the second prepare got the first one's
    defaults)."""

    def selection(k: int):
        return ast.Apply(
            ast.Ext(
                Lambda(
                    "e",
                    EDGE_T,
                    ast.If(
                        Eq(Proj1(Var("e")), Const(BaseVal(k), BASE)),
                        ast.Singleton(Var("e")),
                        ast.EmptySet(EDGE_T),
                    ),
                )
            ),
            Var("edges"),
        )

    ps3 = session.prepare(selection(3))
    ps5 = session.prepare(selection(5))
    assert ps3 is not ps5
    assert ps3.execute().fetchall() == [(3, 4)]
    assert ps5.execute().fetchall() == [(5, 6)]
    # Same template, same defaults -> cached; different backend -> distinct.
    assert session.prepare(selection(3)) is ps3
    assert session.prepare(selection(3), backend="memo") is not ps3


def test_unbound_and_unknown_params_raise(session):
    q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
    ps = session.prepare(q)
    with pytest.raises(KeyError):
        ps.execute()
    with pytest.raises(KeyError):
        ps.execute(src=1, extra=2)


# ---------------------------------------------------------------------------
# executemany
# ---------------------------------------------------------------------------

def test_executemany_single_param_delegates_to_run_many(session):
    q = reachable_from_query()
    ps = session.prepare(q)
    snap = session.stats.snapshot()
    cursors = session.executemany(ps, [0, 3, 7, 0])
    assert session.stats.batches == snap.batches + 1
    assert session.stats.rewrites == snap.rewrites + 1  # the closed Lambda form
    want = [
        session.execute(q, params={"src": s}).value for s in (0, 3, 7, 0)
    ]
    assert [c.value for c in cursors] == want
    # Dict bindings are accepted too.
    again = session.executemany(q, [{"src": 0}, {"src": 3}])
    assert [c.value for c in again] == want[:2]


def test_executemany_respects_prepared_backend(session):
    """A statement prepared for the memo backend batches on memo, not the
    session default (regression: the single-param fast path dropped it)."""
    from repro.engine.memo import MemoStats

    q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
    ps = session.prepare(q, backend="memo")
    curs = session.executemany(ps, [0, 1])
    assert isinstance(session.engine.last_stats, MemoStats)
    assert [c.fetchall() for c in curs] == [[(0, 1)], [(1, 2)]]


def test_executemany_multi_param_falls_back(session):
    q = Q.coll("edges").where(
        lambda e: e.fst.eq(Q.param("a")).or_(e.snd.eq(Q.param("b")))
    )
    cursors = session.executemany(q, [{"a": 0, "b": 2}, {"a": 1, "b": 3}])
    assert len(cursors) == 2
    with pytest.raises(TypeError):
        session.executemany(q, [0, 1])


# ---------------------------------------------------------------------------
# Cursors
# ---------------------------------------------------------------------------

def test_cursor_streams_and_counts(session):
    cur = session.execute(Q.coll("edges"))
    assert len(cur) == 11
    first = cur.fetchone()
    assert isinstance(first, tuple)
    some = cur.fetchmany(4)
    assert len(some) == 4
    rest = list(cur)
    assert len(rest) == 6
    assert cur.fetchone() is None
    assert cur.rownumber == 11
    assert session.stats.rows_streamed == 11


def test_cursor_fetchall_and_rows(session):
    cur = session.execute(Q.coll("edges"))
    assert sorted(cur.fetchall()) == [(i, i + 1) for i in range(11)]
    assert cur.fetchall() == []
    assert session.execute(Q.coll("edges")).rows() == frozenset(
        (i, i + 1) for i in range(11)
    )


def test_scalar_cursors(session):
    cur = session.execute(Q.coll("edges").exists())
    assert cur.scalar() is True
    assert len(cur) == 1
    with pytest.raises(TypeError):
        session.execute(Q.coll("edges")).scalar()


# ---------------------------------------------------------------------------
# Backends, raw values, lifecycle
# ---------------------------------------------------------------------------

def test_backends_agree_through_sessions():
    db = Database.of("g", edges=random_graph(8, 0.3, seed=5))
    q = Q.coll("edges").fix()
    values = {
        backend: connect(db, backend=backend).execute(q).value
        for backend in ("reference", "memo", "vectorized")
    }
    assert values["reference"] == values["memo"] == values["vectorized"]


def test_sessions_can_share_one_engine():
    db = Database.of("g", edges=path_graph(8))
    s1 = connect(db)
    s2 = connect(db, engine=s1.engine)
    q = Q.coll("edges").fix()
    a = s1.execute(q)
    snap = s2.stats.snapshot()
    b = s2.execute(q)
    assert a.value == b.value
    # The second session rides the first one's plan: a hit, not a rewrite.
    assert s2.stats.rewrites == snap.rewrites
    assert s2.stats.plan_hits == snap.plan_hits + 1


def test_closed_session_refuses_work(session):
    with session as s:
        s.execute(Q.coll("edges"))
    with pytest.raises(RuntimeError):
        session.execute(Q.coll("edges"))
    with pytest.raises(RuntimeError):
        session.prepare(Q.coll("edges"))


def test_schemaless_session_runs_typed_queries():
    s = connect()
    cur = s.execute(Q.const({(0, 1), (1, 2)}).fix())
    assert sorted(cur.fetchall()) == [(0, 1), (0, 2), (1, 2)]


# ---------------------------------------------------------------------------
# Concurrency: one shared engine, many threads
# ---------------------------------------------------------------------------

def test_concurrent_sessions_on_one_engine_are_correct():
    db = Database.of("g", edges=random_graph(10, 0.25, seed=9))
    shared = connect(db)
    q = Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))
    ps = shared.prepare(q)
    el = q.elaborate(db.schema(), shared.engine.sigma)
    env_base = dict(db.environment())

    expected = {}
    for src in range(10):
        env = dict(env_base)
        env["$src"] = from_python(src)
        expected[src] = ref_run(el.expr, None, env=env)

    errors = []

    def worker(start: int) -> None:
        try:
            for i in range(20):
                src = (start + i) % 10
                got = ps.execute(src=src).value
                if got != expected[src]:
                    errors.append((src, got))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert shared.stats.executes >= 120
