"""Edge-case coverage for the query-service API (PR-4 satellite).

The corners the main api suites walk past: cursor exhaustion and repeated
iteration, ``executemany`` with zero bindings, preparing a parameterless
query, and session stats accounting across an ``Engine.clear_plans`` issued
mid-session.
"""

import pytest

from repro.api import Database, Q, connect
from repro.workloads.graphs import path_graph


@pytest.fixture()
def session():
    return connect(Database.of("g", edges=path_graph(10)))


# ---------------------------------------------------------------------------
# Cursor exhaustion / double iteration
# ---------------------------------------------------------------------------

class TestCursorExhaustion:
    def test_fetchone_returns_none_after_exhaustion(self, session):
        cur = session.execute(Q.coll("edges"))
        n = len(cur)
        rows = [cur.fetchone() for _ in range(n)]
        assert all(r is not None for r in rows)
        assert cur.fetchone() is None
        assert cur.fetchone() is None  # stays exhausted, no error
        assert cur.rownumber == n

    def test_second_iteration_yields_nothing(self, session):
        cur = session.execute(Q.coll("edges"))
        first = list(cur)
        assert len(first) == len(cur)
        assert list(cur) == []  # forward-only: already drained
        assert cur.fetchall() == []

    def test_partial_iteration_then_fetchall_gets_the_rest(self, session):
        cur = session.execute(Q.coll("edges"))
        n = len(cur)
        it = iter(cur)
        head = [next(it), next(it), next(it)]
        rest = cur.fetchall()
        assert len(head) + len(rest) == n
        assert set(head).isdisjoint(rest)

    def test_fetchmany_beyond_the_end_is_empty(self, session):
        cur = session.execute(Q.coll("edges"))
        assert len(cur.fetchmany(10_000)) == len(cur)
        assert cur.fetchmany(10_000) == []

    def test_exhaustion_counts_rows_once(self, session):
        cur = session.execute(Q.coll("edges"))
        list(cur)
        list(cur)  # second drain converts nothing
        assert session.stats.rows_streamed == len(cur)


# ---------------------------------------------------------------------------
# executemany with zero bindings
# ---------------------------------------------------------------------------

class TestExecutemanyZeroBindings:
    def test_zero_bindings_returns_no_cursors(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        assert session.executemany(q, []) == []

    def test_zero_bindings_still_counts_the_batch(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        before = session.stats.snapshot()
        session.executemany(q, [])
        assert session.stats.batches == before.batches + 1
        assert session.stats.executes == before.executes

    def test_zero_bindings_multi_param_template(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("a")).where(
            lambda e: e.snd == Q.param("b")
        )
        assert session.executemany(q, []) == []


# ---------------------------------------------------------------------------
# prepare on a parameterless query
# ---------------------------------------------------------------------------

class TestParameterlessPrepare:
    def test_prepare_and_execute_without_params(self, session):
        ps = session.prepare(Q.coll("edges"))
        assert ps.param_names == []
        assert ps.execute().rows() == session.execute(Q.coll("edges")).rows()

    def test_parameterless_prepare_is_cached(self, session):
        ps1 = session.prepare(Q.coll("edges"))
        ps2 = session.prepare(Q.coll("edges"))
        assert ps1 is ps2
        assert session.stats.prepared_hits == 1

    def test_parameterless_executemany_needs_dict_bindings(self, session):
        ps = session.prepare(Q.coll("edges"))
        # Zero-parameter templates take the multi-param path: each binding
        # must be a dict (and an empty one at that).
        cursors = session.executemany(ps, [{}, {}])
        expected = session.execute(Q.coll("edges")).rows()
        assert [c.rows() for c in cursors] == [expected, expected]

    def test_supplying_a_param_to_a_parameterless_query_raises(self, session):
        ps = session.prepare(Q.coll("edges"))
        with pytest.raises(KeyError):
            ps.execute(src=1)


# ---------------------------------------------------------------------------
# Session stats across clear_plans
# ---------------------------------------------------------------------------

class TestStatsAcrossClearPlans:
    def test_rerun_after_clear_plans_recompiles_and_is_counted(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        session.execute(q, params={"src": 1})
        snap = session.stats.snapshot()
        session.engine.clear_plans()
        session.execute(q, params={"src": 1})
        # The rewrite plan was dropped, so this session pays (and records)
        # a fresh rewrite and fresh vectorized compiles.
        assert session.stats.rewrites == snap.rewrites + 1
        assert session.stats.vec_compiles > snap.vec_compiles
        assert session.stats.executes == snap.executes + 1

    def test_warm_rerun_without_clear_is_all_hits(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        session.execute(q, params={"src": 1})
        snap = session.stats.snapshot()
        session.execute(q, params={"src": 2})
        assert session.stats.rewrites == snap.rewrites
        assert session.stats.vec_compiles == snap.vec_compiles
        assert session.stats.plan_hits == snap.plan_hits + 1

    def test_results_unchanged_across_clear_plans(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        before = session.execute(q, params={"src": 4}).rows()
        session.engine.clear_plans()
        assert session.execute(q, params={"src": 4}).rows() == before

    def test_prepared_statement_survives_clear_plans(self, session):
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        ps = session.prepare(q)
        want = ps.execute(src=2).rows()
        session.engine.clear_plans()
        # The statement object outlives the engine caches; execution pays a
        # fresh rewrite but returns the same rows.
        assert ps.execute(src=2).rows() == want
