"""The fluent builder: every combinator cross-checked against the reference.

The builder's contract is that it elaborates to *exactly* the NRA the paper's
expression library would spell by hand, so each test runs the elaborated
template through :func:`repro.nra.eval.run` (the oracle) and compares the
session's answer value-for-value.
"""

import pytest

from repro.api import Database, Q, Row, connect
from repro.nra.eval import run as ref_run
from repro.nra.typecheck import infer
from repro.objects.types import BASE, BOOL, ProdType, SetType
from repro.objects.values import from_python, to_python
from repro.relational.queries import (
    query_library,
    reachable_pairs_query,
    transitive_closure_dcr,
)
from repro.workloads.graphs import binary_tree, path_graph, random_graph

EDGES_T = SetType(ProdType(BASE, BASE))


@pytest.fixture()
def session():
    db = Database.of("g", edges=random_graph(9, 0.25, seed=2))
    return connect(db)


def check(session, query, params=None):
    """Session answer == reference interpreter answer on the same template."""
    cur = session.execute(query, params=params)
    el = query.elaborate(session.schema(), session.engine.sigma)
    env = dict(session.db.environment())
    for name, value in (params or {}).items():
        env["$" + name] = from_python(value)
    want = ref_run(el.expr, None, env=env)
    assert cur.value == want
    return cur


def test_scan(session):
    cur = check(session, Q.coll("edges"))
    assert sorted(cur.fetchall()) == sorted(to_python(session.db["edges"]))


def test_where(session):
    cur = check(session, Q.coll("edges").where(lambda e: e.fst == 0))
    assert all(a == 0 for a, _ in cur.fetchall())


def test_where_with_param(session):
    q = Q.coll("edges").where(lambda e: e.snd == Q.param("dst"))
    cur = check(session, q, params={"dst": 3})
    assert all(b == 3 for _, b in cur.fetchall())


def test_map_swap(session):
    q = Q.coll("edges").map(lambda e: Row.pair(e.snd, e.fst))
    cur = check(session, q)
    edges = set(to_python(session.db["edges"]))
    assert set(cur.fetchall()) == {(b, a) for a, b in edges}


def test_flat_map(session):
    # Each edge maps to the set of edges continuing it; the union is the
    # source set of the two-hop composition.
    q = Q.coll("edges").flat_map(
        lambda e: Q.coll("edges").where(lambda f: f.fst == e.snd)
    )
    check(session, q)


def test_project(session):
    firsts = check(session, Q.coll("edges").project(1))
    seconds = check(session, Q.coll("edges").project(2))
    edges = set(to_python(session.db["edges"]))
    assert set(firsts.fetchall()) == {a for a, _ in edges}
    assert set(seconds.fetchall()) == {b for _, b in edges}


def test_union_difference_intersect_cross(session):
    e = Q.coll("edges")
    swapped = e.map(lambda r: Row.pair(r.snd, r.fst))
    check(session, e | swapped)
    check(session, e - swapped)
    check(session, e & swapped)
    cur = check(session, e.project(1).cross(e.project(2)))
    assert len(cur) > 0


def test_join_and_compose_agree(session):
    joined = Q.coll("edges").join(
        Q.coll("edges"),
        left_key=lambda e: e.snd,
        right_key=lambda f: f.fst,
        result=lambda e, f: Row.pair(e.fst, f.snd),
    )
    composed = Q.coll("edges").compose(Q.coll("edges"))
    a = check(session, joined)
    b = check(session, composed)
    assert a.value == b.value


def test_join_key_type_mismatch_raises(session):
    q = Q.coll("edges").join(
        Q.coll("edges"),
        left_key=lambda e: e,
        right_key=lambda f: f.fst,
    )
    with pytest.raises(TypeError):
        session.execute(q)


def test_nest_unnest_roundtrip(session):
    q = Q.coll("edges").nest().unnest()
    cur = check(session, q)
    assert cur.value == session.db["edges"]


def test_fix_is_transitive_closure(session):
    cur = check(session, Q.coll("edges").fix())
    tc_ref = ref_run(
        reachable_pairs_query("dcr"), session.db["edges"]
    )
    assert cur.value == tc_ref


def test_exists_is_empty_contains(session):
    assert check(session, Q.coll("edges").exists()).scalar() is True
    assert check(session, Q.coll("edges").is_empty()).scalar() is False
    some_edge = next(iter(to_python(session.db["edges"])))
    assert check(session, Q.coll("edges").contains(some_edge)).scalar() is True
    q = Q.coll("edges").contains(Q.param("probe", ProdType(BASE, BASE)))
    assert check(session, q, params={"probe": some_edge}).scalar() is True


def test_pipe_paper_query(session):
    cur = check(session, Q.coll("edges").pipe(transitive_closure_dcr()))
    assert cur.value == ref_run(transitive_closure_dcr(), session.db["edges"])


def test_query_library_cross_checks(session):
    for name, q in query_library().items():
        params = {"src": 0} if name == "reachable_from" else None
        check(session, q, params=params)


def test_infer_type_validates_elaboration(session):
    schema = session.schema()
    assert Q.coll("edges").infer_type(schema) == EDGES_T
    assert Q.coll("edges").fix().infer_type(schema) == EDGES_T
    assert Q.coll("edges").exists().infer_type(schema) == BOOL
    q = Q.coll("edges").map(lambda e: e.fst)
    assert q.infer_type(schema) == SetType(BASE)


def test_elaboration_is_cached_per_schema(session):
    q = Q.coll("edges").fix()
    schema = session.schema()
    first = q.elaborate(schema)
    second = q.elaborate(dict(schema))
    assert first is second  # same template object -> same engine plan keys


def test_param_type_conflict_raises():
    q = Q.coll("edges", EDGES_T).where(
        lambda e: e.fst.eq(Q.param("x")).and_(e.eq(Q.param("x", ProdType(BASE, BASE))))
    )
    with pytest.raises(TypeError):
        q.elaborate({})


def test_unknown_collection_raises():
    with pytest.raises(KeyError):
        Q.coll("nope").elaborate({})


def test_q_const_and_raw():
    session = connect()
    cur = session.execute(Q.const({(1, 2), (3, 4)}).project(1))
    assert set(cur.fetchall()) == {1, 3}
    from repro.nra.ast import Var
    raw = Q.raw(Var("edges"), EDGES_T).fix()
    db = Database.of("g", edges=path_graph(5))
    assert len(db.connect().execute(raw)) == 10


def test_row_misuse_raises(session):
    with pytest.raises(TypeError):
        session.execute(Q.coll("edges").where(lambda e: e.fst))  # not boolean
    with pytest.raises(TypeError):
        session.execute(Q.coll("edges").map(lambda e: e.fst.fst))  # not a pair


def test_param_outside_elaboration_raises():
    with pytest.raises(RuntimeError):
        Q.param("x").__as_row__()
