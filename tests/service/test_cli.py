"""CLI tests: the argparse frontend against a live server.

`typer`/`rich` are optional and absent in this environment, so these tests
exercise the fallback frontend -- which is the same command layer the pretty
frontend wraps (rendering aside), so the logic coverage carries over.
``serve`` itself is tested as a subprocess in the CI smoke job; here its
building blocks (workload specs, binding parsers) are tested directly.
"""

import json

import pytest

from repro.service.cli import (
    _demo_database,
    _parse_bindings,
    _parse_types,
    cmd_query,
    cmd_sessions,
    cmd_status,
    cmd_views,
    main,
)
from repro.service.server import QueryServer
from repro.workloads.databases import graph_database

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def server():
    srv = QueryServer(db=graph_database(12, "path", mutable=True))
    srv.start_in_thread()
    yield srv
    srv.stop()


class TestParsers:
    def test_bindings_parse_wire_json(self):
        from repro.objects.values import BaseVal, PairVal, from_python

        out = _parse_bindings(["a=7", 'b="x"', "c=[1,2]", "word=plain"])
        assert out["a"] == BaseVal(7)
        assert out["b"] == BaseVal("x")
        assert out["c"] == PairVal(BaseVal(1), BaseVal(2))
        assert out["word"] == BaseVal("plain")

    def test_bindings_reject_bare_names(self):
        with pytest.raises(ValueError):
            _parse_bindings(["nokey"])

    def test_types_default_to_atoms(self):
        params = _parse_bindings(["a=1", "b=2"])
        types = _parse_types(["b=(D x D)"], params)
        assert types == {"a": "D", "b": "(D x D)"}

    def test_workload_spec(self):
        db = _demo_database("cycle:6")
        assert len(db["edges"].elements) == 6
        with pytest.raises(ValueError):
            _demo_database("klein-bottle:4")


class TestCommands:
    def test_query_table_output(self, server, capsys):
        rc = cmd_query("edges", host=server.host, port=server.port, limit=3)
        out = capsys.readouterr().out
        assert rc == 0
        assert "11 row(s)" in out
        assert "(0, 1)" in out
        assert "more" in out  # truncation is stated, not silent

    def test_query_json_output(self, server, capsys):
        rc = cmd_query("edges", host=server.host, port=server.port,
                       limit=-1, as_json=True)
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["total"] == 11
        assert [0, 1] in payload["rows"]

    def test_query_with_params(self, server, capsys):
        rc = cmd_query(
            r"(ext(\e:(D x D). if eq(pi1(e), $src) then {e} else empty[(D x D)]))(edges)",
            host=server.host, port=server.port,
            params=["src=4"], as_json=True,
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["rows"] == [[4, 5]]

    def test_status(self, server, capsys):
        rc = cmd_status(server.host, server.port, as_json=True)
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["server"] == "repro-service/1"
        assert payload["max_sessions"] == 32

    def test_sessions_and_views_render(self, server, capsys):
        assert cmd_sessions(server.host, server.port) == 0
        assert cmd_views(server.host, server.port) == 0
        out = capsys.readouterr().out
        assert "sessions" in out and "materialized views" in out


class TestMain:
    def test_main_runs_query(self, server, capsys):
        rc = main(["query", "edges", "--host", server.host,
                   "--port", str(server.port), "--limit", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["total"] == 11

    def test_main_runs_prepare_with_binds(self, server, capsys):
        rc = main([
            "prepare",
            r"(ext(\e:(D x D). if eq(pi1(e), $src) then {e} else empty[(D x D)]))(edges)",
            "--host", server.host, "--port", str(server.port),
            "--param", "src=0", "--bind", "src=5", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        totals = [e["total"] for e in payload["executions"]]
        assert totals == [1, 1]
        assert payload["executions"][1]["rows"] == [[5, 6]]

    def test_main_reports_connection_errors(self, capsys):
        rc = main(["status", "--port", "1"])  # nothing listens on port 1
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_main_reports_bad_workload(self, capsys):
        rc = main(["serve", "--workload", "donut:3"])
        assert rc == 1
        assert "unknown workload" in capsys.readouterr().err
