"""Integration tests: a live server, real sockets, the full client SDK.

The acceptance path of the service subsystem: handshake -> prepare ->
chunked cursor streaming -> materialize -> change-notification push after a
``Database.insert``; plus N concurrent clients, all three admission-control
gates answering typed ``SERVER_BUSY`` (never hanging), typed error mapping,
client timeouts, and wire-level misbehaviour against the real listener.

Servers here run on a daemon thread (``start_in_thread``) with OS-assigned
ports, so the suite parallelizes and never collides.  Tests that mutate a
database or saturate a gate build their own server; read-only tests share
one.
"""

import socket
import threading
import time

import pytest

from repro.api import Q
from repro.nra.errors import NRAEvalError, NRAParseError
from repro.nra.externals import ExternalFunction, Signature
from repro.objects.types import BASE
from repro.service import (
    ConnectionClosed,
    QueryServer,
    ServerBusy,
    ServerConfig,
    ServiceTimeout,
    connect,
)
from repro.service.protocol import (
    FRAME_TOO_LARGE,
    PROTOCOL_MISMATCH,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.workloads.databases import graph_database

pytestmark = pytest.mark.service

PATH_N = 48  # the shared read-only server's path graph: edges (i, i+1)


@pytest.fixture(scope="module")
def server():
    srv = QueryServer(db=graph_database(PATH_N, "path", mutable=True))
    srv.start_in_thread()
    yield srv
    srv.stop()


@pytest.fixture()
def mutable_server():
    srv = QueryServer(db=graph_database(16, "path", mutable=True))
    srv.start_in_thread()
    yield srv
    srv.stop()


def reach_query():
    """Transitive-closure-from-$src over the ``edges`` collection."""
    return Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))


def expected_reach(src: int, n: int = PATH_N) -> set:
    return {(src, j) for j in range(src + 1, n)}


# -- the acceptance path ----------------------------------------------------------

class TestEndToEnd:
    def test_handshake_carries_schema_and_version(self, server):
        with connect(server.host, server.port) as conn:
            assert conn.protocol == PROTOCOL_VERSION
            assert conn.db_name == f"path-{PATH_N}"
            assert "edges" in conn.schema
            assert str(conn.schema["edges"]) != ""

    def test_execute_streams_in_chunks(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            cur = s.execute("edges", chunk=7)
            assert cur.total == PATH_N - 1
            rows = list(cur)
            assert len(rows) == PATH_N - 1
            assert set(rows) == {(i, i + 1) for i in range(PATH_N - 1)}
            # chunk smaller than the result forces server-side fetches
            assert cur.rownumber == PATH_N - 1

    def test_fetchmany_across_chunk_boundaries(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            cur = s.execute("edges", chunk=5)
            first = cur.fetchmany(13)  # crosses two chunk boundaries
            rest = cur.fetchall()
            assert len(first) == 13
            assert len(first) + len(rest) == PATH_N - 1

    def test_prepare_then_execute_per_binding(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            stmt = s.prepare(reach_query())
            assert stmt.param_names == ["src"]
            for src in (0, 10, PATH_N - 2):
                got = set(stmt.execute(src=src).fetchall())
                assert got == expected_reach(src)

    def test_fluent_query_ships_as_text(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            q = Q.coll("edges").where(lambda e: e.fst == 3)
            assert set(s.execute(q).fetchall()) == {(3, 4)}

    def test_scalar_results(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            cur = s.execute("isempty(edges)")
            assert cur.scalar() is False
            with pytest.raises(TypeError):
                s.execute("edges").scalar()

    def test_materialize_and_push_after_remote_insert(self, mutable_server):
        srv = mutable_server
        with connect(srv.host, srv.port) as conn, conn.session() as s:
            view = s.materialize(Q.coll("edges").fix(), name="tc")
            before = view.size
            reply = s.insert("edges", [(15, 16)])
            assert reply["applied"] == 1
            change = view.notifications(timeout=10.0)
            assert len(change.inserted) > 0 and not change.deleted
            assert change.size == before + len(change.inserted)
            assert (0, 16) in change.inserted  # closure reached the new node
            assert (0, 16) in view.rows()

    def test_push_after_in_process_database_insert(self, mutable_server):
        """The acceptance criterion: a push after a raw ``Database.insert``.

        The commit happens on the test thread, not an executor thread --
        the listener must still hop onto the event loop and out the socket.
        """
        srv = mutable_server
        with connect(srv.host, srv.port) as conn, conn.session() as s:
            view = s.materialize(Q.coll("edges").fix(), name="tc")
            srv.db.insert("edges", [(20, 21)])
            change = view.notifications(timeout=10.0)
            assert (20, 21) in change.inserted

    def test_delete_pushes_deletions(self, mutable_server):
        srv = mutable_server
        with connect(srv.host, srv.port) as conn, conn.session() as s:
            view = s.materialize(Q.coll("edges").fix(), name="tc")
            s.delete("edges", [(0, 1)])
            change = view.notifications(timeout=10.0)
            assert (0, 1) in change.deleted and not change.inserted

    def test_unsubscribed_view_gets_no_queue(self, mutable_server):
        srv = mutable_server
        with connect(srv.host, srv.port) as conn, conn.session() as s:
            view = s.materialize("edges", subscribe=False)
            assert not view.subscribed
            with pytest.raises(RuntimeError):
                view.notifications(timeout=0.1)

    def test_view_registry_and_close(self, mutable_server):
        srv = mutable_server
        with connect(srv.host, srv.port) as conn, conn.session() as s:
            view = s.materialize("edges", name="plain")
            listed = conn.views()
            assert [v["name"] for v in listed] == ["plain"]
            view.close()
            assert conn.views() == []


# -- concurrency ------------------------------------------------------------------

class TestConcurrentClients:
    def test_eight_clients_stream_prepared_cursors(self, server):
        """N connections, each preparing and streaming; results stay exact."""
        n_clients = 8
        errors = []
        results = {}

        def client(i: int) -> None:
            try:
                with connect(server.host, server.port) as conn:
                    with conn.session() as s:
                        stmt = s.prepare(reach_query())
                        for src in (i, i + 8, i + 16):
                            cur = stmt.execute(src=src)
                            rows = set()
                            while True:
                                batch = cur.fetchmany(9)
                                if not batch:
                                    break
                                rows.update(batch)
                            results[(i, src)] = rows
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append((i, exc))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        for (i, src), rows in results.items():
            assert rows == expected_reach(src), (i, src)

    def test_many_sessions_one_connection(self, server):
        with connect(server.host, server.port) as conn:
            sessions = [conn.session() for _ in range(4)]
            try:
                cursors = [s.execute("edges", chunk=11) for s in sessions]
                for cur in cursors:
                    assert len(cur.fetchall()) == PATH_N - 1
                sids = {row["session"] for row in conn.sessions()}
                assert {s.sid for s in sessions} <= sids
            finally:
                for s in sessions:
                    s.close()


# -- admission control ------------------------------------------------------------

# Module-level so the gate's impl stays picklable-shaped like other externals.
_GATE = threading.Event()


def _gate_impl(v):
    _GATE.wait(timeout=30)
    return v


GATE_SIGMA = Signature([
    ExternalFunction("gate", BASE, BASE, _gate_impl, "blocks until released"),
])

#: One blocked oracle call: evaluates @gate over a one-element set.
GATE_QUERY = r"(ext(\x:D. {@gate(x)}))({1})"


@pytest.fixture()
def gated_server():
    _GATE.clear()
    srv = QueryServer(
        db=graph_database(8, "path", mutable=True),
        sigma=GATE_SIGMA,
        config=ServerConfig(max_sessions=2, max_inflight=1, max_queue_depth=1),
    )
    srv.start_in_thread()
    yield srv
    _GATE.set()  # release any stragglers before teardown
    srv.stop()
    _GATE.clear()


def _poll(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestAdmissionControl:
    def test_session_cap_yields_typed_busy(self, gated_server):
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s1, s2 = conn.session(), conn.session()
            with pytest.raises(ServerBusy):
                conn.session()
            s2.close()
            s3 = conn.session()  # the slot frees deterministically
            s3.close()
            s1.close()

    def test_inflight_cap_yields_typed_busy(self, gated_server):
        """Saturate the per-session cap with a blocked oracle; no hangs."""
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s = conn.session()
            done = {}

            def blocked() -> None:
                done["rows"] = s.execute(GATE_QUERY, timeout=30).fetchall()

            t = threading.Thread(target=blocked)
            t.start()
            try:
                assert _poll(lambda: conn.status()["inflight"] == 1)
                with pytest.raises(ServerBusy):
                    s.execute("edges")
            finally:
                _GATE.set()
                t.join(timeout=30)
            assert done["rows"] == [1]  # @gate is identity
            # after release the gate opens for good: the session drains
            assert _poll(lambda: conn.status()["inflight"] == 0)
            assert len(s.execute("edges").fetchall()) == 7
            s.close()

    def test_queue_depth_yields_typed_busy(self, gated_server):
        """A second session hits the global queue gate, not the session cap."""
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s1, s2 = conn.session(), conn.session()
            t = threading.Thread(
                target=lambda: s1.execute(GATE_QUERY, timeout=30).fetchall()
            )
            t.start()
            try:
                assert _poll(lambda: conn.status()["queue_depth"] == 1)
                with pytest.raises(ServerBusy):
                    s2.execute("edges")
                status = conn.status()
                assert status["stats"]["busy_rejections"] >= 1
            finally:
                _GATE.set()
                t.join(timeout=30)
            s1.close()
            s2.close()

    def test_busy_message_names_the_gate(self, gated_server):
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            conn.session(), conn.session()
            with pytest.raises(ServerBusy, match="session cap"):
                conn.session()


# -- errors and timeouts ----------------------------------------------------------

class TestErrorsAndTimeouts:
    def test_parse_error_maps_typed(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            with pytest.raises(NRAParseError):
                s.execute("union(")

    def test_eval_error_maps_typed(self, server):
        # pi1 of a set fails at evaluation (execute does not typecheck,
        # matching the in-process Session contract).
        with connect(server.host, server.port) as conn, conn.session() as s:
            with pytest.raises(NRAEvalError):
                s.execute("pi1(edges)")

    def test_unknown_handles_map_to_key_error(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            with pytest.raises(KeyError):
                conn.request("fetch", session=s.sid, cursor="c999", size=1)
            with pytest.raises(KeyError):
                conn.request("execute_statement", session=s.sid, statement="p999")
            with pytest.raises(KeyError):
                conn.request("view_rows", session=s.sid, view="v999")
        with connect(server.host, server.port) as conn:
            with pytest.raises(KeyError):
                conn.request("execute", session="s999", query="edges")

    def test_unknown_op_is_reported(self, server):
        with connect(server.host, server.port) as conn:
            with pytest.raises(Exception) as info:
                conn.request("frobnicate")
            assert "unknown op" in str(info.value)

    def test_client_timeout_leaves_connection_usable(self, gated_server):
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s = conn.session()
            with pytest.raises(ServiceTimeout):
                s.execute(GATE_QUERY, timeout=0.2)
            _GATE.set()
            # the late response is dropped; the connection keeps working
            assert _poll(lambda: conn.status()["inflight"] == 0)
            assert len(s.execute("edges").fetchall()) == 7
            s.close()

    def test_closed_session_refuses_work(self, server):
        with connect(server.host, server.port) as conn:
            s = conn.session()
            s.close()
            with pytest.raises(KeyError):
                conn.request("execute", session=s.sid, query="edges")


# -- late-response reaping: a client timeout must not leak server handles ---------

#: Seven gated rows on the 8-node path graph (the edge sources): with a
#: small chunk the reply carries a server-side cursor handle.
GATE_MANY_QUERY = (
    r"(ext(\x:D. {@gate(x)}))((ext(\e:D x D. {pi1(e)}))(edges))"
)


class TestLateResponseReaping:
    def test_timed_out_execute_frees_server_cursor(self, gated_server):
        """The leak: an abandoned execute reply carries a live cursor id."""
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s = conn.session()
            # Sanity: with the gate open this query really needs a cursor.
            _GATE.set()
            cur = s.execute(GATE_MANY_QUERY, chunk=2)
            assert cur._cid is not None
            assert s.stats()["cursors"] == 1
            cur.close()
            assert s.stats()["cursors"] == 0
            # Now time out client-side while the oracle blocks.
            _GATE.clear()
            with pytest.raises(ServiceTimeout):
                s.execute(GATE_MANY_QUERY, chunk=2, timeout=0.2)
            assert conn._abandoned  # the request is tracked for reaping
            _GATE.set()
            # The late response arrives, its cursor handle is reaped -- the
            # registry drains to zero instead of holding it until close.
            assert _poll(lambda: not conn._abandoned)
            assert _poll(lambda: s.stats()["cursors"] == 0)
            # And the connection stays usable.
            assert len(s.execute("edges").fetchall()) == 7
            s.close()

    def test_timed_out_materialize_frees_server_view(self, gated_server):
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s = conn.session()
            with pytest.raises(ServiceTimeout):
                conn.request(
                    "materialize", timeout=0.2, session=s.sid,
                    query=GATE_QUERY, name="late", subscribe=True,
                )
            assert conn._abandoned
            _GATE.set()
            assert _poll(lambda: not conn._abandoned)
            assert _poll(lambda: s.stats()["views"] == 0)
            assert conn.views() == []
            s.close()

    def test_close_statement_frees_server_handle(self, server):
        with connect(server.host, server.port) as conn, conn.session() as s:
            stmt = s.prepare(reach_query())
            assert s.stats()["statements"] == 1
            stmt.close()
            assert s.stats()["statements"] == 0
            stmt.close()  # idempotent

    def test_status_stays_responsive_and_reports_router(self, gated_server):
        """status must answer while a query blocks (no engine-lock deadlock)."""
        srv = gated_server
        with connect(srv.host, srv.port) as conn:
            s = conn.session()
            t = threading.Thread(
                target=lambda: s.execute(GATE_QUERY, timeout=30).fetchall()
            )
            t.start()
            try:
                assert _poll(lambda: conn.status()["inflight"] == 1)
                status = conn.status()  # would hang if status took the engine lock
                assert "router" in status
            finally:
                _GATE.set()
                t.join(timeout=30)
            s.close()


class TestAutoBackendService:
    def test_auto_server_routes_and_reports_stats(self):
        srv = QueryServer(
            db=graph_database(8, "path", mutable=True), backend="auto"
        )
        srv.start_in_thread()
        try:
            with connect(srv.host, srv.port) as conn:
                assert conn.status()["router"] is None  # nothing routed yet
                with conn.session() as s:
                    stmt = s.prepare(reach_query())
                    rows = stmt.execute(src=0).fetchall()
                    assert set(rows) == expected_reach(0, 8)
                    router = conn.status()["router"]
                    assert router["routes"] >= 1
                    assert sum(router["backends"].values()) >= 1
                    assert s.stats()["stats"]["routes"] >= 1
        finally:
            srv.stop()


# -- wire-level misbehaviour against the live listener ----------------------------

def _raw_connect(srv) -> socket.socket:
    sock = socket.create_connection((srv.host, srv.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


class TestWireMisbehaviour:
    def test_version_mismatch_over_the_wire(self, server):
        with _raw_connect(server) as sock:
            write_frame_sync(sock, {
                "id": 1, "op": "hello",
                "protocol": [PROTOCOL_VERSION[0] + 1, 0],
            })
            reply = read_frame_sync(sock)
            assert reply["ok"] is False
            assert reply["error"]["code"] == PROTOCOL_MISMATCH
            assert read_frame_sync(sock) is None  # server hung up

    def test_first_frame_must_be_hello(self, server):
        with _raw_connect(server) as sock:
            write_frame_sync(sock, {"id": 1, "op": "status"})
            reply = read_frame_sync(sock)
            assert reply["ok"] is False
            assert "hello" in reply["error"]["message"]

    def test_oversized_frame_rejected(self):
        srv = QueryServer(
            db=graph_database(4, "path", mutable=True),
            config=ServerConfig(max_frame_bytes=1024),
        )
        srv.start_in_thread()
        try:
            with _raw_connect(srv) as sock:
                write_frame_sync(sock, {
                    "id": 1, "op": "hello", "protocol": list(PROTOCOL_VERSION),
                })
                assert read_frame_sync(sock)["ok"] is True
                sock.sendall((4096).to_bytes(4, "big") + b"x" * 64)
                reply = read_frame_sync(sock, max_bytes=1024)
                assert reply["ok"] is False
                assert reply["error"]["code"] == FRAME_TOO_LARGE
        finally:
            srv.stop()

    def test_garbage_body_rejected_then_disconnected(self, server):
        with _raw_connect(server) as sock:
            sock.sendall((11).to_bytes(4, "big") + b"not json!!!")
            reply = read_frame_sync(sock)
            assert reply["ok"] is False
            assert read_frame_sync(sock) is None

    def test_truncated_frame_does_not_wedge_the_server(self, server):
        with _raw_connect(server) as sock:
            frame = encode_frame({"id": 1, "op": "hello",
                                  "protocol": list(PROTOCOL_VERSION)})
            sock.sendall(frame[: len(frame) // 2])
        # half a handshake, then a hard close; the listener must still serve
        with connect(server.host, server.port) as conn:
            assert conn.ping()


# -- lifecycle --------------------------------------------------------------------

class TestShutdown:
    def test_clean_stop_closes_sessions_and_sockets(self):
        srv = QueryServer(db=graph_database(8, "path", mutable=True))
        srv.start_in_thread()
        conn = connect(srv.host, srv.port)
        s = conn.session()
        view = s.materialize("edges")
        assert view.size == 7
        srv.stop()
        assert srv.stats.sessions_closed == srv.stats.sessions_opened
        with pytest.raises((ConnectionClosed, ServiceTimeout, OSError)):
            conn.request("ping")
        conn.close()

    def test_stop_is_idempotent_and_restart_is_refused(self):
        srv = QueryServer(db=graph_database(4, "path", mutable=True))
        srv.start_in_thread()
        with pytest.raises(RuntimeError):
            srv.start_in_thread()
        srv.stop()
        srv.stop()  # second stop is a no-op
