"""Wire-protocol tests: the frame codec, its failure modes, and negotiation.

Everything here is transport-free: the codec functions are exercised on raw
bytes (including a seed-pinned fuzz sweep), and the handshake negotiation on
plain tuples.  The live-socket behaviours -- oversized frames and garbage
against a real server -- live in ``test_service.py``.
"""

import json
import random
import struct

import pytest

from repro.service.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
    ProtocolMismatch,
    RemoteError,
    ServerBusy,
    decode_body,
    decode_header,
    encode_frame,
    error_payload,
    exception_from_error,
    negotiate,
)

pytestmark = pytest.mark.service


class TestFrameCodec:
    def test_round_trip(self):
        for payload in (
            {},
            {"id": 1, "op": "ping"},
            {"id": 2, "rows": [[1, 2], None, {"s": [1, "x"]}], "done": True},
            {"unicode": "héllo ∀x"},
        ):
            frame = encode_frame(payload)
            length = decode_header(frame[:HEADER_BYTES])
            assert length == len(frame) - HEADER_BYTES
            assert decode_body(frame[HEADER_BYTES:]) == payload

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        assert frame[:HEADER_BYTES] == struct.pack("!I", len(frame) - HEADER_BYTES)

    def test_encode_refuses_oversized(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"x": "y" * 64}, max_bytes=16)

    def test_header_refuses_oversized_before_alloc(self):
        huge = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLarge):
            decode_header(huge)

    def test_truncated_header_rejected(self):
        for n in range(HEADER_BYTES):
            with pytest.raises(ProtocolError):
                decode_header(b"\x00" * n)

    def test_non_json_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"{not json")
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe")  # not UTF-8

    def test_non_object_body_rejected(self):
        for body in (b"[1,2]", b"42", b'"x"', b"null", b"true"):
            with pytest.raises(ProtocolError):
                decode_body(body)

    def test_fuzz_never_escapes_the_taxonomy(self):
        """Random bytes must decode, or fail typed -- never crash otherwise.

        Seed-pinned so a failure reproduces; the generator covers random
        binary, truncated valid frames, and valid-JSON-wrong-shape bodies.
        """
        rng = random.Random(0xC0FFEE)
        for _ in range(500):
            shape = rng.randrange(3)
            if shape == 0:
                body = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            elif shape == 1:
                full = encode_frame({"id": rng.randrange(100), "op": "x"})
                body = full[HEADER_BYTES:rng.randrange(HEADER_BYTES, len(full))]
            else:
                doc = rng.choice([[1], "s", 7, None, True, [[]]])
                body = json.dumps(doc).encode()
            try:
                out = decode_body(body)
                assert isinstance(out, dict)
            except ProtocolError:
                pass  # the typed refusal; anything else fails the test

    def test_fuzz_headers(self):
        rng = random.Random(0xBEEF)
        for _ in range(200):
            header = bytes(rng.randrange(256) for _ in range(HEADER_BYTES))
            try:
                length = decode_header(header, max_bytes=1 << 16)
                assert 0 <= length <= 1 << 16
            except (ProtocolError, FrameTooLarge):
                pass


class TestNegotiation:
    def test_exact_match(self):
        assert negotiate(list(PROTOCOL_VERSION)) == PROTOCOL_VERSION

    def test_minor_negotiates_down(self):
        major, minor = PROTOCOL_VERSION
        assert negotiate([major, minor + 5]) == PROTOCOL_VERSION
        assert negotiate([major, minor], server=(major, minor + 3)) == (major, minor)

    def test_major_mismatch_rejected(self):
        major, minor = PROTOCOL_VERSION
        with pytest.raises(ProtocolMismatch):
            negotiate([major + 1, 0])
        with pytest.raises(ProtocolMismatch):
            negotiate([major - 1, minor])

    def test_malformed_versions_rejected(self):
        for bad in (None, "1.0", [1], [1, 2, 3], [1, "0"], {"major": 1}):
            with pytest.raises(ProtocolMismatch):
                negotiate(bad)


class TestErrorMapping:
    def test_engine_errors_round_trip_as_themselves(self):
        from repro.nra.errors import NRAEvalError, NRAParseError, NRATypeError

        for exc in (
            NRAParseError("bad syntax"),
            NRATypeError("bad type"),
            NRAEvalError("bad eval"),
            KeyError("no such thing"),
            ValueError("nope"),
            TypeError("mismatch"),
            RuntimeError("closed"),
        ):
            back = exception_from_error(error_payload(exc))
            assert type(back) is type(exc)
            assert str(exc.args[0]) in str(back)

    def test_server_busy_is_typed_and_retryable(self):
        payload = error_payload(ServerBusy("queue full"))
        assert payload["code"] == "SERVER_BUSY"
        assert isinstance(exception_from_error(payload), ServerBusy)

    def test_unknown_classes_become_remote_error(self):
        back = exception_from_error(
            {"code": "INTERNAL", "error_class": "SomethingNovel", "message": "m"}
        )
        assert isinstance(back, RemoteError)
        assert back.error_class == "SomethingNovel"
        assert "m" in str(back)

    def test_key_error_message_survives_unquoted(self):
        payload = error_payload(KeyError("unknown session 's9'"))
        assert payload["message"] == "unknown session 's9'"
