"""Seeded state-invariant properties of view maintenance (PR-6 satellite).

The differential oracle (``test_backend_differential.py``) checks maintained
*values* against cold recomputes; this suite checks the maintenance *state*
itself, under the same seed-pinned streams:

* **support counts stay consistent** -- no counted node ever holds a
  non-positive count, every counted node's output set is exactly the support
  of its counts (for the bilinear-indexed fixpoint: seed union join
  support), and every hash index -- a join's two child-side indexes, a
  fixpoint's two self-indexes -- mirrors the indexed set element-for-element;
* **deletions restore the least fixpoint** -- after every batch of a
  deletion-only stream, a recursive view's value equals the least fixpoint
  over the surviving base (cold semi-naive recompute), reached through the
  delete/rederive path and never through the whole-view fallback;
* **a changeset followed by its inverse is a no-op** -- not just on the
  served value but on the entire internal state fingerprint: counts, join
  indexes, and fixpoint sets all return to identity.

All values are interned (hash-consed) per engine, so state fingerprints can
compare elements by ``id`` -- the same identity discipline the maintenance
code itself uses.
"""

import random

import pytest

from repro.api import Changeset, Q, connect
from repro.workloads.streams import (
    deletion_update_stream,
    mixed_update_stream,
    stream_graph_database,
)

pytestmark = [pytest.mark.ivm, pytest.mark.dred]


def _panel():
    """One query per stateful delta rule (counts, indexes, fixpoint sets)."""
    return {
        "map": Q.coll("edges").map(lambda e: e.snd),
        "two-hop-join": Q.coll("edges").compose(Q.coll("edges")),
        "union-overlap": (Q.coll("edges").where(lambda e: e.fst == 1)
                          | Q.coll("edges").where(lambda e: e.snd == 2)),
        "tc-fixpoint": Q.coll("edges").fix(),
    }


def _walk_states(op, st):
    yield op, st
    for child, child_st in zip(op.children, st.children):
        yield from _walk_states(child, child_st)


def _ids(elements):
    return set(map(id, elements))


def _assert_state_consistent(view, label):
    assert not view.recompute_only, f"{label}: panel view degraded unexpectedly"
    for op, st in _walk_states(view.plan_ops, view._root):
        if st.counts is not None:
            bad = [c for c in st.counts.values() if c <= 0]
            assert not bad, f"{label}: {op.kind} node holds non-positive counts"
            if op.kind == "fixpoint":
                # The bilinear-indexed fixpoint counts its *join* support;
                # seed membership is the other derivation, so the standing
                # invariant is out = seed U support(counts), with both
                # indexes mirroring the fixpoint itself.
                seed_ids = _ids(st.children[0].out.elements)
                assert _ids(st.counts) <= _ids(st.out.elements), (
                    f"{label}: fixpoint counts support absent elements"
                )
                assert _ids(st.out.elements) == seed_ids | _ids(st.counts), (
                    f"{label}: fixpoint output diverged from seed + support"
                )
                for side, index in (("left", st.lindex), ("right", st.rindex)):
                    indexed = {id(x) for bucket in index.values() for x in bucket}
                    assert indexed == _ids(st.out.elements), (
                        f"{label}: {side} fixpoint index diverged from the output"
                    )
                    assert all(index.values()), (
                        f"{label}: empty {side} fixpoint buckets were not pruned"
                    )
            else:
                assert _ids(st.counts) == _ids(st.out.elements), (
                    f"{label}: {op.kind} output diverged from its support counts"
                )
        if op.kind == "join":
            left, right = st.children
            in_lindex = {id(x) for bucket in st.lindex.values() for x in bucket}
            in_rindex = {id(y) for bucket in st.rindex.values() for y in bucket}
            assert in_lindex == _ids(left.out.elements), (
                f"{label}: left join index diverged from the left child"
            )
            assert in_rindex == _ids(right.out.elements), (
                f"{label}: right join index diverged from the right child"
            )
            assert all(st.lindex.values()) and all(st.rindex.values()), (
                f"{label}: empty index buckets were not pruned"
            )


def _index_fp(index):
    if index is None:
        return None
    return frozenset(
        (id(k), frozenset(map(id, bucket))) for k, bucket in index.items()
    )


def _fingerprint(view):
    """The complete maintenance state, as an id-based comparable value."""
    parts = []
    for op, st in _walk_states(view.plan_ops, view._root):
        parts.append((
            op.kind,
            None if st.out is None else frozenset(map(id, st.out.elements)),
            None if st.counts is None
            else frozenset((id(v), c) for v, c in st.counts.items()),
            _index_fp(st.lindex),
            _index_fp(st.rindex),
        ))
    return tuple(parts)


# ---------------------------------------------------------------------------
# 1. Count/index consistency under mixed churn
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(16))
def test_support_counts_and_indexes_stay_consistent_under_churn(seed):
    rng = random.Random(80_000 + seed)
    db = stream_graph_database(14, "random", seed=seed, p=0.18)
    session = connect(db)
    views = {name: session.materialize(q, name=name)
             for name, q in _panel().items()}
    stream = mixed_update_stream(
        db, churn=0.15, insert_ratio=rng.choice((0.3, 0.5, 0.7)),
        seed=seed + 1, domain=14,
    )
    for step, _ in enumerate(stream.run(5)):
        for name, view in views.items():
            _assert_state_consistent(view, f"seed {seed} step {step} view {name}")


# ---------------------------------------------------------------------------
# 2. Deletion streams restore the least fixpoint, through DRed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(16))
def test_deletion_stream_restores_the_least_fixpoint(seed):
    db = stream_graph_database(18, "random", seed=seed, p=0.15)
    session = connect(db)
    q = Q.coll("edges").fix()
    view = session.materialize(q, name="tc")
    for step, _ in enumerate(deletion_update_stream(db, churn=0.08, seed=seed + 5).run(5)):
        got, want = view.value, session.execute(q).value
        assert got == want, (
            f"seed {seed} step {step}: maintained closure is not the least "
            f"fixpoint ({len(got.elements)} vs {len(want.elements)} rows)"
        )
        _assert_state_consistent(view, f"seed {seed} step {step}")
    assert view.stats.fallback_recomputes == 0
    assert view.stats.dred_applies > 0
    assert view.stats.dred_rederives <= view.stats.dred_overdeletes


# ---------------------------------------------------------------------------
# 3. A changeset followed by its inverse is a no-op on the whole state
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(12))
def test_changeset_then_inverse_is_a_noop_on_state(seed):
    db = stream_graph_database(12, "random", seed=seed, p=0.2)
    session = connect(db)
    views = {name: session.materialize(q, name=name)
             for name, q in _panel().items()}
    before_values = {name: v.value for name, v in views.items()}
    before_state = {name: _fingerprint(v) for name, v in views.items()}
    stream = mixed_update_stream(db, churn=0.2, seed=seed + 9, domain=12)
    applied = db.apply(stream.next_changeset())
    d = applied.get("edges")
    assert d is not None and (d.inserts or d.deletes)
    db.apply(Changeset.of(edges=(list(d.deletes), list(d.inserts))))
    for name, view in views.items():
        assert view.value == before_values[name], (
            f"seed {seed}: view {name!r} value changed after inverse"
        )
        assert _fingerprint(view) == before_state[name], (
            f"seed {seed}: view {name!r} internal state changed after inverse"
        )
        _assert_state_consistent(view, f"seed {seed} view {name}")
