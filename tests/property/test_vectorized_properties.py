"""Property tests for the set-at-a-time backend.

Two families:

* **Compiler soundness** -- the seeded-random closed-expression generator of
  ``test_engine_properties`` drives the vectorized evaluator against the
  reference interpreter: whatever strategies the compiler picks, the value
  must be identical (with and without the rewriter in front).

* **Semi-naive exactness** -- seeded-random *monotone* (inflationary,
  union-distributive) loop steps over binary relations: the semi-naive
  frontier execution must agree with full iteration for every step, input
  relation, start value and round count.  The generator is checked to
  actually produce steps the analysis accepts, so the property genuinely
  exercises the frontier path rather than the fallback.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from test_engine_properties import _random_expr

from repro.engine import Engine
from repro.engine.vectorized import VectorizedEvaluator
from repro.nra.ast import (
    Apply,
    BoolConst,
    Const,
    Eq,
    If,
    Lambda,
    LogLoop,
    Loop,
    Pair,
    Proj1,
    Union,
    Var,
)
from repro.nra.derived import compose, select
from repro.nra.eval import run
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import from_python
from repro.relational.queries import REL_T

EDGE_T = ProdType(BASE, BASE)


class TestCompilerSoundness:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_vectorized_matches_reference(self, seed):
        expr = _random_expr(seed)
        assert Engine(backend="vectorized").run(expr) == run(expr)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_vectorized_matches_reference_without_rewrites(self, seed):
        expr = _random_expr(seed)
        assert VectorizedEvaluator().run(expr) == run(expr)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_vectorized_is_deterministic(self, seed):
        expr = _random_expr(seed)
        assert Engine(backend="vectorized").run(expr) == Engine(backend="vectorized").run(expr)


# ---------------------------------------------------------------------------
# Random monotone steps: semi-naive == full iteration
# ---------------------------------------------------------------------------

def _random_relation(rng: random.Random, max_nodes: int = 8):
    n = rng.randrange(0, max_nodes)
    pairs = {
        (rng.randrange(max_nodes), rng.randrange(max_nodes))
        for _ in range(rng.randrange(0, 2 * max_nodes))
        if n
    }
    return from_python(frozenset(pairs))


def _random_linear_operand(rng: random.Random, v: str):
    """One union-distributive operand in the loop variable ``v``."""
    kind = rng.randrange(5)
    if kind == 0:  # v o C
        return compose(Var(v), Const(_random_relation(rng), REL_T), BASE)
    if kind == 1:  # C o v
        return compose(Const(_random_relation(rng), REL_T), Var(v), BASE)
    if kind == 2:  # v o v  (the squaring / bilinear case)
        return compose(Var(v), Var(v), BASE)
    if kind == 3:  # a selection over v
        pred = Lambda(
            "e", EDGE_T,
            If(
                Eq(Proj1(Var("e")), Const(from_python(rng.randrange(8)), BASE)),
                BoolConst(True),
                BoolConst(False),
            ),
        )
        return select(pred, Var(v))
    # a loop-invariant constant relation
    return Const(_random_relation(rng), REL_T)


def _random_monotone_step(rng: random.Random) -> Lambda:
    """``\\v. v U op1 U ... U opk`` with union-distributive operands."""
    v = f"v{rng.randrange(10**6)}"
    body = Var(v)
    for _ in range(rng.randrange(1, 4)):
        body = Union(body, _random_linear_operand(rng, v))
    return Lambda(v, REL_T, body)


def _loop_expr(rng: random.Random, step: Lambda):
    loop_cls = Loop if rng.random() < 0.5 else LogLoop
    card = Const(_random_relation(rng), REL_T)
    start = Const(_random_relation(rng), REL_T)
    return Apply(loop_cls(step, EDGE_T), Pair(card, start))


class TestSemiNaiveExactness:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_seminaive_agrees_with_full_iteration(self, seed):
        rng = random.Random(seed)
        step = _random_monotone_step(rng)
        expr = _loop_expr(rng, step)
        ev = VectorizedEvaluator()
        got = ev.run(expr)
        assert got == run(expr)
        # The generator must actually exercise the frontier path.
        assert "loop-seminaive" in ev.plan(expr).ops()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_seminaive_loops_actually_ran_seminaive(self, seed):
        rng = random.Random(seed)
        expr = _loop_expr(rng, _random_monotone_step(rng))
        ev = VectorizedEvaluator()
        ev.run(expr)
        assert ev.stats.full_loops == 0


def test_nonmonotone_random_steps_fall_back():
    """Steps without the self-union are rejected by the analysis."""
    rng = random.Random(7)
    v = "v"
    body = compose(Var(v), Var(v), BASE)  # no `v U ...`: not provably inflationary
    step = Lambda(v, REL_T, body)
    expr = Apply(Loop(step, EDGE_T), Pair(
        Const(_random_relation(rng), REL_T), Const(_random_relation(rng), REL_T)
    ))
    ev = VectorizedEvaluator()
    assert ev.run(expr) == run(expr)
    assert "loop-seminaive" not in ev.plan(expr).ops()
