"""The cross-backend differential harness (PR-4 satellite).

With four backends (``reference``, ``memo``, ``vectorized``, ``parallel``)
the repo needs one suite whose only job is to keep them semantically
interchangeable.  This harness is generator-driven and **seed-pinned** (plain
``random.Random`` seeds, no hypothesis shrinking): every case is a
well-typed NRA term plus a small database, and the assertion is always the
same -- all four backends produce the *same outcome*, where an outcome is
either the result value or the raised error class (raising externals and
ill-typed evaluations must fail everywhere, not succeed on the backend that
happened to reorder the work).

Case families:

* closed expressions from the PR-1 property generator (sets, pairs,
  conditionals, ``ext`` shapes, well-behaved ``dcr``/``esr`` recursions);
* random *monotone* loop expressions from the PR-2 generator -- the shapes
  the vectorized backend runs semi-naively and the parallel backend runs as
  frontier-resharded fixpoint rounds (including bilinear squaring steps);
* the paper's graph queries (three transitive-closure styles, unnest,
  two-hop) over seeded random inputs -- applied-argument evaluation;
* query-service style templates: selections and cross-relation equi-joins
  over free collection variables bound through the environment -- the
  env-shard and co-partitioned-join strategies;
* the oracle-enrichment workload (latency 0);
* error cases: raising externals (empty and non-empty inputs), projections
  of non-pairs, non-boolean conditions, unbound variables, applying a
  non-function;
* the **maintenance oracle** (PR-5, extended by PR-6): seed-pinned random
  update sequences against mutable databases with a panel of registered
  views covering every delta rule (selection, map, bilinear join, counted
  union, unnest, recursive fixpoint) plus a deliberate fallback shape --
  after *every* changeset, each maintained view must equal a cold recompute
  of its query value-for-value, and maintenance-time errors must match
  recompute's error class.  PR-6 adds deletion-heavy and mixed-churn
  streams, and the stats counters *prove* the recursive views were served
  by the delete/rederive (DRed) path -- ``dred_applies > 0`` with
  ``fallback_recomputes == 0`` -- not by a silent whole-view recompute that
  would trivially satisfy the value check.

Roughly 350 cases in all; the whole suite carries the ``differential``
marker (CI runs it on the main job, ``make test-fast`` skips it).
"""

import random

import pytest

from test_engine_properties import _random_expr
from test_vectorized_properties import _loop_expr, _random_monotone_step, _random_relation

from repro.engine import Engine
from repro.nra import ast
from repro.nra.ast import (
    Apply,
    Const,
    Eq,
    Ext,
    If,
    Lambda,
    Proj1,
    Singleton,
    Var,
)
from repro.nra.derived import compose, select
from repro.nra.errors import NRAError, NRAEvalError
from repro.nra.eval import run as reference_run
from repro.nra.externals import EMPTY_SIGMA, ExternalFunction, Signature
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, from_python
from repro.relational.queries import REL_T, reachable_pairs_query
from repro.workloads.graphs import binary_tree, path_graph, random_graph
from repro.workloads.nested_graphs import edges_query, nested_random_graph, two_hop_query
from repro.workloads.services import enrichment_workload

pytestmark = pytest.mark.differential

EDGE_T = ProdType(BASE, BASE)

#: The engine-backed contenders; the reference interpreter is the oracle.
ENGINE_BACKENDS = ("memo", "vectorized", "parallel")


def _outcome(fn):
    """Run a backend: ``("value", v)`` or ``("error", exception class name)``.

    Error *classes* must agree; messages may differ (a parallel worker
    reports the first failing shard, the reference the first failing
    element).
    """
    try:
        return ("value", fn())
    except (NRAError, TypeError, KeyError) as exc:
        return ("error", type(exc).__name__)


def assert_backends_agree(expr, arg=None, env=None, sigma=EMPTY_SIGMA, label=""):
    want = _outcome(lambda: reference_run(expr, arg, env=env, sigma=sigma))
    for backend in ENGINE_BACKENDS:
        if backend == "parallel":
            eng = Engine(sigma=sigma, backend="parallel", workers=2, shards=3)
        else:
            eng = Engine(sigma=sigma, backend=backend)
        try:
            got = _outcome(lambda: eng.run(expr, arg, env=env))
            assert got == want, (
                f"{label or 'case'}: backend {backend!r} produced {got!r}, "
                f"reference produced {want!r}"
            )
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# 1. Closed expressions (120 seeds)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(120))
def test_closed_expressions_agree(seed):
    assert_backends_agree(_random_expr(seed), label=f"closed expr seed {seed}")


# ---------------------------------------------------------------------------
# 2. Random monotone loops (24 seeds): the fixpoint strategies
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(24))
def test_monotone_loops_agree(seed):
    rng = random.Random(10_000 + seed)
    expr = _loop_expr(rng, _random_monotone_step(rng))
    assert_backends_agree(expr, label=f"monotone loop seed {seed}")


# ---------------------------------------------------------------------------
# 3. Graph queries applied to random inputs (~30 cases)
# ---------------------------------------------------------------------------

def _graph_inputs():
    yield "path-9", path_graph(9).value()
    yield "tree-2", binary_tree(2).value()
    for seed in (1, 2, 3):
        yield f"gnp-{seed}", random_graph(10, 0.25, seed=seed).value()


@pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
@pytest.mark.parametrize("gname,graph", list(_graph_inputs()))
def test_transitive_closure_styles_agree(style, gname, graph):
    assert_backends_agree(
        reachable_pairs_query(style), graph, label=f"tc-{style} on {gname}"
    )


@pytest.mark.parametrize("qname,query", [
    ("edges", edges_query()),
    ("two-hop", two_hop_query()),
])
@pytest.mark.parametrize("seed", [4, 5, 6])
def test_nested_graph_queries_agree(qname, query, seed):
    db = nested_random_graph(14, 0.2, seed=seed)
    assert_backends_agree(query, db, label=f"{qname} on nested seed {seed}")


# ---------------------------------------------------------------------------
# 4. Env-bound templates: selections and cross-relation joins (~18 cases)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(9))
def test_env_selection_templates_agree(seed):
    rng = random.Random(20_000 + seed)
    k = rng.randrange(10)
    pred = Lambda("e", EDGE_T, Eq(Proj1(Var("e")), Const(BaseVal(k), BASE)))
    expr = select(pred, Var("edges"))
    env = {"edges": _random_relation(rng, max_nodes=10)}
    assert_backends_agree(expr, env=env, label=f"env selection seed {seed}")


@pytest.mark.parametrize("seed", range(9))
def test_env_join_templates_agree(seed):
    rng = random.Random(30_000 + seed)
    expr = compose(Var("a"), Var("b"), BASE)
    env = {
        "a": _random_relation(rng, max_nodes=10),
        "b": _random_relation(rng, max_nodes=10),
    }
    assert_backends_agree(expr, env=env, label=f"env join seed {seed}")


# ---------------------------------------------------------------------------
# 5. The oracle workload (latency 0)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [0, 1, 7, 23])
def test_enrichment_oracle_agrees(n):
    sigma, query, value = enrichment_workload(n, latency=0.0)
    assert_backends_agree(query, value, sigma=sigma, label=f"enrichment n={n}")


# ---------------------------------------------------------------------------
# 6. Error agreement (~12 cases)
# ---------------------------------------------------------------------------

def _raising_sigma():
    def boom(v):
        raise NRAEvalError("boom")

    return Signature([ExternalFunction("boom", BASE, BASE, boom, "raises")])


def _boom_map():
    body = Singleton(ast.ExternalCall("boom", Var("x")))
    return Lambda("s", SetType(BASE), Apply(Ext(Lambda("x", BASE, body)), Var("s")))


class TestErrorAgreement:
    def test_raising_external_on_nonempty_input(self):
        assert_backends_agree(
            _boom_map(), from_python({1, 2, 3, 4, 5}), sigma=_raising_sigma(),
            label="raising external, nonempty",
        )

    def test_raising_external_on_empty_input(self):
        assert_backends_agree(
            _boom_map(), from_python(set()), sigma=_raising_sigma(),
            label="raising external, empty",
        )

    def test_raising_external_in_join_right_source_with_empty_left(self):
        # The hash-join short-circuit: an empty left side must not evaluate
        # the right source, on any backend.
        right = Apply(Ext(Lambda("x", BASE, Singleton(
            ast.Pair(ast.ExternalCall("boom", Var("x")), Var("x"))
        ))), Var("b"))
        expr = compose(Var("a"), right, BASE)
        env = {"a": from_python(set()), "b": from_python({1, 2})}
        assert_backends_agree(expr, env=env, sigma=_raising_sigma(),
                              label="raising right source, empty left")

    def test_projection_of_a_non_pair(self):
        assert_backends_agree(
            Proj1(Const(from_python({1, 2}), SetType(BASE))),
            label="proj1 of a set",
        )

    def test_non_boolean_condition(self):
        expr = If(Const(from_python(3), BASE),
                  Const(from_python(1), BASE), Const(from_python(2), BASE))
        assert_backends_agree(expr, label="non-boolean condition")

    def test_unbound_variable(self):
        assert_backends_agree(Var("nowhere"), label="unbound variable")

    def test_applying_a_non_function(self):
        expr = Apply(Const(from_python(1), BASE), Const(from_python(2), BASE))
        assert_backends_agree(expr, label="applying a non-function")

    def test_ill_typed_union(self):
        expr = ast.Union(Const(from_python(1), BASE),
                         Const(from_python({2}), SetType(BASE)))
        assert_backends_agree(expr, label="union of non-sets")

    def test_iterating_a_non_set_cardinality(self):
        step = Lambda("v", REL_T, Var("v"))
        expr = Apply(ast.Loop(step, BASE),
                     ast.Pair(Const(from_python(1), BASE),
                              Const(_random_relation(random.Random(1)), REL_T)))
        assert_backends_agree(expr, label="loop over non-set cardinality")

    def test_unknown_external(self):
        expr = ast.ExternalCall("missing", Const(from_python(1), BASE))
        assert_backends_agree(expr, label="unknown external")


# ---------------------------------------------------------------------------
# 7. The maintenance oracle (PR-5): maintained views == cold recompute
#    after every changeset of random update sequences (~100 seeds)
# ---------------------------------------------------------------------------

from repro.api import Q, connect  # noqa: E402
from repro.workloads.streams import (  # noqa: E402
    deletion_update_stream,
    graph_update_stream,
    mixed_update_stream,
    nested_update_stream,
    stream_graph_database,
    stream_nested_database,
)


def _view_panel():
    """One query per delta rule, rebuilt fresh per case (templates cache)."""
    return {
        "selection": Q.coll("edges").where(lambda e: e.fst == 2),
        "map": Q.coll("edges").map(lambda e: e.snd),
        "two-hop-join": Q.coll("edges").compose(Q.coll("edges")),
        "union-overlap": (Q.coll("edges").where(lambda e: e.fst == 1)
                          | Q.coll("edges").where(lambda e: e.snd == 2)),
        "tc-fixpoint": Q.coll("edges").fix(),
        "difference-fallback": Q.coll("edges")
        - Q.coll("edges").where(lambda e: e.fst == 0),
    }


def _assert_views_match_recompute(session, views, label):
    for vname, (view, query) in views.items():
        got = view.value
        want = session.execute(query).value
        assert got == want, (
            f"{label}: view {vname!r} diverged from cold recompute "
            f"({len(got.elements)} vs {len(want.elements)} rows)"
        )


@pytest.mark.ivm
@pytest.mark.parametrize("seed", range(80))
def test_maintained_views_equal_recompute_on_flat_streams(seed):
    rng = random.Random(40_000 + seed)
    n = rng.randrange(8, 16)
    db = stream_graph_database(n, "random", seed=seed, p=rng.uniform(0.1, 0.3))
    session = connect(db)
    views = {name: (session.materialize(q, name=name), q)
             for name, q in _view_panel().items()}
    insert_ratio = rng.choice((1.0, 1.0, 0.7, 0.4, 0.0))
    stream = graph_update_stream(
        db, churn=rng.uniform(0.05, 0.4), insert_ratio=insert_ratio,
        seed=seed + 1, domain=n + 2,
    )
    saw_deletes = False
    for step, cs in enumerate(stream.run(4)):
        d = cs.get("edges")
        saw_deletes = saw_deletes or bool(d and d.deletes)
        _assert_views_match_recompute(
            session, views, f"flat seed {seed} step {step}"
        )
    # The fixpoint view must never fall back: insertions continue
    # semi-naively, deletions take the delete/rederive path.
    tc = views["tc-fixpoint"][0].stats
    assert tc.fallback_recomputes == 0
    if saw_deletes:
        assert tc.dred_applies > 0


# ---------------------------------------------------------------------------
# 7b. The deletion-heavy maintenance oracle (PR-6): DRed path, proven by stats
# ---------------------------------------------------------------------------

@pytest.mark.ivm
@pytest.mark.dred
@pytest.mark.parametrize("seed", range(12))
def test_maintained_views_equal_recompute_on_deletion_streams(seed):
    rng = random.Random(60_000 + seed)
    n = rng.randrange(10, 18)
    db = stream_graph_database(n, "random", seed=seed, p=rng.uniform(0.12, 0.3))
    session = connect(db)
    views = {name: (session.materialize(q, name=name), q)
             for name, q in _view_panel().items()}
    stream = deletion_update_stream(db, churn=rng.uniform(0.03, 0.15),
                                    seed=seed + 11)
    deleted = 0
    for step, cs in enumerate(stream.run(5)):
        d = cs.get("edges")
        deleted += len(d.deletes) if d else 0
        _assert_views_match_recompute(
            session, views, f"deletion seed {seed} step {step}"
        )
    assert deleted > 0
    tc = views["tc-fixpoint"][0].stats
    assert tc.fallback_recomputes == 0, "deletion took the recompute fallback"
    assert tc.dred_applies > 0, "no delete/rederive pass ran"
    assert tc.dred_rederives <= tc.dred_overdeletes


@pytest.mark.ivm
@pytest.mark.dred
@pytest.mark.parametrize("seed", range(8))
def test_maintained_views_equal_recompute_on_mixed_churn_streams(seed):
    rng = random.Random(65_000 + seed)
    n = rng.randrange(10, 16)
    db = stream_graph_database(n, "random", seed=seed, p=rng.uniform(0.15, 0.3))
    session = connect(db)
    views = {name: (session.materialize(q, name=name), q)
             for name, q in _view_panel().items()}
    stream = mixed_update_stream(db, churn=rng.uniform(0.1, 0.3),
                                 insert_ratio=0.5, seed=seed + 13, domain=n + 2)
    saw_deletes = False
    for step, cs in enumerate(stream.run(5)):
        d = cs.get("edges")
        saw_deletes = saw_deletes or bool(d and d.deletes)
        _assert_views_match_recompute(
            session, views, f"mixed seed {seed} step {step}"
        )
    tc = views["tc-fixpoint"][0].stats
    assert tc.fallback_recomputes == 0
    if saw_deletes:
        assert tc.dred_applies > 0


@pytest.mark.ivm
@pytest.mark.parametrize("seed", range(20))
def test_maintained_views_equal_recompute_on_nested_streams(seed):
    rng = random.Random(50_000 + seed)
    db = stream_nested_database(rng.randrange(8, 14), rng.uniform(0.15, 0.35),
                                seed=seed)
    session = connect(db)
    panel = {
        "unnest": Q.coll("adj").unnest(),
        "nested-two-hop": Q.coll("adj").unnest().compose(Q.coll("adj").unnest()),
        "nested-tc": Q.coll("adj").unnest().fix(),
    }
    views = {name: (session.materialize(q, name=name), q)
             for name, q in panel.items()}
    stream = nested_update_stream(
        db, churn=rng.uniform(0.1, 0.35),
        insert_ratio=rng.choice((1.0, 0.6, 0.3)), seed=seed + 7,
    )
    for step, _ in enumerate(stream.run(4)):
        _assert_views_match_recompute(
            session, views, f"nested seed {seed} step {step}"
        )


@pytest.mark.ivm
@pytest.mark.dred
@pytest.mark.parametrize("seed", range(8))
def test_nested_tc_takes_the_dred_path_under_record_shrinks(seed):
    # Shrink-biased record rewrites: deleting a successor from an adjacency
    # record reaches the fixpoint as an edge delete through the unnest node,
    # so the recursive view must be served by DRed, never by fallback.
    rng = random.Random(55_000 + seed)
    db = stream_nested_database(rng.randrange(9, 14), rng.uniform(0.25, 0.4),
                                seed=seed)
    session = connect(db)
    q = Q.coll("adj").unnest().fix()
    view = session.materialize(q, name="nested-tc")
    stream = nested_update_stream(db, churn=0.3, insert_ratio=0.0, seed=seed + 17)
    for step, _ in enumerate(stream.run(4)):
        got, want = view.value, session.execute(q).value
        assert got == want, f"nested-dred seed {seed} step {step} diverged"
    assert view.stats.fallback_recomputes == 0
    assert view.stats.dred_applies > 0


# ---------------------------------------------------------------------------
# 8. Flat vs object kernels (PR-7): the dense-id representation is a pure
#    optimization -- same outcome as the object kernels and the reference
#    on every generated case, including error cases.
# ---------------------------------------------------------------------------

def _flat_outcomes_agree(expr, arg=None, env=None, label=""):
    want = _outcome(lambda: reference_run(expr, arg, env=env))
    for variant, kwargs in (("flat", {}), ("object", {"flat": False})):
        eng = Engine(backend="vectorized", **kwargs)
        try:
            got = _outcome(lambda: eng.run(expr, arg, env=env))
            assert got == want, (
                f"{label or 'case'}: {variant} kernels produced {got!r}, "
                f"reference produced {want!r}"
            )
        finally:
            eng.close()


@pytest.mark.columnar
@pytest.mark.parametrize("seed", range(40))
def test_flat_and_object_kernels_agree_on_closed_expressions(seed):
    _flat_outcomes_agree(_random_expr(seed), label=f"flat closed expr seed {seed}")


@pytest.mark.columnar
@pytest.mark.parametrize("seed", range(16))
def test_flat_and_object_kernels_agree_on_monotone_loops(seed):
    rng = random.Random(70_000 + seed)
    expr = _loop_expr(rng, _random_monotone_step(rng))
    _flat_outcomes_agree(expr, label=f"flat monotone loop seed {seed}")


@pytest.mark.columnar
@pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
@pytest.mark.parametrize("seed", [21, 22])
def test_flat_and_object_kernels_agree_on_tc(style, seed):
    graph = random_graph(11, 0.3, seed=seed).value()
    _flat_outcomes_agree(reachable_pairs_query(style), graph,
                         label=f"flat tc-{style} seed {seed}")
