"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.encoding import (
    compact_blanks,
    decode,
    minimal_encoding,
    scatter_blanks,
    strip_blanks,
)
from repro.objects.order import co_le, co_sorted, sort_key
from repro.objects.types import parse_type
from repro.objects.values import (
    BaseVal,
    BoolVal,
    PairVal,
    SetVal,
    from_python,
    infer_type,
    mkset,
    pair,
    rename_atoms,
    to_python,
    value_size,
)
from repro.recursion.forms import EvaluationTrace, dcr, sri
from repro.recursion.iterators import log_iterations, log_loop
from repro.recursion.translations import (
    dcr_via_esr,
    dcr_via_log_loop,
    dcr_via_sri,
    log_loop_via_dcr,
)
from repro.relational.algebra import transitive_closure_seminaive, transitive_closure_squaring

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

atoms = st.integers(min_value=0, max_value=30)
int_sets = st.frozensets(atoms, max_size=12)
pair_sets = st.frozensets(st.tuples(atoms, atoms), max_size=10)
bool_lists = st.lists(st.booleans(), max_size=20)

nested_data = st.recursive(
    atoms | st.booleans(),
    lambda children: st.frozensets(children, max_size=3)
    | st.tuples(children, children),
    max_leaves=12,
)


# ---------------------------------------------------------------------------
# Values, order, encodings
# ---------------------------------------------------------------------------

class TestValueProperties:
    @given(nested_data)
    def test_python_roundtrip(self, data):
        assert to_python(from_python(data)) == data

    @given(int_sets, int_sets)
    def test_set_algebra_matches_python(self, a, b):
        va, vb = from_python(a), from_python(b)
        assert to_python(va.union(vb)) == a | b
        assert to_python(va.intersection(vb)) == a & b
        assert to_python(va.difference(vb)) == a - b

    @given(st.lists(atoms, max_size=15))
    def test_set_canonicalisation_is_order_insensitive(self, xs):
        forwards = mkset(BaseVal(x) for x in xs)
        backwards = mkset(BaseVal(x) for x in reversed(xs))
        assert forwards == backwards
        assert hash(forwards) == hash(backwards)

    @given(nested_data, nested_data, nested_data)
    def test_lifted_order_is_total_and_transitive(self, a, b, c):
        va, vb, vc = from_python(a), from_python(b), from_python(c)
        assert co_le(va, vb) or co_le(vb, va)
        if co_le(va, vb) and co_le(vb, vc):
            assert co_le(va, vc)
        if co_le(va, vb) and co_le(vb, va):
            assert va == vb

    @given(int_sets)
    def test_sorted_key_matches_co_sorted(self, data):
        values = [BaseVal(x) for x in data]
        assert co_sorted(values) == sorted(values, key=sort_key)

    @given(nested_data)
    def test_value_size_positive(self, data):
        assert value_size(from_python(data)) >= 1

    @given(int_sets)
    def test_genericity_of_canonical_form(self, data):
        # renaming atoms by an order-preserving map commutes with set formation
        mapping = {a: a * 2 + 5 for a in data}
        v = from_python(data)
        assert rename_atoms(v, mapping) == from_python({mapping[a] for a in data})


class TestEncodingProperties:
    @given(int_sets)
    def test_flat_set_roundtrip(self, data):
        v = from_python(data)
        t = parse_type("{D}")
        assert decode(minimal_encoding(v), t) == from_python({i for i in range(len(data))}) or \
            decode(minimal_encoding(v), t) == v or len(data) == len(decode(minimal_encoding(v), t))

    @given(pair_sets)
    def test_pair_set_roundtrip_preserves_cardinality(self, data):
        v = from_python(data)
        decoded = decode(minimal_encoding(v), parse_type("{D x D}"))
        assert len(decoded) == len(v)
        assert infer_type(decoded, parse_type("D x D").fst) is not None

    @given(int_sets, st.lists(st.integers(min_value=0, max_value=40), max_size=8))
    def test_blanks_do_not_change_the_denoted_object(self, data, positions):
        v = from_python(data)
        enc = minimal_encoding(v)
        blanked = scatter_blanks(enc, [p % (len(enc) + 1) for p in positions])
        assert strip_blanks(blanked) == enc
        assert decode(blanked, parse_type("{D}")) == decode(enc, parse_type("{D}"))

    @given(int_sets)
    def test_compact_blanks_preserves_symbols(self, data):
        enc = scatter_blanks(minimal_encoding(from_python(data)), [0, 1, 2])
        compacted = compact_blanks(enc)
        assert strip_blanks(compacted) == strip_blanks(enc)
        assert len(compacted) == len(enc)


# ---------------------------------------------------------------------------
# Recursion invariants
# ---------------------------------------------------------------------------

def _sum_instance():
    return BaseVal(0), lambda x: x, lambda a, b: BaseVal(a.value + b.value)


class TestRecursionProperties:
    @given(int_sets)
    def test_dcr_sum_equals_python_sum(self, data):
        e, f, u = _sum_instance()
        assert dcr(e, f, u, from_python(data)).value == sum(data)

    @given(int_sets)
    def test_dcr_equals_its_translations(self, data):
        e, f, u = _sum_instance()
        s = from_python(data)
        direct = dcr(e, f, u, s)
        assert dcr_via_esr(e, f, u, s) == direct
        assert dcr_via_sri(e, f, u, s) == direct
        assert dcr_via_log_loop(e, f, u, s) == direct

    @given(bool_lists)
    def test_parity_via_dcr_matches_xor(self, bits):
        s = mkset(pair(BaseVal(i), BoolVal(b)) for i, b in enumerate(bits))
        result = dcr(
            BoolVal(False),
            lambda y: y.snd,
            lambda a, b: BoolVal(a.value != b.value),
            s,
        )
        expected = False
        for b in bits:
            expected ^= b
        assert result.value is expected

    @given(int_sets)
    def test_dcr_depth_is_logarithmic(self, data):
        e, f, u = _sum_instance()
        trace = EvaluationTrace()
        dcr(e, f, u, from_python(data), trace)
        n = len(data)
        assert trace.depth <= math.ceil(math.log2(n)) + 1 if n > 1 else trace.depth <= 1

    @given(int_sets)
    def test_sri_work_equals_cardinality(self, data):
        trace = EvaluationTrace()
        sri(BaseVal(0), lambda x, acc: BaseVal(x.value + acc.value), from_python(data), trace)
        assert trace.work == len(data)

    @given(int_sets, st.integers(min_value=0, max_value=50))
    def test_log_loop_via_dcr_agrees(self, data, start):
        x = from_python(data)
        step = lambda v: BaseVal(v.value * 2 + 1)
        assert log_loop_via_dcr(step, x, BaseVal(start)) == log_loop(step, x, BaseVal(start))

    @given(int_sets)
    def test_log_iterations_is_bit_length(self, data):
        assert log_iterations(len(data)) == len(data).bit_length()


# ---------------------------------------------------------------------------
# Relational invariants
# ---------------------------------------------------------------------------

class TestRelationalProperties:
    @given(pair_sets)
    def test_tc_algorithms_agree(self, edges):
        a, _ = transitive_closure_seminaive(edges)
        b, _ = transitive_closure_squaring(edges)
        assert a == b

    @given(pair_sets)
    def test_tc_is_idempotent_and_monotone(self, edges):
        closure, _ = transitive_closure_squaring(edges)
        again, _ = transitive_closure_squaring(closure)
        assert again == closure
        assert edges <= closure

    @settings(max_examples=25)
    @given(pair_sets)
    def test_circuit_tc_matches_oracle(self, edges):
        from repro.circuits.compile_flat import compile_query, tc_squaring_query

        nodes = {a for e in edges for a in e}
        n = (max(nodes) + 1) if nodes else 1
        if n > 8:
            edges = frozenset((a % 8, b % 8) for a, b in edges)
            n = 8
        compiled = compile_query(tc_squaring_query(), n)
        expected, _ = transitive_closure_squaring(edges)
        assert compiled.run({"r": edges}) == expected
