"""Property tests for the optimizing engine: rewrite + memo soundness.

A seeded-random generator produces closed, well-typed NRA expressions (sets of
atoms, pairs, booleans, ``ext`` maps/filters, conditionals, and
divide-and-conquer/insert recursions with well-behaved combiners).  For every
generated expression the optimized engine -- full rewriting, interning and
memoization -- must produce exactly the value the reference interpreter does,
and the rewritten expression must type-check to the same type.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.engine.rewrite import Rewriter
from repro.nra.ast import (
    Apply,
    BoolConst,
    Const,
    Dcr,
    EmptySet,
    Eq,
    Esr,
    Ext,
    If,
    IsEmpty,
    Lambda,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Union,
    Var,
    fresh_name,
)
from repro.nra.eval import run
from repro.nra.typecheck import infer
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, from_python

SET_T = SetType(BASE)


def _random_base(rng: random.Random, depth: int):
    """A closed expression of type D."""
    if depth <= 0 or rng.random() < 0.4:
        return Const(BaseVal(rng.randrange(8)), BASE)
    choice = rng.randrange(3)
    if choice == 0:
        return Proj1(Pair(_random_base(rng, depth - 1), _random_base(rng, depth - 1)))
    if choice == 1:
        return Proj2(Pair(_random_base(rng, depth - 1), _random_base(rng, depth - 1)))
    return If(_random_bool(rng, depth - 1), _random_base(rng, depth - 1), _random_base(rng, depth - 1))


def _random_bool(rng: random.Random, depth: int):
    """A closed expression of type B."""
    if depth <= 0 or rng.random() < 0.35:
        return BoolConst(rng.random() < 0.5)
    choice = rng.randrange(3)
    if choice == 0:
        return Eq(_random_base(rng, depth - 1), _random_base(rng, depth - 1))
    if choice == 1:
        return IsEmpty(_random_set(rng, depth - 1))
    return If(_random_bool(rng, depth - 1), _random_bool(rng, depth - 1), _random_bool(rng, depth - 1))


def _random_unary_set_fn(rng: random.Random, depth: int) -> Lambda:
    """A function D -> {D} usable under ext (map / filter / constant shapes)."""
    x = fresh_name("g")
    shape = rng.randrange(4)
    if shape == 0:  # singleton of the element: the identity under ext
        body = Singleton(Var(x))
    elif shape == 1:  # constant set
        body = _random_set(rng, depth - 1)
    elif shape == 2:  # filter on a random predicate
        body = If(
            Eq(Var(x), _random_base(rng, depth - 1)),
            Singleton(Var(x)),
            EmptySet(BASE),
        )
    else:  # two-element fan-out
        body = Union(Singleton(Var(x)), Singleton(_random_base(rng, depth - 1)))
    return Lambda(x, BASE, body)


def _random_set(rng: random.Random, depth: int):
    """A closed expression of type {D}."""
    if depth <= 0 or rng.random() < 0.3:
        n = rng.randrange(4)
        return Const(from_python({rng.randrange(8) for _ in range(n)}), SET_T)
    choice = rng.randrange(6)
    if choice == 0:
        return EmptySet(BASE)
    if choice == 1:
        return Singleton(_random_base(rng, depth - 1))
    if choice == 2:
        return Union(_random_set(rng, depth - 1), _random_set(rng, depth - 1))
    if choice == 3:
        return If(_random_bool(rng, depth - 1), _random_set(rng, depth - 1), _random_set(rng, depth - 1))
    if choice == 4:
        return Apply(Ext(_random_unary_set_fn(rng, depth)), _random_set(rng, depth - 1))
    # A well-behaved recursion: union-fold (dcr) or its Prop 2.1 esr image.
    seed = EmptySet(BASE)
    x = fresh_name("r")
    item = Lambda(x, BASE, Singleton(Var(x)))
    p = fresh_name("u")
    combine = Lambda(p, ProdType(SET_T, SET_T), Union(Proj1(Var(p)), Proj2(Var(p))))
    arg = _random_set(rng, depth - 1)
    if rng.random() < 0.5:
        return Apply(Dcr(seed, item, combine), arg)
    z = fresh_name("z")
    step = Lambda(
        z,
        ProdType(BASE, SET_T),
        Apply(combine, Pair(Apply(item, Proj1(Var(z))), Proj2(Var(z)))),
    )
    return Apply(Esr(seed, step), arg)


def _random_expr(seed: int):
    rng = random.Random(seed)
    kind = rng.randrange(3)
    depth = rng.randrange(2, 5)
    if kind == 0:
        return _random_set(rng, depth)
    if kind == 1:
        return _random_bool(rng, depth)
    return Pair(_random_set(rng, depth - 1), _random_base(rng, depth - 1))


class TestRewriteSoundness:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_optimized_engine_matches_reference(self, seed):
        expr = _random_expr(seed)
        assert Engine().run(expr) == run(expr)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_rewriting_alone_preserves_reference_semantics(self, seed):
        expr = _random_expr(seed)
        rewritten, _ = Rewriter().rewrite(expr)
        assert run(rewritten) == run(expr)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_rewriting_preserves_the_type(self, seed):
        expr = _random_expr(seed)
        rewritten, _ = Rewriter().rewrite(expr)
        assert infer(rewritten) == infer(expr)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_memoized_run_is_deterministic_across_engines(self, seed):
        expr = _random_expr(seed)
        assert Engine().run(expr) == Engine().run(expr)
