"""Tests for bounded recursion (bdcr, bsri) and PS-type intersection."""

import pytest

from repro.objects.types import BASE, BOOL, ProdType, SetType, parse_type
from repro.objects.values import (
    BaseVal,
    PairVal,
    SetVal,
    base,
    from_python,
    mkset,
    pair,
    singleton,
)
from repro.recursion.bounded import (
    BoundingError,
    bdcr,
    bsri,
    powerset_via_dcr,
    ps_intersect,
    ps_intersect_values,
    require_ps_type,
)


class TestPsIntersect:
    def test_set_intersection(self):
        a = from_python({1, 2, 3})
        b = from_python({2, 3, 4})
        assert ps_intersect(a, b, parse_type("{D}")) == from_python({2, 3})

    def test_pair_of_sets(self):
        t = parse_type("{D} x {D}")
        a = pair(from_python({1, 2}), from_python({3}))
        b = pair(from_python({2}), from_python({3, 4}))
        assert ps_intersect(a, b, t) == pair(from_python({2}), from_python({3}))

    def test_rejects_non_ps_type(self):
        with pytest.raises(BoundingError):
            ps_intersect(base(1), base(1), BASE)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(BoundingError):
            ps_intersect(base(1), from_python({1}), parse_type("{D}"))

    def test_value_directed_matches_typed(self):
        t = parse_type("{D} x {D}")
        a = pair(from_python({1, 2}), from_python({3}))
        b = pair(from_python({2}), from_python({3, 4}))
        assert ps_intersect_values(a, b) == ps_intersect(a, b, t)

    def test_require_ps_type(self):
        require_ps_type(parse_type("{D}"))
        with pytest.raises(BoundingError):
            require_ps_type(BOOL)


class TestBdcr:
    def test_bounded_union_equals_unbounded_when_bound_contains_everything(self):
        s = from_python({1, 2, 3})
        bound = from_python({1, 2, 3, 4, 5})
        result = bdcr(mkset(), singleton, lambda a, b: a.union(b), bound, parse_type("{D}"), s)
        assert result == s

    def test_bound_clips_results(self):
        s = from_python({1, 2, 3})
        bound = from_python({1, 2})
        result = bdcr(mkset(), singleton, lambda a, b: a.union(b), bound, parse_type("{D}"), s)
        assert result == from_python({1, 2})

    def test_rejects_non_ps_result_type(self):
        with pytest.raises(BoundingError):
            bdcr(base(0), lambda x: x, lambda a, b: a, base(9), BASE, from_python({1}))

    def test_bounded_powerset_stays_within_bound(self):
        s = from_python({1, 2, 3})
        result_type = parse_type("{{D}}")
        bound = mkset([mkset(), singleton(base(1)), singleton(base(2)), singleton(base(3))])

        def item(x):
            return mkset([mkset(), singleton(x)])

        def combine(p1, p2):
            return mkset(a.union(b) for a in p1 for b in p2)

        result = bdcr(mkset([mkset()]), item, combine, bound, result_type, s)
        assert result.is_subset(bound)
        assert len(result) <= len(bound)


class TestBsri:
    def test_bounded_collect(self):
        s = from_python({1, 2, 3})
        bound = from_python({1, 3})
        result = bsri(
            mkset(),
            lambda x, acc: acc.union(singleton(x)),
            bound,
            parse_type("{D}"),
            s,
        )
        assert result == from_python({1, 3})

    def test_rejects_non_ps_type(self):
        with pytest.raises(BoundingError):
            bsri(base(0), lambda x, acc: acc, base(1), BASE, from_python({1}))


class TestPowerset:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 2), (3, 8), (5, 32)])
    def test_powerset_sizes(self, n, expected):
        s = from_python(set(range(n)))
        assert len(powerset_via_dcr(s)) == expected

    def test_powerset_contains_empty_and_full(self):
        s = from_python({1, 2})
        p = powerset_via_dcr(s)
        assert mkset() in p
        assert s in p
