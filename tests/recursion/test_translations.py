"""Tests for the constructive translations of Propositions 2.1, 2.2 and 7.3."""

import pytest

from repro.objects.types import parse_type
from repro.objects.values import (
    FALSE,
    base,
    boolean,
    from_python,
    mkset,
    pair,
    singleton,
)
from repro.recursion.algebraic import check_dcr_preconditions
from repro.recursion.forms import EvaluationTrace, dcr, esr, sri, sru
from repro.recursion.iterators import log_iterations, log_loop, loop
from repro.recursion.translations import (
    dcr_via_bdcr_flat,
    dcr_via_esr,
    dcr_via_log_loop,
    dcr_via_sri,
    esr_via_sri,
    flat_bound,
    log_loop_via_dcr,
    loop_via_esr,
    ordered_dcr,
    set_reduce,
    simulation_dcr_instance,
    sri_via_loop,
    sru_via_sri,
)


# -- shared instances --------------------------------------------------------

def sum_instance():
    e = base(0)
    f = lambda x: x
    u = lambda a, b: base(a.value + b.value)
    return e, f, u


def parity_instance():
    e = FALSE
    f = lambda y: y.snd
    u = lambda a, b: boolean(a.value != b.value)
    return e, f, u


def tagged(bits):
    return mkset(pair(base(i), boolean(b)) for i, b in enumerate(bits))


INPUT_SETS = [set(), {5}, {1, 2}, {1, 2, 3, 4, 5, 6, 7}, set(range(20))]


class TestProposition21:
    @pytest.mark.parametrize("data", INPUT_SETS)
    def test_dcr_via_esr_agrees(self, data):
        e, f, u = sum_instance()
        s = from_python(data)
        assert dcr_via_esr(e, f, u, s) == dcr(e, f, u, s)

    @pytest.mark.parametrize("data", INPUT_SETS)
    def test_dcr_via_sri_agrees(self, data):
        e, f, u = sum_instance()
        s = from_python(data)
        assert dcr_via_sri(e, f, u, s) == dcr(e, f, u, s)

    @pytest.mark.parametrize("data", INPUT_SETS)
    def test_sru_via_sri_agrees(self, data):
        s = from_python(data)
        direct = sru(mkset(), singleton, lambda a, b: a.union(b), s)
        translated = sru_via_sri(mkset(), singleton, lambda a, b: a.union(b), s)
        assert direct == translated

    def test_esr_via_sri_agrees_on_parity(self):
        bits = [True, False, True, True]
        s = tagged(bits)
        insert = lambda y, acc: boolean(y.snd.value != acc.value)
        assert esr_via_sri(FALSE, insert, s) == esr(FALSE, insert, s)

    def test_translation_overhead_is_polynomial(self):
        e, f, u = sum_instance()
        s = from_python(set(range(32)))
        direct = EvaluationTrace()
        dcr(e, f, u, s, direct)
        translated = EvaluationTrace()
        dcr_via_sri(e, f, u, s, translated)
        assert translated.work <= 10 * direct.work + 100


class TestProposition22:
    def test_flat_bound_covers_active_domain_relation(self):
        t = parse_type("{D x D}")
        bound = flat_bound(t, [0, 1, 2])
        assert len(bound) == 9

    def test_dcr_via_bdcr_flat_transitive_closure(self):
        edges = {(0, 1), (1, 2), (2, 3)}
        r = from_python(edges)
        atoms = sorted({a for e in edges for a in e})

        def comp(r1, r2):
            return mkset(
                pair(p.fst, q.snd) for p in r1 for q in r2 if p.snd == q.fst
            )

        def combine(a, b):
            return a.union(b).union(comp(a, b)).union(comp(b, a))

        nodes = from_python(set(atoms))
        unbounded = dcr(mkset(), lambda y: r, combine, nodes)
        bounded = dcr_via_bdcr_flat(
            mkset(), lambda y: r, combine, parse_type("{D x D}"), atoms, nodes
        )
        assert bounded == unbounded

    def test_flat_bound_rejects_nested_type(self):
        with pytest.raises(TypeError):
            flat_bound(parse_type("{{D}}"), [0, 1])


class TestProposition73:
    @pytest.mark.parametrize("bits", [[], [True], [True, False, True], [True] * 9, [False, True] * 8])
    def test_dcr_via_log_loop_parity(self, bits):
        e, f, u = parity_instance()
        s = tagged(bits)
        assert dcr_via_log_loop(e, f, u, s) == dcr(e, f, u, s)

    @pytest.mark.parametrize("data", INPUT_SETS)
    def test_dcr_via_log_loop_sum(self, data):
        e, f, u = sum_instance()
        s = from_python(data)
        assert dcr_via_log_loop(e, f, u, s) == dcr(e, f, u, s)

    def test_dcr_via_log_loop_uses_logarithmic_rounds(self):
        e, f, u = sum_instance()
        s = from_python(set(range(64)))
        trace = EvaluationTrace()
        dcr_via_log_loop(e, f, u, s, trace)
        assert trace.combine_rounds <= log_iterations(64)

    @pytest.mark.parametrize("n", [0, 1, 5, 16, 33])
    def test_log_loop_via_dcr(self, n):
        x = from_python(set(range(n)))
        step = lambda v: base(v.value * 2 + 1)
        assert log_loop_via_dcr(step, x, base(0)) == log_loop(step, x, base(0))

    def test_simulation_instance_satisfies_dcr_preconditions(self):
        step = lambda v: base(v.value + 3)
        e, f_elem, u = simulation_dcr_instance(step, base(1))
        report = check_dcr_preconditions(
            e, f_elem, u, list(from_python({10, 20, 30})), max_carrier=40
        )
        assert report.ok, str(report)

    @pytest.mark.parametrize("n", [0, 1, 4, 9])
    def test_loop_via_esr(self, n):
        x = from_python(set(range(n)))
        step = lambda v: base(v.value + 2)
        assert loop_via_esr(step, x, base(0)) == loop(step, x, base(0))

    @pytest.mark.parametrize("data", INPUT_SETS)
    def test_sri_via_loop(self, data):
        s = from_python(data)
        insert = lambda x, acc: base(acc.value * 2 + x.value)
        assert sri_via_loop(base(0), insert, s) == sri(base(0), insert, s)


class TestOrderedRecursions:
    def test_set_reduce_consumes_in_increasing_order(self):
        s = from_python({3, 1, 2})
        # Build a list by consing: the first applied element must be the least.
        result = set_reduce(
            lambda x, acc: pair(x, acc), from_python(set()), s
        )
        assert result.fst == base(1)

    def test_set_reduce_equals_sri_for_commutative_ops(self):
        s = from_python({4, 7, 9})
        insert = lambda x, acc: base(x.value + acc.value)
        assert set_reduce(insert, base(0), s) == sri(base(0), insert, s)

    def test_ordered_dcr_equals_dcr_for_assoc_comm_ops(self):
        e, f, u = sum_instance()
        s = from_python(set(range(11)))
        assert ordered_dcr(u, f, e, s) == dcr(e, f, u, s)

    def test_ordered_dcr_allows_non_commutative_ops(self):
        # String concatenation in order: well-defined because of the ordering.
        s = from_python({2, 1, 3})
        result = ordered_dcr(
            lambda a, b: base(str(a.value) + str(b.value)),
            lambda x: base(str(x.value)),
            base(""),
            s,
        )
        assert result == base("123")
