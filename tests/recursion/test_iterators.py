"""Tests for loop / log_loop and their bounded versions."""

import pytest

from repro.objects.types import parse_type
from repro.objects.values import BaseVal, base, from_python, mkset, singleton
from repro.recursion.forms import EvaluationTrace
from repro.recursion.iterators import (
    blog_loop,
    bloop,
    iterate,
    iteration_count,
    log_iterations,
    log_loop,
    loop,
    nested_log_loop,
)


def inc(v):
    return base(v.value + 1)


class TestLogIterations:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (1023, 10)])
    def test_bit_length(self, n, expected):
        assert log_iterations(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_iterations(-1)


class TestLoops:
    def test_loop_applies_cardinality_times(self):
        x = from_python(set(range(5)))
        assert loop(inc, x, base(0)) == base(5)

    def test_log_loop_applies_bit_length_times(self):
        x = from_python(set(range(5)))
        assert log_loop(inc, x, base(0)) == base(3)

    def test_empty_set_means_no_iterations(self):
        assert loop(inc, mkset(), base(7)) == base(7)
        assert log_loop(inc, mkset(), base(7)) == base(7)

    def test_iterate_explicit(self):
        assert iterate(inc, base(0), 4) == base(4)

    def test_loop_rejects_non_set(self):
        with pytest.raises(TypeError):
            loop(inc, base(1), base(0))  # type: ignore[arg-type]

    def test_trace_records_rounds(self):
        t = EvaluationTrace()
        log_loop(inc, from_python(set(range(16))), base(0), t)
        assert t.depth == 5
        assert t.work == 5


class TestBoundedLoops:
    def test_blog_loop_clips_each_step(self):
        x = from_python(set(range(8)))
        bound = from_python({0, 1, 2})

        def grow(s):
            return s.union(singleton(base(max((e.value for e in s), default=-1) + 1)))

        unbounded = log_loop(grow, x, mkset())
        bounded = blog_loop(grow, bound, parse_type("{D}"), x, mkset())
        assert len(unbounded) == 4
        assert bounded.is_subset(bound)

    def test_bloop_clips_each_step(self):
        x = from_python(set(range(4)))
        bound = from_python({0, 1})

        def grow(s):
            return s.union(singleton(base(len(s))))

        bounded = bloop(grow, bound, parse_type("{D}"), x, mkset())
        assert bounded.is_subset(bound)

    def test_bounded_requires_ps_type(self):
        from repro.objects.types import BASE
        from repro.recursion.bounded import BoundingError

        with pytest.raises(BoundingError):
            blog_loop(inc, base(9), BASE, from_python({1}), base(0))


class TestNestedLogLoop:
    def test_depth_one_equals_log_loop(self):
        x = from_python(set(range(9)))
        assert nested_log_loop(inc, x, base(0), 1) == log_loop(inc, x, base(0))

    def test_depth_two_squares_the_count(self):
        x = from_python(set(range(15)))  # bit length 4
        result = nested_log_loop(inc, x, base(0), 2)
        assert result == base(16)

    def test_iteration_count_matches(self):
        x = from_python(set(range(15)))
        for k in (1, 2, 3):
            assert nested_log_loop(inc, x, base(0), k) == base(iteration_count(x, k))

    def test_rejects_zero_nesting(self):
        with pytest.raises(ValueError):
            nested_log_loop(inc, mkset(), base(0), 0)
