"""Tests for the algebraic precondition checker and the undecidability gadget."""

from repro.objects.values import base, from_python, mkset, singleton
from repro.recursion.algebraic import (
    carrier_closure,
    check_dcr_preconditions,
    check_sri_preconditions,
    conditional_operation,
    difference_op,
    has_identity,
    is_associative,
    is_commutative,
    is_i_commutative,
    is_i_idempotent,
    is_idempotent,
    union_op,
)


def plus(a, b):
    return base(a.value + b.value)


def minus(a, b):
    return base(a.value - b.value)


SMALL_INTS = [base(i) for i in range(4)]


class TestIdentityChecks:
    def test_plus_is_associative_commutative(self):
        assert is_associative(plus, SMALL_INTS) is None
        assert is_commutative(plus, SMALL_INTS) is None

    def test_minus_violations_reported_with_witnesses(self):
        violation = is_commutative(minus, SMALL_INTS)
        assert violation is not None
        assert violation.identity == "commutativity"
        assert len(violation.witnesses) == 2

    def test_zero_is_identity_for_plus(self):
        assert has_identity(plus, base(0), SMALL_INTS) is None
        assert has_identity(plus, base(1), SMALL_INTS) is not None

    def test_union_is_idempotent_plus_is_not(self):
        sets = [from_python(set(range(i))) for i in range(3)]
        assert is_idempotent(union_op, sets) is None
        assert is_idempotent(plus, [base(2)]) is not None

    def test_insert_identities(self):
        elems = [base(1), base(2)]
        carrier = [from_python(set()), from_python({1}), from_python({1, 2})]
        insert = lambda x, s: s.union(singleton(x))
        assert is_i_commutative(insert, elems, carrier) is None
        assert is_i_idempotent(insert, elems, carrier) is None

    def test_non_i_idempotent_insert_detected(self):
        elems = [base(1)]
        carrier = [base(0), base(1), base(2)]
        count_insert = lambda x, acc: base(acc.value + 1)
        assert is_i_idempotent(count_insert, elems, carrier) is not None


class TestCarrierClosure:
    def test_closure_under_union(self):
        seeds = [from_python({1}), from_python({2})]
        carrier, truncated = carrier_closure(seeds, union_op, max_size=16)
        assert not truncated
        assert from_python({1, 2}) in carrier

    def test_truncation_flag(self):
        seeds = [base(1)]
        carrier, truncated = carrier_closure(seeds, plus, max_size=5)
        assert truncated
        assert len(carrier) == 5


class TestCombinedChecks:
    def test_dcr_preconditions_hold_for_union(self):
        report = check_dcr_preconditions(
            mkset(), singleton, union_op, list(from_python({1, 2, 3})), max_carrier=32
        )
        assert report.ok

    def test_dcr_preconditions_fail_for_difference(self):
        report = check_dcr_preconditions(
            mkset(), singleton, difference_op, list(from_python({1, 2})), max_carrier=16
        )
        assert not report.ok
        assert any("assoc" in str(v) or "commut" in str(v) or "identity" in str(v)
                   for v in report.violations)

    def test_sru_requires_idempotence(self):
        report = check_dcr_preconditions(
            base(0), lambda x: x, plus, [base(1), base(2)],
            max_carrier=16, require_idempotence=True,
        )
        assert not report.ok
        assert any(v.identity == "idempotence" for v in report.violations)

    def test_sri_preconditions_for_set_insertion(self):
        insert = lambda x, s: s.union(singleton(x))
        report = check_sri_preconditions(mkset(), insert, list(from_python({1, 2})), max_carrier=16)
        assert report.ok

    def test_esr_mode_skips_i_idempotence(self):
        count_insert = lambda x, acc: base(acc.value + 1)
        strict = check_sri_preconditions(
            base(0), count_insert, [base(1)], max_carrier=8, require_i_idempotence=True
        )
        relaxed = check_sri_preconditions(
            base(0), count_insert, [base(1)], max_carrier=8, require_i_idempotence=False
        )
        assert not strict.ok
        assert relaxed.ok

    def test_report_string_mentions_status(self):
        report = check_dcr_preconditions(
            mkset(), singleton, union_op, list(from_python({1})), max_carrier=8
        )
        assert "well-defined" in str(report)


class TestUndecidabilityGadget:
    def test_gadget_is_well_behaved_iff_predicate_true(self):
        sets = [from_python(set()), from_python({1}), from_python({2}), from_python({1, 2})]
        good = conditional_operation(True, union_op, difference_op)
        bad = conditional_operation(False, union_op, difference_op)
        assert is_associative(good, sets) is None
        assert is_commutative(good, sets) is None
        assert (is_associative(bad, sets) is not None) or (is_commutative(bad, sets) is not None)
