"""Tests for dcr / sru / sri / esr and their work/depth traces."""

import pytest

from repro.objects.values import (
    FALSE,
    TRUE,
    BaseVal,
    BoolVal,
    PairVal,
    SetVal,
    base,
    boolean,
    from_python,
    mkset,
    pair,
    singleton,
    to_python,
)
from repro.recursion.forms import EvaluationTrace, dcr, esr, sri, sru


def xor(a, b):
    return boolean(a.value != b.value)


def tagged_bools(bits):
    return mkset(pair(base(i), boolean(b)) for i, b in enumerate(bits))


def snd(y):
    return y.snd


class TestDcr:
    def test_empty_set_returns_seed(self):
        assert dcr(FALSE, snd, xor, mkset()) == FALSE

    def test_singleton_applies_item(self):
        s = tagged_bools([True])
        assert dcr(FALSE, snd, xor, s) == TRUE

    @pytest.mark.parametrize("bits", [[True], [True, True], [True, False, True], [True] * 7])
    def test_parity(self, bits):
        expected = boolean(sum(bits) % 2 == 1)
        assert dcr(FALSE, snd, xor, tagged_bools(bits)) == expected

    def test_sum_via_dcr(self):
        s = from_python({1, 2, 3, 4})
        total = dcr(base(0), lambda x: x, lambda a, b: base(a.value + b.value), s)
        assert total == base(10)

    def test_union_collect(self):
        s = from_python({1, 2, 3})
        result = dcr(mkset(), singleton, lambda a, b: a.union(b), s)
        assert result == s

    def test_rejects_non_set(self):
        with pytest.raises(Exception):
            dcr(FALSE, snd, xor, base(1))  # type: ignore[arg-type]

    def test_trace_depth_is_logarithmic(self):
        t16 = EvaluationTrace()
        dcr(base(0), lambda x: x, lambda a, b: base(a.value + b.value), from_python(set(range(16))), t16)
        t256 = EvaluationTrace()
        dcr(base(0), lambda x: x, lambda a, b: base(a.value + b.value), from_python(set(range(256))), t256)
        assert t16.depth == 5  # 1 leaf + 4 combine levels
        assert t256.depth == 9
        assert t256.combine_rounds == 8

    def test_trace_work_counts_applications(self):
        t = EvaluationTrace()
        dcr(base(0), lambda x: x, lambda a, b: base(a.value + b.value), from_python(set(range(8))), t)
        assert t.work == 8 + 7  # n item applications, n-1 combines


class TestSru:
    def test_agrees_with_dcr_on_idempotent_ops(self):
        s = from_python({3, 1, 4, 1, 5})
        a = sru(mkset(), singleton, lambda x, y: x.union(y), s)
        b = dcr(mkset(), singleton, lambda x, y: x.union(y), s)
        assert a == b

    def test_max_via_sru(self):
        s = from_python({3, 9, 2})
        mx = sru(base(0), lambda x: x, lambda a, b: base(max(a.value, b.value)), s)
        assert mx == base(9)


class TestSriEsr:
    def test_sri_empty(self):
        assert sri(base(0), lambda x, acc: base(acc.value + x.value), mkset()) == base(0)

    def test_sri_sum(self):
        s = from_python({1, 2, 3})
        assert sri(base(0), lambda x, acc: base(acc.value + x.value), s) == base(6)

    def test_sri_collect(self):
        s = from_python({1, 2, 3})
        result = sri(mkset(), lambda x, acc: acc.union(singleton(x)), s)
        assert result == s

    def test_esr_parity(self):
        s = tagged_bools([True, True, True])
        result = esr(FALSE, lambda y, acc: boolean(y.snd.value != acc.value), s)
        assert result == TRUE

    def test_sri_depth_is_linear(self):
        t = EvaluationTrace()
        sri(base(0), lambda x, acc: base(acc.value + x.value), from_python(set(range(64))), t)
        assert t.depth == 64
        assert t.work == 64

    def test_sri_rejects_non_set(self):
        with pytest.raises(Exception):
            sri(base(0), lambda x, acc: acc, base(1))  # type: ignore[arg-type]

    def test_dcr_and_esr_agree_when_preconditions_hold(self):
        s = from_python({2, 4, 6, 8})
        via_dcr = dcr(base(0), lambda x: x, lambda a, b: base(a.value + b.value), s)
        via_esr = esr(base(0), lambda x, acc: base(x.value + acc.value), s)
        assert via_dcr == via_esr


class TestTransitiveClosureViaDcr:
    def test_path_graph(self):
        edges = {(i, i + 1) for i in range(6)}
        r = from_python(edges)

        def comp(r1, r2):
            out = []
            for p in r1:
                for q in r2:
                    if p.snd == q.fst:
                        out.append(pair(p.fst, q.snd))
            return mkset(out)

        def combine(a, b):
            return a.union(b).union(comp(a, b)).union(comp(b, a))

        nodes = from_python({i for e in edges for i in e})
        tc = dcr(mkset(), lambda y: r, combine, nodes)
        expected = {(i, j) for i in range(7) for j in range(7) if i < j}
        assert to_python(tc) == frozenset(expected)
