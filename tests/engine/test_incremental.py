"""Unit suite for the incremental view-maintenance subsystem (PRs 5-6).

Covers the delta rules per operator shape (map / select / join / union /
general ext / fixpoint), support counting under deletions, delete/rederive
(DRed) over counted fixpoints -- alternative-derivation rederivation, cyclic
self-support, mixed batches, the honesty boundary where unhandleable loop
shapes still degrade to whole-view recompute -- the conservative recompute
fallbacks, mutable-database changeset normalization, view invalidation
ordering and staleness, the session/stats wiring, and the ``ivm-*``
maintenance-plan trees (including the ``ivm-dred-*`` sub-steps).  The
cross-backend *oracle* (maintained == recomputed over random update
sequences, incl. deletion-heavy streams) lives in
``tests/property/test_backend_differential.py``; a seeded in-file deletion
oracle rides in the fast matrix here.
"""

import pytest

from repro.api import Changeset, Database, MaterializedView, Q, connect
from repro.engine import Engine
from repro.engine.incremental.delta import derive
from repro.nra import ast
from repro.nra.ast import Lambda, Singleton, Var
from repro.nra.derived import compose, ext_apply, select
from repro.nra.errors import NRAEvalError
from repro.nra.externals import ExternalFunction, Signature
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, from_python
from repro.relational.queries import REL_T
from repro.workloads.databases import graph_database, nested_graph_database
from repro.workloads.graphs import path_graph, random_graph
from repro.workloads.streams import (
    alternating_update_stream,
    deletion_update_stream,
    graph_update_stream,
    mixed_update_stream,
    nested_update_stream,
    stream_graph_database,
    stream_nested_database,
)

pytestmark = pytest.mark.ivm

EDGE_T = ProdType(BASE, BASE)


def fresh_graph_db(n=8, kind="path", **kw):
    return graph_database(n, kind, mutable=True, **kw)


def assert_matches_cold(session, view, query):
    assert view.value == session.execute(query).value


# ---------------------------------------------------------------------------
# Changesets and mutable databases
# ---------------------------------------------------------------------------

class TestMutableDatabase:
    def test_insert_returns_net_changeset_and_updates_contents(self):
        db = fresh_graph_db(4)
        cs = db.insert("edges", [(0, 3), (0, 1)])  # (0, 1) already present
        assert cs.collections() == ["edges"]
        assert [str(v) for v in cs["edges"].inserts] == ["(0, 3)"]
        assert not cs["edges"].deletes
        assert from_python((0, 3)) in db["edges"]

    def test_delete_drops_absent_rows_from_the_changeset(self):
        db = fresh_graph_db(4)
        cs = db.delete("edges", [(0, 1), (9, 9)])
        assert len(cs["edges"].deletes) == 1
        assert from_python((0, 1)) not in db["edges"]

    def test_noop_commit_is_empty_and_does_not_bump_the_version(self):
        db = fresh_graph_db(4)
        v0 = db.version
        cs = db.insert("edges", [(0, 1)])
        assert not cs and db.version == v0

    def test_delete_and_reinsert_in_one_commit_cancel(self):
        db = fresh_graph_db(4)
        cs = db.apply(Changeset.of(edges=([(0, 1)], [(0, 1)])))
        assert not cs
        assert from_python((0, 1)) in db["edges"]

    def test_insert_validates_against_the_element_type(self):
        db = fresh_graph_db(4)
        with pytest.raises(TypeError, match="element"):
            db.insert("edges", [7])

    def test_unknown_collection_raises_and_commits_nothing(self):
        db = fresh_graph_db(4)
        v0 = db.version
        with pytest.raises(KeyError):
            db.apply(Changeset.of(nowhere=([(1, 2)], [])))
        assert db.version == v0

    def test_frozen_database_refuses_mutation(self):
        db = graph_database(4, "path")  # builders freeze by default
        assert not db.mutable
        with pytest.raises(RuntimeError, match="frozen"):
            db.insert("edges", [(2, 0)])

    def test_version_bump_refreshes_attached_sessions(self):
        db = fresh_graph_db(4)
        session = connect(db)
        before = session.execute(Q.coll("edges")).value
        db.insert("edges", [(3, 0)])
        after = session.execute(Q.coll("edges")).value
        assert len(after.elements) == len(before.elements) + 1

    def test_multi_collection_changeset_applies_atomically(self):
        db = nested_graph_database(6, 0.3, seed=1, mutable=True)
        cs = db.apply(Changeset.of(edges=([(0, 5)], []), adj=([], [])))
        assert cs.collections() == ["edges"]
        assert cs.rows_touched() == 1


# ---------------------------------------------------------------------------
# Delta rules per operator
# ---------------------------------------------------------------------------

class TestDeltaRules:
    def check(self, db, query, batches):
        """Materialize, replay batches, compare with cold recompute each time."""
        session = connect(db)
        view = session.materialize(query)
        for ins, dels in batches:
            db.apply(Changeset.of(edges=(ins, dels)))
            assert_matches_cold(session, view, query)
        return view

    def test_map_rule(self):
        view = self.check(
            fresh_graph_db(6),
            Q.coll("edges").map(lambda e: e.snd),
            [([(0, 4), (2, 5)], []), ([], [(0, 1), (2, 5)])],
        )
        assert view.maintenance_plan().ops() == {"ivm-map", "ivm-base"}
        assert view.stats.fallback_recomputes == 0

    def test_select_rule(self):
        view = self.check(
            fresh_graph_db(6),
            Q.coll("edges").where(lambda e: e.fst == 2),
            [([(2, 0), (2, 5)], []), ([], [(2, 3), (2, 0)])],
        )
        assert view.maintenance_plan().ops() == {"ivm-select", "ivm-base"}
        assert view.stats.fallback_recomputes == 0

    def test_join_rule_both_sides(self):
        view = self.check(
            fresh_graph_db(8),
            Q.coll("edges").compose(Q.coll("edges")),
            [([(0, 5), (5, 2)], []), ([(7, 0)], [(1, 2)]), ([], [(5, 2)])],
        )
        assert view.maintenance_plan().ops() == {"ivm-join", "ivm-base"}
        assert view.stats.fallback_recomputes == 0

    def test_union_rule_with_overlap(self):
        q = (Q.coll("edges").where(lambda e: e.fst == 1)
             | Q.coll("edges").where(lambda e: e.snd == 2))
        view = self.check(
            fresh_graph_db(6), q,
            [([(1, 5)], []), ([], [(1, 2)])],  # (1, 2) satisfied both arms
        )
        assert "ivm-union" in view.maintenance_plan().ops()
        assert view.stats.fallback_recomputes == 0

    def test_general_ext_rule_via_unnest(self):
        db = stream_nested_database(8, 0.3, seed=2)
        session = connect(db)
        query = Q.coll("adj").unnest()
        view = session.materialize(query)
        assert view.maintenance_plan().ops() == {"ivm-ext", "ivm-base"}
        for cs in nested_update_stream(db, churn=0.3, seed=3).run(4):
            assert_matches_cold(session, view, query)
        assert view.stats.fallback_recomputes == 0

    def test_fixpoint_rule_insert_only(self):
        db = fresh_graph_db(10)
        session = connect(db)
        query = Q.coll("edges").fix()
        view = session.materialize(query)
        assert view.maintenance_plan().ops() == {
            "ivm-fixpoint", "ivm-base", "ivm-dred-overdelete", "ivm-dred-rederive"
        }
        db.insert("edges", [(9, 0)])  # closes the cycle: closure becomes total
        assert_matches_cold(session, view, query)
        assert len(view.value.elements) == 100
        assert view.stats.fallback_recomputes == 0
        assert view.stats.seminaive_rounds > 0

    def test_fixpoint_with_a_budget_not_reading_the_seed_degrades(self):
        # A loop whose iteration budget is a *constant* control set stays
        # fixed while the data grows: a cold run's round count can stop
        # short of the fixpoint a semi-naive continuation reaches.  The
        # delta compiler must reject the shape (the view then serves the
        # exact cold value through recompute mode).
        from repro.nra.derived import compose as compose_expr

        step = Lambda("rr", REL_T,
                      ast.Union(Var("rr"), compose_expr(Var("rr"), Var("rr"), BASE)))
        budget = ast.Const(from_python({0, 1}), SetType(BASE))  # 2 rounds, forever
        expr = ast.Apply(ast.Loop(step, BASE), ast.Pair(budget, Var("edges")))
        db = Database("g", mutable=True).register(
            "edges", from_python({(0, 1), (1, 2)}), type=REL_T
        )
        session = connect(db)
        view = session.materialize(expr)
        assert "ivm-recompute" in view.maintenance_plan().ops()
        db.insert("edges", [(2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)])
        assert_matches_cold(session, view, expr)

    def test_fixpoint_deletion_maintains_by_delete_rederive(self):
        # PR 5 fell back to whole-view recompute here; the DRed pass now
        # over-deletes the derivation cone of the lost edge and re-proves
        # survivors -- no fallback, and on a path graph nothing rederives.
        db = fresh_graph_db(10)
        session = connect(db)
        query = Q.coll("edges").fix()
        view = session.materialize(query)
        db.delete("edges", [(4, 5)])
        assert_matches_cold(session, view, query)
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies == 1
        assert view.stats.dred_overdeletes == 25  # pairs (i, j), i <= 4 < 5 <= j
        assert view.stats.dred_rederives == 0  # a path has no alternative proofs

    def test_fixpoint_over_a_maintained_join_base(self):
        # fix() over two-hop edges: the fixpoint child is itself a join node.
        db = fresh_graph_db(12, "cycle")
        session = connect(db)
        query = Q.coll("edges").compose(Q.coll("edges")).fix()
        view = session.materialize(query)
        assert view.maintenance_plan().ops() == {
            "ivm-fixpoint", "ivm-join", "ivm-base",
            "ivm-dred-overdelete", "ivm-dred-rederive",
        }
        db.insert("edges", [(3, 11), (11, 6)])
        assert_matches_cold(session, view, query)
        assert view.stats.fallback_recomputes == 0


class TestSupportCounting:
    def test_join_output_survives_losing_one_of_two_derivations(self):
        db = Database("g", mutable=True).register(
            "edges", from_python({(0, 1), (1, 2), (0, 3), (3, 2)}), type=REL_T
        )
        session = connect(db)
        q = Q.coll("edges").compose(Q.coll("edges"))
        view = session.materialize(q)
        assert (0, 2) in view.rows()  # derived via 1 and via 3
        db.delete("edges", [(1, 2)])
        assert (0, 2) in view.rows()  # still derived via 3
        assert_matches_cold(session, view, q)
        db.delete("edges", [(3, 2)])
        assert (0, 2) not in view.rows()  # last derivation gone
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0

    def test_union_output_survives_losing_one_arm(self):
        db = Database("g", mutable=True).register(
            "edges", from_python({(1, 1), (2, 1)}), type=REL_T
        )
        session = connect(db)
        q = (Q.coll("edges").where(lambda e: e.fst == 1)
             | Q.coll("edges").where(lambda e: e.snd == 1))
        view = session.materialize(q)
        # (1, 1) is produced by both arms; delete nothing, shrink one arm.
        db.insert("edges", [(1, 3)])
        db.delete("edges", [(2, 1)])
        assert (1, 1) in view.rows()
        assert_matches_cold(session, view, q)


# ---------------------------------------------------------------------------
# Delete/rederive over counted fixpoints (the PR 6 tentpole)
# ---------------------------------------------------------------------------

class TestDRed:
    pytestmark = pytest.mark.dred

    def test_alternative_derivation_is_rederived(self):
        # Diamond 0->1->3, 0->2->3: deleting (1, 3) strands (0, 3)'s
        # through-1 derivation, but rederivation re-proves it via 2.
        db = Database("g", mutable=True).register(
            "edges", from_python({(0, 1), (1, 3), (0, 2), (2, 3)}), type=REL_T
        )
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        db.delete("edges", [(1, 3)])
        assert (0, 3) in view.rows()
        assert_matches_cold(session, view, q)
        assert view.stats.dred_applies == 1
        assert view.stats.dred_overdeletes == 2  # (1, 3) and (0, 3)
        assert view.stats.dred_rederives == 1  # (0, 3), via the other path
        assert view.stats.fallback_recomputes == 0

    def test_cyclic_self_support_does_not_keep_tuples_alive(self):
        # On a cycle every closure pair "supports itself" around the loop;
        # counted maintenance alone would never drop them.  Over-deletion
        # deliberately breaks cyclic support, rederivation restores exactly
        # the pairs the broken graph still proves.
        db = fresh_graph_db(8, "cycle")
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        assert len(view.value.elements) == 64  # total closure on the cycle
        db.delete("edges", [(3, 4)])
        assert_matches_cold(session, view, q)
        assert len(view.value.elements) == 28  # the surviving 7-path's pairs
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies == 1

    def test_mixed_insert_delete_batch_is_one_dred_pass(self):
        db = fresh_graph_db(10)
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        db.apply(Changeset.of(edges=([(9, 0), (4, 6)], [(4, 5)])))
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies == 1

    def test_deletion_through_a_maintained_join_base(self):
        # fix() over two-hop edges: base deletes reach the fixpoint as the
        # join node's bilinear output deltas, and DRed consumes them.
        db = fresh_graph_db(12, "cycle")
        session = connect(db)
        q = Q.coll("edges").compose(Q.coll("edges")).fix()
        view = session.materialize(q)
        db.delete("edges", [(2, 3)])
        assert_matches_cold(session, view, q)
        db.apply(Changeset.of(edges=([(2, 3)], [(7, 8), (8, 9)])))
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies == 2

    def test_non_join_step_takes_the_generic_frontier_path(self):
        # Symmetric closure: the step maps over the accumulator instead of
        # joining it against itself, so the bilinear self-indexes don't
        # apply and deletions run the generic frontier-term DRed.
        swap = Lambda(
            "p", EDGE_T,
            Singleton(ast.Pair(ast.Proj2(Var("p")), ast.Proj1(Var("p")))),
        )
        step = Lambda("rr", REL_T,
                      ast.Union(Var("rr"), ext_apply(swap, Var("rr"))))
        expr = ast.Apply(ast.Loop(step, BASE), ast.Pair(Var("edges"), Var("edges")))
        db = Database("g", mutable=True).register(
            "edges", from_python({(0, 1), (1, 2), (2, 3)}), type=REL_T
        )
        session = connect(db)
        view = session.materialize(expr)
        fix = next(n for n in view.maintenance_plan().walk()
                   if n.op == "ivm-fixpoint")
        assert "bilinear-indexed" not in fix.annotations
        db.delete("edges", [(1, 2)])
        assert_matches_cold(session, view, expr)
        assert view.rows() == {(0, 1), (1, 0), (2, 3), (3, 2)}
        assert view.stats.dred_applies == 1
        assert view.stats.dred_overdeletes == 2  # (1, 2) and its mirror
        assert view.stats.fallback_recomputes == 0

    def test_repeated_deletions_converge_to_the_empty_closure(self):
        db = fresh_graph_db(6)
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        for edge in [(2, 3), (0, 1), (4, 5), (1, 2), (3, 4)]:
            db.delete("edges", [edge])
            assert_matches_cold(session, view, q)
        assert view.rows() == frozenset()
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies == 5


class TestDRedHonestyBoundary:
    """Loop shapes the delta compiler rejects still recompute on deletion.

    DRed is gated by the same grammar as the semi-naive continuation: a view
    that compiles to ``ivm-fixpoint`` is deletion-maintainable, and one that
    does not must keep taking the whole-view recompute path -- visibly, via
    ``fallback_recomputes`` -- rather than an unsound delta.
    """

    pytestmark = pytest.mark.dred

    def _materialize(self, expr, edges):
        db = Database("g", mutable=True).register(
            "edges", from_python(edges), type=REL_T
        )
        session = connect(db)
        return db, session, session.materialize(expr)

    def test_constant_budget_loop_recomputes_on_delete(self):
        step = Lambda("rr", REL_T,
                      ast.Union(Var("rr"), compose(Var("rr"), Var("rr"), BASE)))
        budget = ast.Const(from_python({0, 1}), SetType(BASE))
        expr = ast.Apply(ast.Loop(step, BASE), ast.Pair(budget, Var("edges")))
        db, session, view = self._materialize(
            expr, {(0, 1), (1, 2), (2, 3), (3, 4)}
        )
        assert "ivm-recompute" in view.maintenance_plan().ops()
        db.delete("edges", [(1, 2)])
        assert_matches_cold(session, view, expr)
        assert view.stats.fallback_recomputes == 1
        assert view.stats.dred_applies == 0

    def test_step_reading_a_mutable_collection_recomputes_on_delete(self):
        # The step body reads "edges" beyond the accumulator: a commit
        # changes the step function itself, so no frontier algebra applies.
        step = Lambda("rr", REL_T,
                      ast.Union(Var("rr"), compose(Var("rr"), Var("edges"), BASE)))
        expr = ast.Apply(ast.Loop(step, BASE), ast.Pair(Var("edges"), Var("edges")))
        db, session, view = self._materialize(
            expr, {(0, 1), (1, 2), (2, 3), (3, 4)}
        )
        assert "ivm-recompute" in view.maintenance_plan().ops()
        db.delete("edges", [(2, 3)])
        assert_matches_cold(session, view, expr)
        db.apply(Changeset.of(edges=([(2, 3)], [(0, 1)])))
        assert_matches_cold(session, view, expr)
        assert view.stats.fallback_recomputes == 2
        assert view.stats.dred_applies == 0

    def test_difference_over_a_fixpoint_recomputes_on_delete(self):
        # Difference is outside the counted grammar even when one operand
        # is a maintainable fixpoint: the whole view degrades, honestly.
        q = Q.coll("edges").fix() - Q.coll("edges")
        db = fresh_graph_db(8)
        session = connect(db)
        view = session.materialize(q)
        assert view.recompute_only
        db.delete("edges", [(3, 4)])
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 1
        assert view.stats.dred_applies == 0


class TestDeletionStreamOracle:
    """Seeded deletion-heavy / mixed-churn replay riding in the fast matrix.

    Each case replays a seeded stream against a recursive view and compares
    with a cold recompute after every commit; the stats counters prove the
    DRed path (not the recompute fallback) served every deletion.  The wide
    100-seed oracle lives in ``tests/property/test_backend_differential.py``.
    """

    pytestmark = pytest.mark.dred

    @pytest.mark.parametrize("seed", range(8))
    def test_deletion_stream_on_transitive_closure(self, seed):
        db = stream_graph_database(24, "random", seed=seed, p=0.12)
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        deleted = 0
        for cs in deletion_update_stream(db, churn=0.05, seed=seed + 100).run(6):
            d = cs.get("edges")
            deleted += len(d.deletes) if d else 0
            assert_matches_cold(session, view, q)
        assert deleted > 0
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_stream_on_two_hop_closure(self, seed):
        db = stream_graph_database(16, "random", seed=seed, p=0.15)
        session = connect(db)
        q = Q.coll("edges").compose(Q.coll("edges")).fix()
        view = session.materialize(q)
        stream = mixed_update_stream(db, churn=0.08, seed=seed + 7, domain=16)
        for _ in stream.run(5):
            assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_alternating_stream_grow_then_shrink(self, seed):
        db = stream_graph_database(20, "random", seed=seed, p=0.1)
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q)
        stream = alternating_update_stream(db, churn=0.06, seed=seed + 3, domain=20)
        for _ in stream.run(6):
            assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0
        assert view.stats.dred_applies > 0


# ---------------------------------------------------------------------------
# Fallbacks and degraded modes
# ---------------------------------------------------------------------------

class TestFallbacks:
    def test_difference_shape_runs_in_recompute_mode(self):
        db = fresh_graph_db(6)
        session = connect(db)
        q = Q.coll("edges") - Q.coll("edges").where(lambda e: e.fst == 2)
        view = session.materialize(q)
        assert "ivm-recompute" in view.maintenance_plan().ops()
        assert view.recompute_only
        db.insert("edges", [(2, 0), (4, 0)])
        assert_matches_cold(session, view, q)
        db.delete("edges", [(2, 3)])
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 2

    def test_correlated_flat_map_is_recognised_as_a_join(self):
        # A correlated subquery in the equi-join shape is maintained
        # bilinearly, not degraded: the analysis sees through flat_map.
        q = Q.coll("edges").flat_map(
            lambda e: Q.coll("edges").where(lambda f: f.fst == e.snd)
        )
        db = fresh_graph_db(6)
        session = connect(db)
        view = session.materialize(q)
        assert view.maintenance_plan().ops() == {"ivm-join", "ivm-base"}
        db.insert("edges", [(5, 1)])
        assert_matches_cold(session, view, q)
        assert view.stats.fallback_recomputes == 0

    def test_ext_body_reading_a_mutable_collection_degrades(self):
        # The subquery ignores the element and is not a join shape: the
        # per-element contribution is no longer a pure function of the
        # element, so the node falls back to recompute.
        q = Q.coll("edges").flat_map(lambda e: Q.coll("edges").project(1))
        db = fresh_graph_db(6)
        session = connect(db)
        view = session.materialize(q)
        assert "ivm-recompute" in view.maintenance_plan().ops()
        db.insert("edges", [(5, 1)])
        assert_matches_cold(session, view, q)

    def test_untouched_views_are_not_refreshed(self):
        db = nested_graph_database(8, 0.25, seed=3, mutable=True)
        session = connect(db)
        adj_view = session.materialize(Q.coll("adj").unnest())
        edge_view = session.materialize(Q.coll("edges").where(lambda e: e.fst == 1))
        db.insert("edges", [(1, 7)])
        assert edge_view.stats.delta_applies == 1
        assert adj_view.stats.delta_applies == 0  # "adj" untouched

    def test_static_query_without_database(self):
        session = connect()
        view = session.materialize(Q.const({1, 2, 3}))
        assert view.rows() == frozenset({1, 2, 3})

    def test_scalar_query_is_rejected(self):
        session = connect(fresh_graph_db(4))
        with pytest.raises(NRAEvalError, match="expected a set"):
            session.materialize(Q.coll("edges").is_empty())


# ---------------------------------------------------------------------------
# Invalidation ordering, staleness, lifecycle
# ---------------------------------------------------------------------------

class TestViewLifecycle:
    def test_views_refresh_in_registration_order(self):
        db = fresh_graph_db(6)
        session = connect(db)
        order = []
        views = []
        for label in ("first", "second", "third"):
            v = session.materialize(Q.coll("edges").map(lambda e: e.fst), name=label)
            v._on_apply = lambda view, delta, fb: order.append(view.name)
            views.append(v)
        db.insert("edges", [(5, 0)])
        assert order == ["first", "second", "third"]
        db.delete("edges", [(5, 0)])
        assert order == ["first", "second", "third"] * 2

    def test_dropping_a_base_collection_marks_dependents_stale(self):
        db = nested_graph_database(6, 0.3, seed=5, mutable=True)
        session = connect(db)
        edge_view = session.materialize(Q.coll("edges").where(lambda e: e.fst == 0))
        adj_view = session.materialize(Q.coll("adj").unnest())
        db.drop("edges")
        assert edge_view.stale and not adj_view.stale
        with pytest.raises(RuntimeError, match="stale"):
            edge_view.value
        # The untouched view keeps serving.
        adj_view.value

    def test_closed_view_refuses_service_and_skips_commits(self):
        db = fresh_graph_db(6)
        session = connect(db)
        view = session.materialize(Q.coll("edges"))
        view.close()
        db.insert("edges", [(5, 0)])
        assert view.stats.delta_applies == 0
        with pytest.raises(RuntimeError, match="closed"):
            view.value

    def test_closing_a_view_unregisters_it_from_the_database(self):
        db = fresh_graph_db(6)
        session = connect(db)
        view = session.materialize(Q.coll("edges"))
        assert db.views() == [view]
        view.close()
        assert db.views() == []

    def test_closing_the_session_closes_its_views(self):
        db = fresh_graph_db(6)
        with connect(db) as session:
            view = session.materialize(Q.coll("edges"))
        assert view.closed and db.views() == []

    def test_commits_skip_stale_views_and_still_reach_later_ones(self):
        # A commit must not fail (after the data already changed) because an
        # earlier-registered view went stale, and views registered after the
        # stale one must still be notified.
        db = nested_graph_database(6, 0.3, seed=9, mutable=True)
        session = connect(db)
        stale_view = session.materialize(Q.coll("adj").unnest())
        live_view = session.materialize(Q.coll("edges").where(lambda e: e.fst == 0))
        db.drop("adj")
        assert stale_view.stale
        db.insert("edges", [(0, 99)])  # must not raise
        assert live_view.stats.delta_applies == 1
        assert (0, 99) in live_view.rows()

    def test_refresh_rebuilds_and_reports_the_diff(self):
        db = fresh_graph_db(6)
        session = connect(db)
        view = session.materialize(Q.coll("edges"))
        delta = view.refresh()
        assert not delta  # nothing changed
        assert view.stats.fallback_recomputes == 1

    def test_materialize_with_params_binds_now(self):
        db = fresh_graph_db(8)
        session = connect(db)
        q = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
        view = session.materialize(q, params={"src": 2})
        db.insert("edges", [(2, 7), (5, 7)])
        assert view.rows() == frozenset({(2, 3), (2, 7)})
        assert view.stats.fallback_recomputes == 0


# ---------------------------------------------------------------------------
# Stats wiring and explain
# ---------------------------------------------------------------------------

class TestStatsAndExplain:
    def test_session_stats_aggregate_view_maintenance(self):
        db = fresh_graph_db(8)
        session = connect(db)
        session.materialize(Q.coll("edges").fix(), name="tc")
        session.materialize(Q.coll("edges").compose(Q.coll("edges")), name="hop")
        assert session.stats.materializes == 2
        db.insert("edges", [(7, 0)])
        assert session.stats.delta_applies == 2
        assert session.stats.fallback_recomputes == 0
        assert session.stats.view_rows_touched > 0
        db.delete("edges", [(3, 4)])
        assert session.stats.delta_applies == 4
        assert session.stats.fallback_recomputes == 0  # DRed, not fallback
        # Deleting one edge of the 8-cycle strands every closure pair's
        # through-(3,4) derivations; the surviving 7-path's pairs re-prove.
        assert session.stats.dred_overdeletes == 64
        assert session.stats.dred_rederives == 28

    def test_engine_explain_plan_incremental_backend(self):
        eng = Engine()
        plan = eng.explain_plan(compose(Var("a"), Var("b"), BASE),
                                backend="incremental")
        assert plan.ops() == {"ivm-join", "ivm-base"}
        assert "bilinear" in plan.annotations

    def test_session_explain_plan_incremental_backend(self):
        session = connect(fresh_graph_db(4))
        plan = session.explain_plan(Q.coll("edges").fix(), backend="incremental")
        assert "ivm-fixpoint" in plan.ops()

    def test_explain_plan_renders_dred_substeps_under_the_fixpoint(self):
        session = connect(fresh_graph_db(4))
        plan = session.explain_plan(Q.coll("edges").fix(), backend="incremental")
        fix = next(n for n in plan.walk() if n.op == "ivm-fixpoint")
        assert "delete-rederive" in fix.annotations
        assert {"ivm-dred-overdelete", "ivm-dred-rederive"} <= {
            c.op for c in fix.children
        }
        # Non-recursive plans carry no DRed sub-steps.
        flat = session.explain_plan(Q.coll("edges").map(lambda e: e.fst),
                                    backend="incremental")
        assert not {"ivm-dred-overdelete", "ivm-dred-rederive"} & flat.ops()

    def test_maintenance_plan_marks_static_subtrees(self):
        eng = Engine()
        expr = ast.Union(Var("edges"), ast.Const(from_python({(1, 2)}), REL_T))
        plan = derive(eng.optimize(expr).optimized, frozenset({"edges"}))
        assert plan.kinds() == {"union", "base", "static"}

    def test_run_rejects_incremental_as_an_execution_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Engine().run(Var("x"), env={"x": from_python({1})},
                         backend="incremental")


# ---------------------------------------------------------------------------
# Error-class agreement with recompute
# ---------------------------------------------------------------------------

class TestErrorAgreement:
    def _sigma(self):
        def boom(v):
            if isinstance(v, BaseVal) and v.value == 13:
                raise NRAEvalError("boom at 13")
            return v

        return Signature([ExternalFunction("boom", BASE, BASE, boom, "raises at 13")])

    def test_maintenance_raises_the_same_error_class_as_recompute(self):
        sigma = self._sigma()
        db = Database("g", mutable=True).register(
            "nums", from_python({1, 2, 3}), type=SetType(BASE)
        )
        session = connect(db, sigma=sigma)
        expr = ast.Apply(
            ast.Ext(Lambda("x", BASE, Singleton(ast.ExternalCall("boom", Var("x"))))),
            Var("nums"),
        )
        view = session.materialize(expr)
        db.insert("nums", [7])
        assert view.rows() == frozenset({1, 2, 3, 7})
        with pytest.raises(NRAEvalError):
            db.insert("nums", [13])
        with pytest.raises(NRAEvalError):
            session.execute(expr)

    def test_materialize_of_a_raising_view_raises_like_execute(self):
        sigma = self._sigma()
        db = Database("g", mutable=True).register(
            "nums", from_python({13}), type=SetType(BASE)
        )
        session = connect(db, sigma=sigma)
        expr = ast.Apply(
            ast.Ext(Lambda("x", BASE, Singleton(ast.ExternalCall("boom", Var("x"))))),
            Var("nums"),
        )
        with pytest.raises(NRAEvalError):
            session.materialize(expr)
        with pytest.raises(NRAEvalError):
            session.execute(expr)


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------

class TestStreams:
    def test_graph_stream_is_deterministic_per_seed(self):
        a = stream_graph_database(16, "random", seed=4, p=0.2)
        b = stream_graph_database(16, "random", seed=4, p=0.2)
        ca = [cs.rows_touched() for cs in graph_update_stream(a, churn=0.1, seed=9).run(3)]
        cb = [cs.rows_touched() for cs in graph_update_stream(b, churn=0.1, seed=9).run(3)]
        assert ca == cb
        assert a["edges"] == b["edges"]

    def test_graph_stream_respects_churn_and_ratio(self):
        db = stream_graph_database(20, "random", seed=6, p=0.3)
        before = len(db["edges"].elements)
        stream = graph_update_stream(db, churn=0.5, insert_ratio=0.0, seed=2)
        cs = stream.step()
        assert not cs["edges"].inserts
        assert len(cs["edges"].deletes) == round(0.5 * before)

    def test_nested_stream_rewrites_whole_records(self):
        db = stream_nested_database(10, 0.3, seed=8)
        cs = nested_update_stream(db, churn=0.3, seed=8).step()
        d = cs.get("adj")
        assert d is not None and len(d.inserts) == len(d.deletes)

    def test_stream_validates_parameters(self):
        db = stream_graph_database(8, seed=1)
        with pytest.raises(ValueError):
            graph_update_stream(db, churn=0.0)
        with pytest.raises(ValueError):
            graph_update_stream(db, insert_ratio=1.5)

    def test_deletion_stream_never_inserts(self):
        db = stream_graph_database(16, "random", seed=5, p=0.2)
        for cs in deletion_update_stream(db, churn=0.1, seed=5).run(3):
            d = cs["edges"]
            assert not d.inserts and d.deletes

    def test_mixed_stream_interleaves_within_each_batch(self):
        db = stream_graph_database(20, "random", seed=7, p=0.25)
        cs = mixed_update_stream(db, churn=0.2, seed=7).step()
        d = cs["edges"]
        assert d.inserts and d.deletes

    def test_alternating_stream_flips_batch_polarity(self):
        db = stream_graph_database(20, "random", seed=2, p=0.2)
        stream = alternating_update_stream(db, churn=0.1, seed=2, domain=20)
        grow, shrink = stream.step(), stream.step()
        assert grow["edges"].inserts and not grow["edges"].deletes
        assert shrink["edges"].deletes and not shrink["edges"].inserts
        assert stream.insert_ratio == 0.5  # restored between batches
