"""Cross-checks of the optimizing engine against the reference interpreter.

The engine must be a *pure optimization*: on every query/input pair its result
equals :func:`repro.nra.eval.run`'s, with and without rewriting, and its
rewrites never increase the work/depth cost of the query.  These tests run the
whole query library plus bounded-recursion and external-function cases.
"""

import pytest

from repro.engine import Engine, InternTable, MemoEvaluator
from repro.nra.ast import (
    Apply,
    Bdcr,
    Const,
    EmptySet,
    ExternalCall,
    Lambda,
    Proj1,
    Proj2,
    Singleton,
    Union,
    Var,
)
from repro.nra.cost import cost_run
from repro.nra.eval import run
from repro.nra.externals import AGGREGATE_SIGMA
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, SetVal, from_python, to_python
from repro.relational.queries import (
    cardinality_parity_dcr,
    parity_dcr,
    parity_esr,
    parity_esr_translated,
    reachable_pairs_query,
    tagged_boolean_set,
)
from repro.workloads.graphs import binary_tree, cycle_graph, path_graph, random_graph
from repro.workloads.nested import random_bits


GRAPHS = {
    "path": path_graph(10),
    "cycle": cycle_graph(8),
    "tree": binary_tree(3),
    "random": random_graph(9, 0.3, seed=5),
}


@pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
@pytest.mark.parametrize("graph", sorted(GRAPHS))
def test_tc_agrees_with_reference(style, graph):
    g = GRAPHS[graph]
    q = reachable_pairs_query(style)
    assert Engine().run(q, g) == run(q, g.value())


@pytest.mark.parametrize(
    "query",
    [parity_dcr, parity_esr, parity_esr_translated, cardinality_parity_dcr],
)
def test_parity_agrees_with_reference(query):
    q = query()
    for n in (0, 1, 5, 13):
        bits = random_bits(n, seed=n)
        if query is cardinality_parity_dcr:
            inp = SetVal(BaseVal(i) for i in range(n))
        else:
            inp = tagged_boolean_set(bits)
        assert Engine().run(q, inp) == run(q, inp)


def test_optimize_false_also_agrees():
    g = GRAPHS["path"]
    q = reachable_pairs_query("dcr")
    eng = Engine()
    assert eng.run(q, g, optimize=False) == run(q, g.value())


def test_bounded_recursion_agrees():
    """Bdcr with an explicit bound: clipping goes through interning too."""
    bound = Const(from_python({1, 2, 3}), SetType(BASE))
    combine = Lambda(
        "p", ProdType(SetType(BASE), SetType(BASE)), Union(Proj1(Var("p")), Proj2(Var("p")))
    )
    item = Lambda("x", BASE, Singleton(Var("x")))
    phi = Bdcr(EmptySet(BASE), item, combine, bound)
    inp = from_python({1, 2, 5, 9})
    expr = Apply(phi, Const(inp, SetType(BASE)))
    assert Engine().run(expr) == run(expr)
    assert to_python(Engine().run(expr)) == frozenset({1, 2})


def test_externals_agree():
    q = Lambda("s", SetType(BASE), ExternalCall("sum", Var("s")))
    inp = from_python({1, 2, 3, 10})
    eng = Engine(sigma=AGGREGATE_SIGMA)
    assert eng.run(q, inp) == run(q, inp, sigma=AGGREGATE_SIGMA)
    assert to_python(eng.run(q, inp)) == 16


def test_explain_reports_fired_rules():
    eng = Engine()
    plan = eng.explain(parity_esr_translated())
    assert "sri-to-dcr" in plan.fired_rules
    assert plan.rule_counts["sri-to-dcr"] == 1
    assert "sri-to-dcr" in str(plan)
    # idempotent and cached
    assert eng.explain(parity_esr_translated()).optimized is not None
    q = reachable_pairs_query("dcr")
    assert eng.explain(q) is eng.explain(q)


def test_optimized_never_costs_more_than_original():
    """Engine acceptance: rewritten plans don't regress under the cost model."""
    cases = [
        (reachable_pairs_query("dcr"), GRAPHS["path"].value()),
        (reachable_pairs_query("sri"), GRAPHS["path"].value()),
        (parity_esr_translated(), tagged_boolean_set(random_bits(12, seed=2))),
        (parity_dcr(), tagged_boolean_set(random_bits(12, seed=2))),
    ]
    eng = Engine()
    for q, inp in cases:
        plan = eng.explain(q)
        _, c_orig = cost_run(q, inp)
        _, c_opt = cost_run(plan.optimized, inp)
        assert c_opt.work <= c_orig.work
        assert c_opt.depth <= c_orig.depth


def test_memoization_collapses_equal_combines():
    """TC-by-dcr has a constant item function: one compose per tree level."""
    eng = Engine()
    q = reachable_pairs_query("dcr")
    ref = run(q, GRAPHS["path"].value())
    assert eng.run(q, GRAPHS["path"]) == ref
    assert eng.last_stats is not None
    assert eng.last_stats.call_hits > 0


def test_intern_table_shares_structure():
    table = InternTable()
    a = table.intern(from_python({1, (2, 3)}))
    b = table.intern(from_python({(2, 3), 1}))
    assert a is b
    assert table.intern(from_python((2, 3))) is a.elements[1]
    assert table.hits > 0


def test_intern_union_matches_setval_union():
    table = InternTable()
    a = table.intern(from_python({1, 3, 5}))
    b = table.intern(from_python({2, 3, 6}))
    assert table.union(a, b) == a.union(b)
    assert table.union(a, b) is table.intern(a.union(b))


def test_memo_evaluator_stats_count_hits():
    ev = MemoEvaluator()
    q = reachable_pairs_query("dcr")
    ev.run(q, arg=GRAPHS["path"].value())
    assert ev.stats.call_hits > 0
    assert ev.stats.calls == ev.stats.call_hits + ev.stats.call_misses


def test_structural_rules_only_never_touch_recursions():
    """STRUCTURAL_RULES is the opt-out for unverified combiners.

    With the cost-directed rules disabled, even an adversarial combiner that
    could fool the sampled ACU gate is evaluated exactly as the reference
    interpreter evaluates it.
    """
    from repro.engine import STRUCTURAL_RULES

    q = parity_esr_translated()
    eng = Engine(rules=STRUCTURAL_RULES)
    plan = eng.explain(q)
    assert "sri-to-dcr" not in plan.fired_rules
    bits = random_bits(9, seed=1)
    inp = tagged_boolean_set(bits)
    assert eng.run(q, inp) == run(q, inp)


def test_ext_fusion_requires_a_map_shaped_inner_function():
    """Fusing a fanning-out inner ext would multiply applications of f."""
    from repro.nra.ast import Ext, Pair, Singleton
    from repro.engine.rewrite import Rewriter

    fan_out = Lambda("x", BASE, Union(Singleton(Const(from_python(0), BASE)),
                                      Singleton(Const(from_python(1), BASE))))
    f = Lambda("y", BASE, Singleton(Pair(Var("y"), Var("y"))))
    s = Const(from_python({1, 2, 3, 4}), SetType(BASE))
    expr = Apply(Ext(f), Apply(Ext(fan_out), s))
    rewritten, firings = Rewriter().rewrite(expr)
    assert "ext-fusion" not in [fr.rule for fr in firings]
    assert run(expr) == run(rewritten)


def test_shared_closures_make_duplicate_intermediates_cache_hits():
    """One closure per (expression, environment): duplicates cost a hit.

    ``f`` is a closed function re-evaluated inside the outer lambda body once
    per element; the evaluator hands back the *same* memoized closure every
    time, so applying it to the same (interned) argument from six different
    iterations is one miss and five hits.
    """
    from repro.nra.ast import Ext, Singleton

    f = Lambda("y", BASE, Singleton(Var("y")))
    body = Apply(f, Const(from_python(0), BASE))
    outer = Lambda("x", BASE, body)
    s = Const(from_python({1, 2, 3, 4, 5, 6}), SetType(BASE))
    expr = Apply(Ext(outer), s)
    ev = MemoEvaluator()
    assert ev.run(expr) == run(expr)
    assert ev.stats.call_hits >= 5


def test_plan_cache_is_structural():
    def build():
        return Lambda("s", SetType(BASE), Union(Var("s"), Var("s")))

    eng = Engine()
    q1, q2 = build(), build()
    assert q1 is not q2 and q1 == q2
    assert eng.explain(q1) is eng.explain(q2)
    eng.clear_plans()
    assert eng.explain(q1) is not None


def test_engine_accepts_plain_python_and_relations():
    q = cardinality_parity_dcr()
    eng = Engine()
    assert to_python(eng.run(q, {1, 2, 3})) is True
    assert to_python(eng.run(q, {1, 2, 3, 4})) is False


# ---------------------------------------------------------------------------
# Input conversion: the explicit protocol (no more .value duck-typing)
# ---------------------------------------------------------------------------

def test_to_value_does_not_hijack_unrelated_value_methods():
    """Regression: any object with a callable ``.value`` used to be treated
    as a Relation.  An unrelated object must go down the plain-data path --
    and fail there, loudly, instead of silently running on garbage."""

    class Sneaky:
        def value(self):
            return 42

    eng = Engine()
    with pytest.raises(TypeError):
        eng.run(cardinality_parity_dcr(), Sneaky())


def test_to_value_conversion_hook():
    """``__nra_value__`` is the documented opt-in for custom containers."""

    class Wrapped:
        def __init__(self, atoms):
            self.atoms = atoms

        def __nra_value__(self):
            return from_python(set(self.atoms))

    eng = Engine()
    assert to_python(eng.run(cardinality_parity_dcr(), Wrapped([1, 2, 3]))) is True


def test_to_value_hook_must_return_a_value():
    class Broken:
        def __nra_value__(self):
            return {"not": "a value"}

    with pytest.raises(TypeError, match="__nra_value__"):
        Engine().run(cardinality_parity_dcr(), Broken())


def test_backend_validation_is_uniform():
    """Constructor and per-call override reject unknown backends identically."""
    with pytest.raises(ValueError, match="reference") as ctor:
        Engine(backend="gpu")
    eng = Engine()
    with pytest.raises(ValueError, match="reference") as call:
        eng.run(cardinality_parity_dcr(), {1}, backend="gpu")
    with pytest.raises(ValueError, match="reference"):
        eng.run_many(cardinality_parity_dcr(), [{1}], backend="gpu")
    assert str(ctor.value).replace("'gpu'", "X") == str(call.value).replace("'gpu'", "X")


# ---------------------------------------------------------------------------
# Plan management and warm-engine stats (docstring claims, now asserted)
# ---------------------------------------------------------------------------

def test_explain_plan_without_optimize_compiles_the_raw_expression():
    q = parity_esr_translated()
    eng = Engine(backend="vectorized")
    raw_ops = eng.explain_plan(q, optimize=False).ops()
    opt_ops = eng.explain_plan(q).ops()
    # The rewriter turns the translated esr into a dcr; unoptimized the plan
    # must still show the elementwise sri/esr strategy.
    assert "sri-elementwise" in raw_ops
    assert "dcr-tree" in opt_ops and "sri-elementwise" not in opt_ops


def test_clear_plans_forces_a_fresh_rewrite():
    q = reachable_pairs_query("dcr")
    eng = Engine()
    eng.run(q, path_graph(6))
    assert eng.plan_misses == 1
    eng.run(q, path_graph(6))
    assert (eng.plan_hits, eng.plan_misses) == (1, 1)
    eng.clear_plans()
    eng.run(q, path_graph(6))
    assert eng.plan_misses == 2


def test_warm_engine_reports_zero_compiles():
    """Second run on a warm vectorized engine: last_stats shows no compiles."""
    q = reachable_pairs_query("logloop")
    eng = Engine(backend="vectorized")
    eng.run(q, path_graph(8))
    assert eng.last_stats.compiled_exprs > 0
    eng.run(q, path_graph(8))
    assert eng.last_stats.compiled_exprs == 0
    # And the lifetime counter is monotone and lock-protected.
    assert eng.vectorized_compiles() > 0
    eng.run(q, path_graph(10))
    assert eng.last_stats.compiled_exprs == 0


def test_vectorized_compiles_counter_starts_at_zero():
    eng = Engine()
    assert eng.vectorized_compiles() == 0
