"""The adaptive cost-based backend router behind ``Engine(backend="auto")``.

Covers the whole routing story: catalog statistics maintained O(1) per
commit, sample-based cost estimation with stubbed externals, the decision
policy (memo for tiny work, parallel only for external fan-out, vectorized
otherwise), the join-order rewrite, the "why this backend" explain trace,
the unified backend-name validation, session/prepare integration -- and the
adaptation loop: a fabricated mis-estimate must be corrected by re-routing
once observed runtimes contradict it by an order of magnitude.
"""

import pytest

from repro.api.catalog import Database
from repro.engine import Engine, Router
from repro.engine.engine import BACKENDS, EXPLAIN_ONLY_BACKENDS
from repro.engine.router import (
    SAMPLE_CAP,
    collection_stats,
    placeholder_value,
    stub_signature,
)
from repro.nra import ast
from repro.nra.ast import (
    Apply,
    EmptySet,
    Eq,
    Ext,
    If,
    Lambda,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Var,
)
from repro.nra.cost import CostEstimate, estimate_cost
from repro.nra.eval import run as reference_run
from repro.nra.externals import EMPTY_SIGMA
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, PairVal, SetVal
from repro.relational.queries import reachable_pairs_query
from repro.workloads.databases import graph_database
from repro.workloads.graphs import path_graph
from repro.workloads.services import enrichment_query, enrichment_sigma, request_ids

pytestmark = pytest.mark.router

EDGE_T = ProdType(BASE, BASE)


def edge_set(pairs):
    return SetVal(PairVal(BaseVal(a), BaseVal(b)) for a, b in pairs)


# -- unified backend validation ---------------------------------------------------


class TestBackendValidation:
    """One validator, one message, all three entry points."""

    def _message(self, call):
        with pytest.raises(ValueError) as info:
            call()
        return str(info.value)

    def test_all_entry_points_share_one_message(self):
        eng = Engine()
        msgs = {
            self._message(lambda: Engine(backend="bogus")),
            self._message(lambda: eng.run(Var("x"), backend="bogus")),
            self._message(lambda: eng.run_many(Var("x"), [], backend="bogus")),
            self._message(lambda: eng.explain_plan(Var("x"), backend="bogus")),
        }
        assert len(msgs) == 1
        (msg,) = msgs
        assert "unknown backend 'bogus'" in msg
        for name in BACKENDS + EXPLAIN_ONLY_BACKENDS:
            assert name in msg

    def test_incremental_is_explain_only(self):
        eng = Engine()
        msg = self._message(lambda: eng.run(Var("x"), backend="incremental"))
        assert "incremental" in msg  # named as explain-only, not unknown
        plan = eng.explain_plan(Var("edges"), backend="incremental")
        assert "ivm" in str(plan)

    def test_auto_is_a_run_backend(self):
        assert "auto" in BACKENDS
        eng = Engine(backend="auto")
        assert eng.run(ast.Singleton(ast.Const(BaseVal(1), BASE))) == SetVal(
            [BaseVal(1)]
        )


# -- cost estimation --------------------------------------------------------------


class TestEstimateCost:
    def test_small_inputs_are_exact(self):
        q = reachable_pairs_query("dcr")
        g = path_graph(6).value()  # 5 edges: under the larger sample cap
        est = estimate_cost(q, arg=g)
        assert est.exact
        assert est.full_n == 5
        assert est.work > 0

    def test_large_inputs_extrapolate_superlinearly(self):
        q = reachable_pairs_query("dcr")
        g = path_graph(40).value()
        est = estimate_cost(q, arg=g)
        assert not est.exact
        assert est.full_n == 39
        assert est.exponent > 1.0  # recursive closure: clearly superlinear
        small = estimate_cost(q, arg=path_graph(12).value())
        assert est.work > small.work

    def test_counts_drive_extrapolation_of_samples(self):
        e = Var("edges")
        sample = edge_set((i, i + 1) for i in range(8))
        lo = estimate_cost(e, env={"edges": sample}, counts={"edges": 100})
        hi = estimate_cost(e, env={"edges": sample}, counts={"edges": 10_000})
        assert hi.work > lo.work

    def test_stubbed_externals_are_never_executed(self):
        def explode(v):
            raise AssertionError("router estimation executed a real oracle")

        sigma = enrichment_sigma()
        exploding = stub_signature(sigma)  # sanity: stubs replace impls
        assert exploding is not None
        est = estimate_cost(
            Apply(enrichment_query(), Var("reqs")),
            env={"reqs": request_ids(64)},
            sigma=stub_signature(sigma),
        )
        assert est.work > 0

    def test_placeholder_values_inhabit_their_types(self):
        assert placeholder_value(BASE) == BaseVal(0)
        v = placeholder_value(SetType(EDGE_T))
        assert isinstance(v, SetVal) and len(v) == 1


# -- catalog statistics -----------------------------------------------------------


class TestCatalogStats:
    def test_collection_stats_caps_the_sample(self):
        big = edge_set((i, i + 1) for i in range(100))
        st = collection_stats(big)
        assert st.count == 100
        assert len(st.sample) == SAMPLE_CAP
        # The sample is a canonical prefix: a legal sub-instance.
        assert st.sample.elements == big.elements[:SAMPLE_CAP]

    def test_database_maintains_stats_per_commit(self):
        db = Database("d", mutable=True)
        db.register("edges", edge_set([(0, 1), (1, 2)]))
        st = db.stats()["edges"]
        assert (st.count, st.updates) == (2, 0)
        db.insert("edges", [(5, 6)])
        st = db.stats()["edges"]
        assert (st.count, st.updates) == (3, 1)
        db.delete("edges", [(0, 1), (5, 6)])
        st = db.stats()["edges"]
        assert (st.count, st.updates) == (1, 2)
        db.drop("edges")
        assert "edges" not in db.stats()


# -- the decision policy ----------------------------------------------------------


class TestDecisionPolicy:
    def test_tiny_work_routes_to_memo(self):
        router = Router(EMPTY_SIGMA, workers=4)
        d = router.route(Var("edges"), env={"edges": edge_set([(0, 1)])})
        assert d.backend == "memo"
        assert "interpreting beats compiling" in d.reason

    def test_heavy_cpu_work_routes_to_vectorized_never_parallel(self):
        router = Router(EMPTY_SIGMA, workers=4)
        d = router.route(
            reachable_pairs_query("dcr"), arg=path_graph(40).value()
        )
        assert d.backend == "vectorized"
        assert d.shards is None

    def test_external_fanout_routes_to_parallel_with_shards(self):
        sigma = enrichment_sigma(latency=0.5)  # slow enough that a single
        # *real* call during routing would dominate the test's runtime
        router = Router(sigma, workers=4)
        d = router.route(
            Apply(enrichment_query(), Var("reqs")),
            env={"reqs": request_ids(64)},
        )
        assert d.backend == "parallel"
        assert d.shards is not None and d.shards >= router.workers

    def test_small_external_fanout_stays_serial(self):
        sigma = enrichment_sigma()
        router = Router(sigma, workers=4)
        d = router.route(
            Apply(enrichment_query(), Var("reqs")),
            env={"reqs": request_ids(4)},
        )
        assert d.backend != "parallel"

    def test_decisions_are_cached_per_template(self):
        router = Router(EMPTY_SIGMA, workers=4)
        e = Var("edges")
        env = {"edges": edge_set([(0, 1)])}
        first = router.route(e, env=env)
        second = router.route(e, env=env)
        assert second is first
        assert router.stats.routes == 1
        assert router.stats.route_hits == 1

    def test_statistics_free_default_upgrades_on_real_inputs(self):
        router = Router(EMPTY_SIGMA, workers=4)
        e = Var("edges")
        blind = router.route(e)  # explain-before-run: no inputs at all
        assert blind.estimate is None
        informed = router.route(e, env={"edges": edge_set([(0, 1)])})
        assert informed.estimate is not None
        assert router.stats.routes == 2


# -- join-order rewrite -----------------------------------------------------------


def two_hop_join(outer: str, inner: str):
    """``outer join inner on outer.snd = inner.fst`` in the matchable shape."""
    l, r = Var("l"), Var("r")
    body = If(
        Eq(Proj2(l), Proj1(r)),
        Singleton(Pair(Proj1(l), Proj2(r))),
        EmptySet(EDGE_T),
    )
    return Apply(
        Ext(Lambda("l", EDGE_T, Apply(Ext(Lambda("r", EDGE_T, body)), Var(inner)))),
        Var(outer),
    )


class TestJoinReorder:
    def test_streams_the_smaller_side(self):
        router = Router(EMPTY_SIGMA, workers=4)
        big = edge_set((i, i + 1) for i in range(40))
        small = edge_set([(1, 2), (2, 3)])
        env = {"big": big, "small": small}
        d = router.route(two_hop_join("big", "small"), env=env)
        assert d.join_swaps == 1
        assert router.stats.joins_reordered == 1
        # The swap streams the small side and indexes the big one.
        assert d.expr.arg == Var("small")
        # Semantics are preserved.
        assert reference_run(d.expr, None, env=env) == reference_run(
            two_hop_join("big", "small"), None, env=env
        )

    def test_already_right_order_is_left_alone(self):
        router = Router(EMPTY_SIGMA, workers=4)
        env = {
            "big": edge_set((i, i + 1) for i in range(40)),
            "small": edge_set([(1, 2), (2, 3)]),
        }
        d = router.route(two_hop_join("small", "big"), env=env)
        assert d.join_swaps == 0
        assert d.expr == two_hop_join("small", "big")

    def test_capture_risk_refuses_the_swap(self):
        # A free variable named like the inner binder in the outer source:
        # swapping would capture it.  match_join_apply must refuse.
        from repro.engine.vectorized.compiler import match_join_apply

        l, r = Var("l"), Var("r")
        body = If(
            Eq(Proj2(l), Proj1(r)),
            Singleton(Pair(Proj1(l), Proj2(r))),
            EmptySet(EDGE_T),
        )
        e = Apply(
            Ext(Lambda("l", EDGE_T, Apply(Ext(Lambda("r", EDGE_T, body)), Var("small")))),
            Var("r"),  # the outer source is literally the inner binder's name
        )
        assert match_join_apply(e) is None


# -- the explain trace ------------------------------------------------------------


class TestExplainTrace:
    def test_trace_shows_estimate_decision_and_backend(self):
        eng = Engine(backend="auto")
        q = reachable_pairs_query("dcr")
        eng.run(q, path_graph(24))
        text = str(eng.explain_plan(q, backend="auto"))
        assert "route" in text
        assert "route-estimate" in text
        assert "route-decision" in text
        assert "auto -> vectorized" in text

    def test_any_engine_can_explain_auto(self):
        # explain_plan(backend="auto") works on a non-auto engine too,
        # mirroring how "incremental" is explainable everywhere.
        eng = Engine(backend="memo")
        text = str(eng.explain_plan(Var("edges"), backend="auto"))
        assert "route-decision" in text


# -- adaptation -------------------------------------------------------------------


class TestAdaptation:
    def _record(self, eng):
        router = eng.router()
        assert len(router.records) == 1
        return next(iter(router.records.values()))

    def test_undershoot_reroutes_after_order_of_magnitude_miss(self):
        """The ISSUE's acceptance case: a 10x mis-estimate flips the route.

        A fabricated estimate prices a recursive closure at barely-small
        work, so the router picks memo; the first real run lands orders of
        magnitude over the prediction, the router re-decides from the
        corrected cost, and the template ends up on vectorized with the flip
        recorded in its history (and rendered by the explain trace).
        """
        eng = Engine(backend="auto")
        router = eng.router()
        router.estimator = lambda *a, **k: CostEstimate(
            work=500.0, depth=10.0, exponent=1.0, sample_n=8, full_n=23
        )
        q = reachable_pairs_query("dcr")
        g = path_graph(24)
        first = eng.run(q, g)  # routed run: memo, then the miss
        rec = self._record(eng)
        assert rec.decision.backend == "vectorized"
        assert router.stats.reroutes >= 1
        assert rec.history
        flip = rec.history[0]
        assert (flip.from_backend, flip.to_backend) == ("memo", "vectorized")
        assert flip.observed_s >= flip.predicted_s * Router.MISS_FACTOR
        # The next run executes the corrected route, measures it, and (a
        # differential check for free) agrees with the memo run's result.
        assert eng.run(q, g) == first
        assert set(rec.measured) == {"memo", "vectorized"}
        text = str(eng.explain_plan(q, backend="auto"))
        assert "route-history" in text
        assert "memo -> vectorized" in text

    def test_measured_argmin_pins_once_two_backends_are_known(self):
        eng = Engine(backend="auto")
        router = eng.router()
        e = Var("edges")
        router.route(e, env={"edges": edge_set([(0, 1)])})
        rec = self._record(eng)
        rec.measured.update({"memo": 0.5, "vectorized": 0.001})
        router._reroute(rec, "memo", 0.5)
        assert rec.decision.backend == "vectorized"
        assert "measured argmin" in rec.decision.reason

    def test_overshoot_recalibrates_without_flipping(self):
        eng = Engine(backend="auto")
        router = eng.router()
        # A wildly pessimistic estimate: predicted seconds are enormous.
        router.estimator = lambda *a, **k: CostEstimate(
            work=1e9, depth=1e3, exponent=2.0, sample_n=8, full_n=63
        )
        q = reachable_pairs_query("dcr")
        g = path_graph(24)
        eng.run(q, g)
        rec = self._record(eng)
        assert rec.decision.backend == "vectorized"  # kept, not flipped
        assert router.stats.reroutes == 0
        assert router.stats.recalibrations >= 1
        assert any("recalibrated" in ev.reason for ev in rec.history)
        # The calibration moved seconds-per-work off its initial guess.
        assert router.seconds_per_work != Router.INITIAL_SECONDS_PER_WORK

    def test_runtimes_calibrate_seconds_per_work(self):
        eng = Engine(backend="auto")
        eng.run(reachable_pairs_query("dcr"), path_graph(24))
        stats = eng.router_stats()
        assert stats["runs_recorded"] == 1
        assert stats["backends"] == {"vectorized": 1}
        assert stats["seconds_per_work"] > 0


# -- engine + session integration -------------------------------------------------


class TestAutoIntegration:
    def test_auto_agrees_with_reference_across_workloads(self):
        q = reachable_pairs_query("dcr")
        for n in (6, 24):
            g = path_graph(n)
            auto = Engine(backend="auto")
            assert auto.run(q, g) == Engine().run(q, g, backend="reference")

    def test_run_many_routes_once_and_records_per_input(self):
        eng = Engine(backend="auto")
        q = reachable_pairs_query("dcr")
        args = [path_graph(12).value(), path_graph(12).value()]
        results = eng.run_many(q, args)
        assert len(results) == 2
        stats = eng.router_stats()
        assert stats["routes"] == 1
        assert stats["runs_recorded"] >= 1

    def test_parallel_route_overrides_shard_count(self):
        sigma = enrichment_sigma()
        eng = Engine(sigma=sigma, backend="auto", workers=2)
        reqs = request_ids(64)
        result = eng.run(Apply(enrichment_query(), Var("reqs")), env={"reqs": reqs})
        assert len(result) == 64
        stats = eng.router_stats()
        assert stats["backends"] == {"parallel": 1}

    def test_session_prepare_routes_from_catalog_stats(self):
        db = graph_database(24, "path", mutable=True)
        with db.connect(backend="auto") as sess:
            from repro.relational.queries import transitive_closure_query

            stmt = sess.prepare(transitive_closure_query("edges"))
            assert sess.stats.routes >= 1
            before = sess.stats.routes
            rows = stmt.execute()
            assert len(rows) == 23 * 24 // 2
            # The execute reuses the prepare-time decision: no fresh route.
            assert sess.stats.routes == before
            assert sess.engine.router_stats()["route_hits"] >= 1

    def test_clear_plans_clears_routing_state(self):
        eng = Engine(backend="auto")
        eng.run(reachable_pairs_query("dcr"), path_graph(12))
        assert eng.router_stats()["templates"] == 1
        eng.clear_plans()
        assert eng.router_stats()["templates"] == 0
