"""The vectorized backend: value-for-value parity and strategy selection.

The set-at-a-time backend must be a *pure optimization*: on every query and
input its result equals the reference interpreter's, whatever strategy the
compiler picked (hash join, semi-naive frontier, by-size dcr, or the faithful
element-wise fallbacks).  These tests cross-check the whole query library on
the graph and nested workloads, assert that the intended strategies actually
fire (via ``Engine.explain_plan``), and pin down the cache-sharing contract
of ``Engine.run_many``.
"""

import pytest

from repro.engine import Engine, VectorizedEvaluator
from repro.engine.rewrite import insert_as_step, is_inflationary_step, union_operands
from repro.nra.ast import (
    Apply,
    Bdcr,
    Const,
    Dcr,
    EmptySet,
    Eq,
    Ext,
    ExternalCall,
    If,
    Lambda,
    Loop,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Sri,
    Union,
    Var,
    lam2,
)
from repro.nra.derived import compose
from repro.nra.eval import run
from repro.nra.externals import AGGREGATE_SIGMA
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, SetVal, from_python, to_python
from repro.recursion.iterators import iterate, iterate_stable, seminaive_iterate
from repro.relational.queries import (
    REL_T,
    cardinality_parity_dcr,
    parity_dcr,
    parity_esr,
    parity_esr_translated,
    reachable_pairs_query,
    tagged_boolean_set,
)
from repro.workloads.graphs import binary_tree, cycle_graph, path_graph, random_graph
from repro.workloads.nested import department_database, random_bits
from repro.workloads.nested_graphs import (
    edges_query,
    nested_random_graph,
    nested_reachability_query,
    two_hop_query,
)

GRAPHS = {
    "path": path_graph(10),
    "cycle": cycle_graph(8),
    "tree": binary_tree(3),
    "random": random_graph(9, 0.3, seed=5),
}

NESTED_GRAPHS = {
    "sparse": nested_random_graph(24, 0.08, seed=2),
    "dense": nested_random_graph(12, 0.4, seed=3),
    "empty": nested_random_graph(6, 0.0, seed=4),
}


def vec_engine() -> Engine:
    return Engine(backend="vectorized")


# ---------------------------------------------------------------------------
# Value-for-value parity with the reference interpreter
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
@pytest.mark.parametrize("graph", sorted(GRAPHS))
def test_tc_agrees_with_reference(style, graph):
    g = GRAPHS[graph]
    q = reachable_pairs_query(style)
    assert vec_engine().run(q, g) == run(q, g.value())


@pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
def test_tc_agrees_without_rewriting(style):
    q = reachable_pairs_query(style)
    g = GRAPHS["path"]
    assert vec_engine().run(q, g, optimize=False) == run(q, g.value())


@pytest.mark.parametrize(
    "query",
    [parity_dcr, parity_esr, parity_esr_translated, cardinality_parity_dcr],
)
def test_parity_agrees_with_reference(query):
    q = query()
    for n in (0, 1, 5, 13):
        bits = random_bits(n, seed=n)
        if query is cardinality_parity_dcr:
            inp = SetVal(BaseVal(i) for i in range(n))
        else:
            inp = tagged_boolean_set(bits)
        assert vec_engine().run(q, inp) == run(q, inp)


@pytest.mark.parametrize("builder", [edges_query, two_hop_query, nested_reachability_query])
@pytest.mark.parametrize("graph", sorted(NESTED_GRAPHS))
def test_nested_graph_queries_agree(builder, graph):
    db = NESTED_GRAPHS[graph]
    q = builder()
    assert vec_engine().run(q, db) == run(q, db)


def test_departments_pipeline_agrees():
    from repro.nra.derived import flatten, smap
    from repro.workloads.nested import DEPARTMENT_T

    d = Lambda("d", DEPARTMENT_T, Proj2(Proj2(Var("d"))))
    q = Lambda("db", SetType(DEPARTMENT_T), flatten(smap(d, Var("db")), BASE))
    db = department_database(8, employees_per_department=4, seed=1)
    assert vec_engine().run(q, db) == run(q, db)


def test_bounded_recursion_agrees():
    bound = Const(from_python({1, 2, 3}), SetType(BASE))
    combine = Lambda(
        "p", ProdType(SetType(BASE), SetType(BASE)), Union(Proj1(Var("p")), Proj2(Var("p")))
    )
    item = Lambda("x", BASE, Singleton(Var("x")))
    phi = Bdcr(EmptySet(BASE), item, combine, bound)
    inp = from_python({1, 2, 5, 9})
    expr = Apply(phi, Const(inp, SetType(BASE)))
    assert vec_engine().run(expr) == run(expr)
    assert to_python(vec_engine().run(expr)) == frozenset({1, 2})


def test_externals_agree():
    q = Lambda("s", SetType(BASE), ExternalCall("sum", Var("s")))
    inp = from_python({1, 2, 3, 10})
    eng = Engine(sigma=AGGREGATE_SIGMA, backend="vectorized")
    assert eng.run(q, inp) == run(q, inp, sigma=AGGREGATE_SIGMA)
    assert to_python(eng.run(q, inp)) == 16


def test_element_inspecting_insert_falls_back_and_agrees():
    """An sri whose insert *looks at* the element cannot become a loop."""
    insert = lam2(
        "x", BASE, "acc", SetType(BASE),
        Union(Singleton(Var("x")), Var("acc")),
    )
    q = Lambda("s", SetType(BASE), Apply(Sri(EmptySet(BASE), insert), Var("s")))
    inp = from_python({3, 1, 4, 1, 5})
    eng = vec_engine()
    assert eng.run(q, inp) == run(q, inp)
    assert "sri-elementwise" in eng.explain_plan(q).ops()


def test_non_inflationary_loop_runs_full_and_agrees():
    """A step that shrinks its accumulator must not run semi-naively."""
    # step keeps only elements equal to 1: not inflationary.
    keep_one = Lambda(
        "v", SetType(BASE),
        Apply(
            Ext(Lambda(
                "x", BASE,
                If(Eq(Var("x"), Const(from_python(1), BASE)),
                   Singleton(Var("x")),
                   EmptySet(BASE)),
            )),
            Var("v"),
        ),
    )
    q = Lambda(
        "s", SetType(BASE),
        Apply(Loop(keep_one, BASE), Pair(Var("s"), Var("s"))),
    )
    inp = from_python({1, 2, 3})
    eng = vec_engine()
    assert eng.run(q, inp) == run(q, inp)
    ops = eng.explain_plan(q).ops()
    assert "loop-full" in ops and "loop-seminaive" not in ops


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------

def test_compose_compiles_to_a_hash_join():
    q = Lambda("r", REL_T, compose(Var("r"), Var("r"), BASE))
    plan = vec_engine().explain_plan(q)
    assert "hash-join" in plan.ops()
    g = GRAPHS["path"]
    assert vec_engine().run(q, g) == run(q, g.value())


def test_tc_dcr_shares_combines_by_cardinality():
    eng = vec_engine()
    q = reachable_pairs_query("dcr")
    assert "dcr-by-size" in eng.explain_plan(q).ops()
    eng.run(q, GRAPHS["path"])
    assert eng.last_stats.dcr_by_size >= 1
    assert eng.last_stats.hash_joins >= 1


def test_tc_logloop_runs_seminaive():
    eng = vec_engine()
    q = reachable_pairs_query("logloop")
    assert "loop-seminaive" in eng.explain_plan(q).ops()
    eng.run(q, GRAPHS["path"])
    assert eng.last_stats.seminaive_loops == 1
    assert eng.last_stats.seminaive_rounds >= 1


def test_tc_sri_becomes_a_seminaive_loop():
    eng = vec_engine()
    q = reachable_pairs_query("sri")
    ops = eng.explain_plan(q).ops()
    assert "sri-as-loop" in ops and "loop-seminaive" in ops
    eng.run(q, GRAPHS["path"])
    # The base relation is loop-invariant: its join index is built once and
    # then reused every frontier round.
    assert eng.last_stats.index_hits >= 1


def test_plan_rendering_mentions_strategies():
    eng = vec_engine()
    text = str(eng.explain_plan(reachable_pairs_query("logloop")))
    assert "loop-seminaive" in text
    assert "hash-join" in text


# ---------------------------------------------------------------------------
# The inflationary-step analysis hooks
# ---------------------------------------------------------------------------

def test_union_operands_flattens():
    e = Union(Union(Var("a"), Var("b")), Var("c"))
    assert [v.name for v in union_operands(e)] == ["a", "b", "c"]


def test_is_inflationary_step():
    grow = Lambda("v", REL_T, Union(Var("v"), compose(Var("v"), Var("v"), BASE)))
    shrink = Lambda("v", REL_T, compose(Var("v"), Var("v"), BASE))
    assert is_inflationary_step(grow)
    assert not is_inflationary_step(shrink)
    assert not is_inflationary_step(Var("v"))


def test_insert_as_step_requires_element_blindness():
    blind = lam2("x", BASE, "acc", REL_T,
                 Union(Var("acc"), compose(Var("acc"), Var("acc"), BASE)))
    looking = lam2("x", BASE, "acc", SetType(BASE),
                   Union(Singleton(Var("x")), Var("acc")))
    step = insert_as_step(blind)
    assert step is not None and step.var_type == REL_T
    assert insert_as_step(looking) is None


# ---------------------------------------------------------------------------
# Delta-aware iteration entry points
# ---------------------------------------------------------------------------

def test_iterate_stable_matches_iterate():
    f = lambda v: from_python(frozenset(to_python(v) | {min(len(v) + 1, 5)}))
    start = from_python({1})
    for rounds in range(8):
        assert iterate_stable(f, start, rounds) == iterate(f, start, rounds)


def test_iterate_stable_stops_at_fixpoints_only():
    calls = []

    def f(v):
        calls.append(v)
        return from_python(frozenset(to_python(v) | {len(calls)}))

    iterate_stable(f, from_python(frozenset()), 3)
    assert len(calls) == 3  # never converges early here


def test_seminaive_iterate_matches_full_iteration():
    base = frozenset({(1, 2), (2, 3), (3, 4), (4, 5)})

    def compose_py(a, b):
        return frozenset((x, w) for (x, y) in a for (z, w) in b if y == z)

    def full(acc):
        pairs = frozenset(to_python(acc))
        return from_python(pairs | compose_py(pairs, base))

    def delta(d, acc):
        return from_python(compose_py(frozenset(to_python(d)), base))

    start = from_python(base)
    for rounds in (0, 1, 2, 3, 10):
        want = iterate(lambda v: full(v), start, rounds)
        got = seminaive_iterate(full, delta, start, rounds)
        assert got == want, rounds


# ---------------------------------------------------------------------------
# run_many: shared plans, intern table and caches
# ---------------------------------------------------------------------------

def test_run_many_matches_reference_on_all_backends():
    q = reachable_pairs_query("dcr")
    graphs = [GRAPHS[k] for k in sorted(GRAPHS)]
    want = [run(q, g.value()) for g in graphs]
    for backend in ("reference", "memo", "vectorized"):
        assert Engine(backend=backend).run_many(q, graphs) == want, backend


def test_run_many_vectorized_compiles_once():
    eng = vec_engine()
    q = reachable_pairs_query("logloop")
    eng.run_many(q, [GRAPHS["path"], GRAPHS["cycle"]])
    assert eng.last_stats.compiled_exprs > 0
    # last_stats is per-call: a warm engine recompiles nothing.
    eng.run_many(q, [GRAPHS["tree"], GRAPHS["random"]])
    assert eng.last_stats.compiled_exprs == 0
    assert eng.last_stats.seminaive_loops == 2


def test_last_stats_is_per_call_on_a_reused_engine():
    eng = vec_engine()
    q = reachable_pairs_query("logloop")
    eng.run(q, GRAPHS["path"])
    eng.run(q, GRAPHS["cycle"])
    assert eng.last_stats.seminaive_loops == 1


def test_run_many_memo_shares_caches_across_duplicate_inputs():
    eng = Engine(backend="memo")
    q = reachable_pairs_query("dcr")
    g = GRAPHS["path"]
    eng.run_many(q, [g, g, g])
    stats = eng.last_stats
    # The second and third inputs are pure cache hits at the top-level apply,
    # so hits must dominate what a single run would produce.
    solo = Engine(backend="memo")
    solo.run(q, g)
    assert stats.call_misses == solo.last_stats.call_misses
    assert stats.call_hits > solo.last_stats.call_hits


def test_run_many_shares_the_intern_table():
    eng = vec_engine()
    q = reachable_pairs_query("dcr")
    eng.run_many(q, [GRAPHS["path"], GRAPHS["path"]])
    # Interning the second copy of the input is pure hits: no new values.
    hits, size = eng.interner.hits, eng.interner.size
    eng.run_many(q, [GRAPHS["path"]])
    assert eng.interner.size == size
    assert eng.interner.hits > hits


def test_run_many_results_are_per_input():
    eng = vec_engine()
    q = reachable_pairs_query("dcr")
    a, b = path_graph(4), path_graph(7)
    ra, rb = eng.run_many(q, [a, b])
    assert ra == run(q, a.value())
    assert rb == run(q, b.value())
    assert ra != rb


def test_evaluator_reuse_without_engine():
    ev = VectorizedEvaluator()
    q = reachable_pairs_query("dcr")
    outs = ev.run_many(q, [GRAPHS["path"].value(), GRAPHS["tree"].value()])
    assert outs == [run(q, GRAPHS["path"].value()), run(q, GRAPHS["tree"].value())]


# ---------------------------------------------------------------------------
# Adversarial corners: binding discipline and pattern-recognition boundaries
# ---------------------------------------------------------------------------

class TestBindingAndPatternCorners:
    def test_shadowed_ext_variables(self):
        """Nested exts reusing one variable name must not clobber bindings."""
        s_t = SetType(BASE)
        q = Lambda("s", s_t, Apply(
            Ext(Lambda("x", BASE,
                       Apply(Ext(Lambda("x", BASE, Singleton(Var("x")))), Var("s")))),
            Var("s")))
        inp = from_python({1, 2, 3})
        assert vec_engine().run(q, inp, optimize=False) == run(q, inp)

    def test_let_bound_value_escapes_into_a_recursion(self):
        s_t = SetType(BASE)
        combine = Lambda("p", ProdType(s_t, s_t),
                         Union(Union(Proj1(Var("p")), Proj2(Var("p"))), Var("c")))
        phi = Dcr(EmptySet(BASE), Lambda("x", BASE, Singleton(Var("x"))), combine)
        q = Lambda("s", s_t, Apply(
            Lambda("c", s_t, Apply(phi, Var("s"))),
            Singleton(Const(from_python(9), BASE))))
        inp = from_python({1, 2, 3})
        assert vec_engine().run(q, inp, optimize=False) == run(q, inp)

    def test_correlated_inner_ext_is_not_a_join(self):
        """unnest: the inner source depends on the outer element."""
        rec_t = ProdType(BASE, SetType(BASE))
        q = Lambda("s", SetType(rec_t), Apply(
            Ext(Lambda("p", rec_t,
                       Apply(Ext(Lambda("y", BASE,
                                        Singleton(Pair(Proj1(Var("p")), Var("y"))))),
                             Proj2(Var("p"))))),
            Var("s")))
        inp = from_python({(1, frozenset({2, 3})), (4, frozenset())})
        eng = vec_engine()
        assert eng.run(q, inp, optimize=False) == run(q, inp)
        assert "hash-join" not in eng.explain_plan(q, optimize=False).ops()

    def test_join_recognised_with_swapped_key_order(self):
        r_t = ProdType(BASE, BASE)
        q = Lambda("r", SetType(r_t), Apply(
            Ext(Lambda("p", r_t, Apply(
                Ext(Lambda("q", r_t,
                           If(Eq(Proj1(Var("q")), Proj2(Var("p"))),  # rkey = lkey
                              Singleton(Pair(Proj1(Var("p")), Proj2(Var("q")))),
                              EmptySet(r_t)))),
                Var("r")))),
            Var("r")))
        inp = from_python({(1, 2), (2, 3), (3, 1)})
        eng = vec_engine()
        assert eng.run(q, inp, optimize=False) == run(q, inp)
        assert "hash-join" in eng.explain_plan(q, optimize=False).ops()

    def test_mixed_invariant_linear_and_bilinear_step(self):
        r_t = ProdType(BASE, BASE)
        step = Lambda("v", SetType(r_t), Union(
            Union(Var("v"), compose(Var("v"), Var("v"), BASE)),
            compose(Var("v"), Var("base"), BASE)))
        q = Lambda("base", SetType(r_t),
                   Apply(Loop(step, BASE), Pair(Var("base"), Var("base"))))
        inp = from_python({(1, 2), (2, 3), (3, 1)})
        eng = vec_engine()
        assert eng.run(q, inp, optimize=False) == run(q, inp)
        assert eng.last_stats.seminaive_loops == 1


def test_hash_join_skips_right_source_on_empty_left():
    """Reference semantics: the right source sits inside the outer lambda,
    so an empty left set must not evaluate it (regression: the compiled
    hash join hoisted and evaluated it eagerly)."""
    from repro.engine import Engine
    from repro.nra import ast
    from repro.nra.ast import Apply, EmptySet, Eq, Ext, If, Lambda, Pair, Singleton, Var
    from repro.nra.eval import run as ref_run
    from repro.nra.externals import ExternalFunction, Signature
    from repro.objects.types import BASE, ProdType, SetType

    calls = []

    def boom(v):
        calls.append(v)
        raise RuntimeError("right source must not be evaluated")

    sigma = Signature([ExternalFunction(
        "boom", SetType(ProdType(BASE, BASE)), SetType(ProdType(BASE, BASE)), boom
    )])
    edge_t = ProdType(BASE, BASE)
    out_t = ProdType(edge_t, edge_t)
    inner = Lambda("y", edge_t, If(
        Eq(ast.Proj1(Var("x")), ast.Proj1(Var("y"))),
        Singleton(Pair(Var("x"), Var("y"))),
        EmptySet(out_t),
    ))
    body = Apply(Ext(inner), ast.ExternalCall("boom", Var("db")))
    expr = Apply(Ext(Lambda("x", edge_t, body)), Var("db"))
    env = {"db": from_python(set())}

    want = ref_run(expr, None, env=env, sigma=sigma)
    eng = Engine(sigma=sigma, backend="vectorized")
    assert "hash-join" in eng.explain_plan(expr).ops()
    got = eng.run(expr, env=env)
    assert got == want and len(got) == 0
    assert calls == []


def test_clear_plans_drops_vectorized_compile_cache():
    """clear_plans targets long-lived ad-hoc engines: the vectorized compile
    cache (the dominant per-query memory) must go with the rewrite plans."""
    from repro.engine import Engine
    from repro.relational.queries import reachable_pairs_query
    from repro.workloads.graphs import path_graph

    eng = Engine(backend="vectorized")
    q = reachable_pairs_query("logloop")
    eng.run(q, path_graph(6))
    eng.run(q, path_graph(6))
    assert eng.last_stats.compiled_exprs == 0  # warm
    eng.clear_plans()
    eng.run(q, path_graph(6))
    assert eng.last_stats.compiled_exprs > 0  # recompiled after the clear
