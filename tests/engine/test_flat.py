"""Flat-column kernels: dense-id plumbing, kernel parity, and shm shipping.

The PR-7 representation change is only sound if three layers hold together:

* the **intern table's dense-id side** (stable ids, pair part registry,
  cached id columns, bytes-keyed set reconstruction) must round-trip every
  value it has interned -- ids are forever within an engine, and a column
  rebuilt from ids must be *the same interned set*, not merely an equal one;
* the **kernels** must be pure optimizations: on every query the flat
  (``flat=True``, the default) and object (``flat=False``) vectorized
  engines and the reference interpreter agree value-for-value, and the
  ``VecStats``/``ViewStats`` counters prove which representation actually
  served the run (a silent fallback would trivially pass the value check);
* the **shared-memory parallel path** must agree with everything else while
  actually shipping id arrays (``shm_ships``/``array_bytes_shipped``).

Everything here is deterministic; the numpy-absent leg is exercised by
monkeypatching ``flat._np`` (CI additionally runs the whole marker with
``REPRO_NO_NUMPY=1``).
"""

import pytest

from repro.engine import Engine
from repro.engine.interning import InternTable
from repro.engine.parallel.partition import mix64, partition_codes
from repro.engine.vectorized import flat
from repro.nra.eval import run as reference_run
from repro.objects.values import BaseVal, PairVal, SetVal, from_python
from repro.relational.queries import reachable_pairs_query
from repro.workloads.graphs import binary_tree, path_graph, random_graph

pytestmark = pytest.mark.columnar


def _tc_inputs():
    yield "path-16", path_graph(16).value()
    yield "tree-3", binary_tree(3).value()
    yield "gnp-7", random_graph(12, 0.3, seed=7).value()


# ---------------------------------------------------------------------------
# 1. Dense-id round trips on the intern table
# ---------------------------------------------------------------------------

class TestInternDenseIds:
    def test_dense_id_round_trip(self):
        it = InternTable()
        vals = [it.intern(from_python(v)) for v in (1, "a", (1, 2), {1, 2, 3})]
        for v in vals:
            assert it.value_of(it.dense_id(v)) is v

    def test_dense_ids_are_stable_across_reinterning(self):
        it = InternTable()
        a = it.intern(from_python((1, 2)))
        before = it.dense_id(a)
        # Structurally equal values intern to the same representative, so
        # the dense id never moves.
        assert it.intern(PairVal(BaseVal(1), BaseVal(2))) is a
        assert it.dense_id(a) == before

    def test_pair_parts_registry(self):
        it = InternTable()
        p = it.intern(from_python((3, 4)))
        fid, sid = it.pair_parts()[it.dense_id(p)]
        assert it.value_of(fid) == BaseVal(3)
        assert it.value_of(sid) == BaseVal(4)
        assert it.pair_from_ids(fid, sid) is p

    def test_set_ids_column_round_trips(self):
        it = InternTable()
        s = it.intern(from_python({(1, 2), (2, 3), (3, 1)}))
        ids = it.set_ids(s)
        assert [it.value_of(i) for i in ids] == list(s.elements)
        assert it.set_from_ids(list(ids)) is s

    def test_set_from_ids_matches_mkset_and_dedupes(self):
        it = InternTable()
        elems = [it.intern(from_python(v)) for v in (5, 1, 3, 1, 5)]
        ids = [it.dense_id(v) for v in elems]
        assert it.set_from_ids(ids) is it.mkset(elems)

    def test_set_from_pair_codes(self):
        it = InternTable()
        s = it.intern(from_python({(1, 2), (7, 8)}))
        codes = []
        for e in s.elements:
            fid, sid = it.pair_parts()[it.dense_id(e)]
            codes.append((fid << flat.CODE_BITS) | sid)
        assert it.set_from_pair_codes(codes) is s

    def test_engine_clear_plans_keeps_dense_ids(self):
        # clear_plans drops query-scoped caches but must keep the intern
        # table: id-keyed state (dense ids, cached columns) survives.
        eng = Engine(backend="vectorized")
        g = path_graph(8).value()
        q = reachable_pairs_query("logloop")
        r1 = eng.run(q, g)
        it = eng.interner
        ids_before = {it.dense_id(e) for e in r1.elements}
        eng.clear_plans()
        r2 = eng.run(q, g)
        assert r2 == r1
        assert {it.dense_id(e) for e in r2.elements} == ids_before


# ---------------------------------------------------------------------------
# 2. Flat kernels are pure optimizations of the object kernels
# ---------------------------------------------------------------------------

class TestFlatKernelParity:
    @pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
    @pytest.mark.parametrize("gname,graph", list(_tc_inputs()))
    def test_tc_flat_equals_object_equals_reference(self, style, gname, graph):
        q = reachable_pairs_query(style)
        want = reference_run(q, graph)
        eng_flat = Engine(backend="vectorized")
        eng_obj = Engine(backend="vectorized", flat=False)
        try:
            assert eng_flat.run(q, graph) == want
            assert eng_obj.run(q, graph) == want
        finally:
            eng_flat.close()
            eng_obj.close()

    def test_stats_prove_the_flat_fixpoint_ran(self):
        g = path_graph(20).value()
        q = reachable_pairs_query("logloop")
        eng_flat = Engine(backend="vectorized")
        eng_obj = Engine(backend="vectorized", flat=False)
        try:
            eng_flat.run(q, g)
            assert eng_flat.last_stats.flat_fixpoints >= 1
            eng_obj.run(q, g)
            assert eng_obj.last_stats.flat_fixpoints == 0
        finally:
            eng_flat.close()
            eng_obj.close()

    def test_flat_kernels_without_numpy(self, monkeypatch):
        # The pure array('q')/set path must produce identical results.
        monkeypatch.setattr(flat, "_np", None)
        g = random_graph(12, 0.3, seed=11).value()
        q = reachable_pairs_query("sri")
        want = reference_run(q, g)
        eng = Engine(backend="vectorized")
        try:
            assert eng.run(q, g) == want
            assert eng.last_stats.flat_fixpoints >= 1
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# 3. Shared-memory parallel path: parity plus real array shipping
# ---------------------------------------------------------------------------

class TestShmPool:
    @pytest.mark.slow
    def test_shm_pool_agrees_and_ships_arrays(self):
        g = path_graph(24).value()
        q = reachable_pairs_query("logloop")
        want = reference_run(q, g)
        eng = Engine(backend="parallel", workers=2, pool="shm")
        try:
            assert eng.run(q, g) == want
            stats = eng.last_stats
            assert stats.flat_fixpoint_runs >= 1
            assert stats.shm_ships > 0
            assert stats.array_bytes_shipped > 0
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# 4. Code partitioning: deterministic disjoint cover
# ---------------------------------------------------------------------------

class TestPartitionCodes:
    def test_partition_is_a_disjoint_cover_and_deterministic(self):
        codes = [((i * 2654435761) % (1 << 40)) for i in range(500)]
        shards = partition_codes(codes, 4)
        assert len(shards) == 4
        seen = [c for shard in shards for c in shard]
        assert sorted(seen) == sorted(codes)
        again = partition_codes(codes, 4)
        assert [list(s) for s in shards] == [list(s) for s in again]

    def test_mix64_spreads_sequential_ids(self):
        # Sequential dense ids are the common case; the mixer must not send
        # them all to one shard.
        buckets = {mix64(i) % 4 for i in range(64)}
        assert buckets == {0, 1, 2, 3}


# ---------------------------------------------------------------------------
# 5. Maintained fixpoint views ride the dense-id indexed walk
# ---------------------------------------------------------------------------

from repro.api import Q, connect  # noqa: E402
from repro.workloads.streams import (  # noqa: E402
    graph_update_stream,
    stream_graph_database,
)


@pytest.mark.ivm
class TestFlatIndexedView:
    def test_fix_view_served_by_flat_index_on_inserts_and_deletes(self):
        db = stream_graph_database(12, "random", seed=3, p=0.25)
        session = connect(db)
        q = Q.coll("edges").fix()
        view = session.materialize(q, name="tc")
        stream = graph_update_stream(db, churn=0.3, insert_ratio=0.5,
                                     seed=4, domain=14)
        for cs in stream.run(5):
            assert view.value == session.execute(q).value
        assert view.stats.fallback_recomputes == 0
        # Every maintenance pass of the indexed fixpoint was served by the
        # dense-id mirror -- no silent demotion to the object path.
        assert view.stats.flat_index_applies > 0

    def test_fix_view_on_object_engine_matches(self):
        # flat=False sessions must maintain the same values on the object
        # indexes (the demotion target), so force one and compare streams.
        db_flat = stream_graph_database(10, "random", seed=9, p=0.3)
        db_obj = stream_graph_database(10, "random", seed=9, p=0.3)
        q = Q.coll("edges").fix()
        s_flat = connect(db_flat)
        s_obj = connect(db_obj, engine=Engine(flat=False))
        v_flat = s_flat.materialize(q, name="tc")
        v_obj = s_obj.materialize(q, name="tc")
        for cs_a, cs_b in zip(
            graph_update_stream(db_flat, churn=0.25, insert_ratio=0.5,
                                seed=5, domain=12).run(4),
            graph_update_stream(db_obj, churn=0.25, insert_ratio=0.5,
                                seed=5, domain=12).run(4),
        ):
            assert v_flat.value == v_obj.value
        assert v_obj.stats.flat_index_applies == 0
