"""Per-rule checks: every rewrite preserves values and never costs more.

For each rule in the registry we keep at least one closed expression on which
the rule fires, and assert that

* reference evaluation of the original and the rewritten expression agree
  (rewrites are semantics-preserving), and
* under the work/depth model of :mod:`repro.nra.cost` the rewritten
  expression needs no more work and no more depth than the original (rewrites
  are cost-directed) -- the engine acceptance criterion.
"""

import pytest

from repro.engine.rewrite import DEFAULT_RULES, Rewriter
from repro.nra.ast import (
    Apply,
    BoolConst,
    EmptySet,
    Eq,
    Esr,
    Ext,
    If,
    IsEmpty,
    Lambda,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Union,
    Var,
)
from repro.nra.ast import Const
from repro.nra.cost import cost_run
from repro.nra.eval import run
from repro.objects.types import BASE, BOOL, ProdType, SetType
from repro.objects.values import from_python
from repro.relational.queries import (
    TAGGED_BOOL_T,
    parity_esr_translated,
    tagged_boolean_set,
    xor_lambda,
)

SET_135 = Const(from_python({1, 3, 5}), SetType(BASE))
SET_24 = Const(from_python({2, 4}), SetType(BASE))
ATOM_7 = Const(from_python(7), BASE)


def _ident(t):
    return Lambda("x", t, Var("x"))


def _tag_pair():
    """g : D -> {D x D}, injective on singletons (fusion-friendly)."""
    return Lambda("x", BASE, Singleton(Pair(Var("x"), Var("x"))))


def _first_of_pair():
    return Lambda("p", ProdType(BASE, BASE), Singleton(Proj1(Var("p"))))


#: rule name -> closed expression on which the rule (at least) fires.
RULE_CASES = {
    "identity-apply": Apply(_ident(SetType(BASE)), SET_135),
    "beta-variable": Apply(Lambda("x", BASE, Pair(Var("x"), Var("x"))), ATOM_7),
    "proj-pair": Proj1(Pair(SET_135, SET_24)),
    "if-constant": If(BoolConst(True), SET_135, SET_24),
    "if-same": If(Eq(SET_135, SET_24), ATOM_7, ATOM_7),
    "eq-reflexive": Eq(SET_135, SET_135),
    "union-empty": Union(EmptySet(BASE), SET_135),
    "union-idempotent": Union(SET_135, SET_135),
    "empty-test": IsEmpty(Singleton(ATOM_7)),
    "ext-identity": Apply(Ext(Lambda("x", BASE, Singleton(Var("x")))), SET_135),
    "ext-empty": Apply(Ext(_tag_pair()), EmptySet(BASE)),
    "ext-singleton": Apply(Ext(_tag_pair()), Singleton(ATOM_7)),
    "ext-fusion": Apply(Ext(_first_of_pair()), Apply(Ext(_tag_pair()), SET_135)),
    "sri-to-dcr": Apply(
        parity_esr_translated(),
        Const(tagged_boolean_set([True, False, True, True, False, False, True]),
              SetType(TAGGED_BOOL_T)),
    ),
}


def test_every_rule_has_a_case():
    assert set(RULE_CASES) == {r.name for r in DEFAULT_RULES}


@pytest.mark.parametrize("rule_name", sorted(RULE_CASES))
def test_rule_fires_preserves_value_and_never_costs_more(rule_name):
    expr = RULE_CASES[rule_name]
    rewritten, firings = Rewriter().rewrite(expr)
    assert rule_name in [f.rule for f in firings], f"{rule_name} did not fire"

    assert run(expr) == run(rewritten)

    _, c_orig = cost_run(expr)
    _, c_new = cost_run(rewritten)
    assert c_new.work <= c_orig.work, f"{rule_name}: work {c_orig} -> {c_new}"
    assert c_new.depth <= c_orig.depth, f"{rule_name}: depth {c_orig} -> {c_new}"


def test_sri_to_dcr_is_logarithmic():
    """The Prop 2.1 rewrite turns the linear chain into a log-depth tree."""
    bits = [i % 3 == 0 for i in range(32)]
    q = parity_esr_translated()
    inp = tagged_boolean_set(bits)
    rewritten, firings = Rewriter().rewrite(q)
    assert "sri-to-dcr" in [f.rule for f in firings]
    _, c_esr = cost_run(q, inp)
    _, c_dcr = cost_run(rewritten, inp)
    assert run(q, inp) == run(rewritten, inp)
    # linear versus logarithmic combining depth, with real headroom
    assert c_dcr.depth * 2 < c_esr.depth
    assert c_dcr.work <= c_esr.work


def test_sri_to_dcr_requires_the_algebraic_gate():
    """A non-commutative combiner must not be rewritten.

    ``u(a, b) = a`` (left projection) is associative but not commutative and
    has no two-sided identity; the sampled gate rejects it and the esr stays.
    """
    first = Lambda("q", ProdType(BOOL, BOOL), Proj1(Var("q")))
    f = Lambda("y", TAGGED_BOOL_T, Proj2(Var("y")))
    step = Lambda(
        "z",
        ProdType(TAGGED_BOOL_T, BOOL),
        Apply(first, Pair(Apply(f, Proj1(Var("z"))), Proj2(Var("z")))),
    )
    expr = Esr(BoolConst(False), step)
    rewritten, firings = Rewriter().rewrite(expr)
    assert "sri-to-dcr" not in [f.rule for f in firings]


def test_rewriter_reaches_a_fixpoint_and_logs():
    expr = Union(EmptySet(BASE), Union(SET_135, SET_135))
    rewritten, firings = Rewriter().rewrite(expr)
    assert rewritten == SET_135
    names = [f.rule for f in firings]
    assert "union-empty" in names and "union-idempotent" in names
    again, more = Rewriter().rewrite(rewritten)
    assert again == rewritten and more == []


def test_nested_simplification_cascade():
    """Rules enable each other across passes (fusion exposes the unit law)."""
    expr = Apply(Ext(_first_of_pair()), Apply(Ext(_tag_pair()), SET_135))
    rewritten, firings = Rewriter().rewrite(expr)
    names = [f.rule for f in firings]
    assert "ext-fusion" in names and "ext-singleton" in names
    assert run(expr) == run(rewritten)


def test_xor_passes_the_acu_gate():
    rw = Rewriter()
    assert rw.combiner_is_acu(xor_lambda(), BoolConst(False), BOOL)
    assert not rw.combiner_is_acu(
        Lambda("q", ProdType(BOOL, BOOL), Proj1(Var("q"))), BoolConst(False), BOOL
    )
