"""Unit tests for the data-parallel sharded backend (repro.engine.parallel).

Layer by layer: partitioning (determinism, disjoint cover, canonical
shards), the distributivity / join / fixpoint analysis, the executor's four
strategies against the reference interpreter, error propagation out of
workers, the explain tree, the engine cache contract (clear_plans, warm
reruns), and the process-pool option.
"""

import pytest

from repro.engine import Engine
from repro.engine.parallel import (
    ParallelEvaluator,
    WorkerPool,
    analyze,
    distributes_over_union,
    hash_partition,
    structural_hash,
)
from repro.engine.parallel.partition import hash_partition_aligned
from repro.nra import ast
from repro.nra.ast import (
    Apply,
    BoolConst,
    Const,
    EmptySet,
    Eq,
    Ext,
    If,
    Lambda,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Union,
    Var,
)
from repro.nra.derived import compose, select
from repro.nra.errors import NRAEvalError
from repro.nra.eval import run as reference_run
from repro.nra.externals import ExternalFunction, Signature
from repro.objects.types import BASE, ProdType, SetType
from repro.objects.values import BaseVal, SetVal, from_python
from repro.relational.queries import REL_T, reachable_pairs_query
from repro.workloads.graphs import binary_tree, path_graph, random_graph
from repro.workloads.nested_graphs import edges_query, nested_random_graph, two_hop_query
from repro.workloads.services import enrichment_workload

EDGE_T = ProdType(BASE, BASE)


def parallel_engine(**kw):
    kw.setdefault("workers", 3)
    kw.setdefault("shards", 5)
    return Engine(backend="parallel", **kw)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

class TestPartition:
    def test_shards_cover_and_are_disjoint(self):
        s = from_python({(i, i + 1) for i in range(40)})
        shards = hash_partition(s, 7)
        assert 1 < len(shards) <= 7
        seen = []
        for shard in shards:
            assert isinstance(shard, SetVal)
            seen.extend(shard.elements)
        assert len(seen) == len(set(map(id, seen))) == len(s.elements)
        assert SetVal(seen) == s

    def test_shards_are_canonical_subsequences(self):
        s = from_python({5, 1, 9, 4, 2, 8})
        for shard in hash_partition(s, 3):
            # A canonical SetVal equals its own re-canonicalization.
            assert shard == SetVal(shard.elements)

    def test_partition_is_deterministic(self):
        s = from_python({("a", i) for i in range(25)})
        a = hash_partition(s, 4)
        b = hash_partition(s, 4)
        assert a == b

    def test_structural_hash_is_structural(self):
        v1 = from_python({(1, "x"), (2, "y")})
        v2 = from_python({(2, "y"), (1, "x")})
        assert v1 is not v2
        assert structural_hash(v1) == structural_hash(v2)
        assert structural_hash(from_python(3)) != structural_hash(from_python(4))

    def test_empty_set_yields_one_empty_shard(self):
        shards = hash_partition(from_python(set()), 5)
        assert shards == [SetVal()]

    def test_aligned_partition_keeps_positions(self):
        s = from_python({(i, i % 3) for i in range(20)})
        key = lambda p: p.snd
        shards = hash_partition_aligned(s, 6, key)
        assert len(shards) == 6  # empties preserved for alignment
        for shard in shards:
            buckets = {structural_hash(key(e)) % 6 for e in shard.elements}
            assert len(buckets) <= 1


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------

class TestAnalysis:
    def test_map_over_var_is_distributive(self):
        body = Apply(Ext(Lambda("x", BASE, Singleton(Var("x")))), Var("s"))
        assert distributes_over_union(body, "s")

    def test_bilinear_self_join_is_rejected(self):
        body = compose(Var("v"), Var("v"), BASE)
        assert not distributes_over_union(body, "v")
        assert analyze(Lambda("v", REL_T, body)) is None

    def test_two_hop_falls_back(self):
        assert analyze(two_hop_query()) is None

    def test_condition_on_the_variable_is_rejected(self):
        from repro.nra.ast import IsEmpty

        body = If(IsEmpty(Var("s")), Var("s"), EmptySet(BASE))
        assert not distributes_over_union(body, "s")

    def test_unnest_is_arg_shardable(self):
        spec = analyze(edges_query())
        assert spec is not None and spec.kind == "arg"

    def test_bare_template_is_env_shardable(self):
        pred = Lambda("e", EDGE_T, Eq(Proj1(Var("e")), Const(BaseVal(1), BASE)))
        spec = analyze(select(pred, Var("edges")))
        assert spec is not None and spec.kind == "env" and spec.var == "edges"

    def test_cross_relation_join_is_co_partitioned(self):
        spec = analyze(compose(Var("a"), Var("b"), BASE))
        assert spec is not None and spec.kind == "join"
        assert spec.join.left_var == "a" and spec.join.right_var == "b"

    def test_join_whose_output_reads_a_relation_is_rejected(self):
        # The join output may mention the element variables, never the
        # relation variables: workers only hold shards of those, so this
        # shape must fall back (it used to shard and silently shrink the
        # {(x, r)} outputs to {(x, shard-of-r)}).
        out = Singleton(Pair(Var("x"), Var("r")))
        inner = Lambda("y", BASE, If(Eq(Var("x"), Var("y")), out, EmptySet(BASE)))
        q = Apply(Ext(Lambda("x", BASE, Apply(Ext(inner), Var("r")))), Var("s"))
        spec = analyze(q)
        assert spec is None or spec.kind != "join"
        env = {"s": from_python({0, 1, 2, 3}), "r": from_python({0, 1, 2, 3, 4, 5, 6, 7})}
        eng = parallel_engine()
        try:
            assert eng.run(q, env=env) == reference_run(q, None, env=env)
        finally:
            eng.close()

    def test_logloop_tc_is_a_fixpoint(self):
        spec = analyze(reachable_pairs_query("logloop"))
        assert spec is not None and spec.kind == "fixpoint"
        assert spec.fixpoint.logarithmic

    def test_sri_tc_is_a_fixpoint(self):
        spec = analyze(reachable_pairs_query("sri"))
        assert spec is not None and spec.kind == "fixpoint"
        assert not spec.fixpoint.logarithmic and not spec.fixpoint.loop_style


# ---------------------------------------------------------------------------
# Execution strategies vs the reference interpreter
# ---------------------------------------------------------------------------

class TestParallelExecution:
    def test_shard_map_matches_reference(self):
        q = edges_query()
        db = nested_random_graph(30, 0.1, seed=3)
        eng = parallel_engine()
        try:
            assert eng.run(q, db) == reference_run(q, db)
            assert eng.last_stats.shard_runs == 1
            assert eng.last_stats.shards > 1
        finally:
            eng.close()

    def test_env_shard_matches_reference(self):
        pred = Lambda("e", EDGE_T, Eq(Proj1(Var("e")), Const(BaseVal(3), BASE)))
        q = select(pred, Var("edges"))
        env = {"edges": path_graph(20).value()}
        eng = parallel_engine()
        try:
            assert eng.run(q, env=env) == reference_run(q, None, env=env)
            assert eng.last_stats.shard_runs == 1
        finally:
            eng.close()

    def test_co_partitioned_join_matches_reference(self):
        a = random_graph(24, 0.2, seed=1).value()
        b = random_graph(24, 0.2, seed=2).value()
        q = compose(Var("a"), Var("b"), BASE)
        env = {"a": a, "b": b}
        eng = parallel_engine()
        try:
            assert eng.run(q, env=env) == reference_run(q, None, env=env)
            assert eng.last_stats.join_runs == 1
        finally:
            eng.close()

    def test_join_with_empty_left_short_circuits(self):
        q = compose(Var("a"), Var("b"), BASE)
        env = {"a": from_python(set()), "b": path_graph(5).value()}
        eng = parallel_engine()
        try:
            assert eng.run(q, env=env) == from_python(set())
        finally:
            eng.close()

    @pytest.mark.parametrize("style", ["logloop", "sri"])
    @pytest.mark.parametrize("graph", ["path", "tree"])
    def test_fixpoint_matches_reference(self, style, graph):
        g = (path_graph(12) if graph == "path" else binary_tree(3)).value()
        q = reachable_pairs_query(style)
        eng = parallel_engine()
        try:
            assert eng.run(q, g) == reference_run(q, g)
            assert eng.last_stats.fixpoint_runs == 1
            assert eng.last_stats.frontier_reshards == eng.last_stats.fixpoint_rounds > 0
        finally:
            eng.close()

    def test_fallback_matches_reference(self):
        q = reachable_pairs_query("dcr")  # dcr-by-size: no shardable shape
        g = path_graph(10).value()
        eng = parallel_engine()
        try:
            assert eng.run(q, g) == reference_run(q, g)
            assert eng.last_stats.fallback_runs == 1
        finally:
            eng.close()

    def test_run_many_fans_out(self):
        q = Lambda("r", REL_T, compose(Var("r"), Var("r"), BASE))
        inputs = [path_graph(n).value() for n in (4, 6, 8, 10, 12)]
        eng = parallel_engine()
        try:
            got = eng.run_many(q, inputs)
            assert got == [reference_run(q, g) for g in inputs]
            assert eng.last_stats.batch_runs == 1
            assert eng.last_stats.batch_inputs == 5
        finally:
            eng.close()

    def test_scalar_valued_distributive_body(self):
        # A body whose value ignores the sharded variable: every shard
        # returns the same non-set value and the combiner must not union.
        body = If(BoolConst(True), Singleton(Const(BaseVal(1), BASE)), Var("s"))
        q = Lambda("s", SetType(BASE), body)
        v = from_python({1, 2, 3, 4, 5, 6})
        eng = parallel_engine()
        try:
            assert eng.run(q, v) == reference_run(q, v)
        finally:
            eng.close()

    def test_oracle_overlap_workload_matches_reference(self):
        sigma, q, v = enrichment_workload(32, latency=0.0)
        eng = Engine(sigma=sigma, backend="parallel", workers=3, shards=6)
        try:
            assert eng.run(q, v) == reference_run(q, v, sigma=sigma)
            assert eng.last_stats.shard_runs == 1
        finally:
            eng.close()

    def test_workers_actually_ran_vectorized_kernels(self):
        a = random_graph(24, 0.3, seed=5).value()
        b = random_graph(24, 0.3, seed=6).value()
        q = compose(Var("a"), Var("b"), BASE)
        eng = parallel_engine()
        try:
            eng.run(q, env={"a": a, "b": b})
            worker_joins = sum(
                s.hash_joins for s in eng._par().pool.worker_stats()
            )
            assert worker_joins >= 1
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# Error propagation
# ---------------------------------------------------------------------------

def _boom_sigma():
    def boom(v):
        raise NRAEvalError("boom")

    return Signature([ExternalFunction("boom", BASE, BASE, boom, "always raises")])


class TestErrorPropagation:
    def test_worker_errors_surface(self):
        sigma = _boom_sigma()
        q = Lambda(
            "s",
            SetType(BASE),
            Apply(
                Ext(Lambda("x", BASE, Singleton(ast.ExternalCall("boom", Var("x"))))),
                Var("s"),
            ),
        )
        v = from_python({1, 2, 3, 4, 5, 6, 7, 8})
        eng = Engine(sigma=sigma, backend="parallel", workers=3, shards=4)
        try:
            with pytest.raises(NRAEvalError):
                eng.run(q, v)
        finally:
            eng.close()

    def test_empty_input_skips_the_raising_oracle(self):
        sigma = _boom_sigma()
        q = Lambda(
            "s",
            SetType(BASE),
            Apply(
                Ext(Lambda("x", BASE, Singleton(ast.ExternalCall("boom", Var("x"))))),
                Var("s"),
            ),
        )
        eng = Engine(sigma=sigma, backend="parallel", workers=2, shards=4)
        try:
            assert eng.run(q, from_python(set())) == from_python(set())
        finally:
            eng.close()

    def test_non_set_argument_falls_back_to_exact_error(self):
        q = edges_query()
        eng = parallel_engine()
        try:
            with pytest.raises(NRAEvalError):
                eng.run(q, from_python((1, 2)))
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# Explain, cache contract, engine wiring
# ---------------------------------------------------------------------------

class TestEngineWiring:
    def test_explain_plan_shows_shards_and_combiner(self):
        eng = parallel_engine()
        try:
            plan = eng.explain_plan(edges_query())
            assert {"parallel", "shard", "combine-union"} <= plan.ops()
        finally:
            eng.close()

    def test_explain_plan_shows_the_fixpoint(self):
        eng = parallel_engine()
        try:
            plan = eng.explain_plan(reachable_pairs_query("logloop"))
            assert "parallel-fixpoint" in plan.ops()
            assert "reshard-per-round" in next(
                n for n in plan.walk() if n.op == "parallel-fixpoint"
            ).annotations
        finally:
            eng.close()

    def test_explain_plan_labels_the_fallback(self):
        eng = parallel_engine()
        try:
            plan = eng.explain_plan(two_hop_query())
            root = next(iter(plan.walk()))
            assert root.op == "parallel" and "fallback" in root.detail
        finally:
            eng.close()

    def test_vectorized_view_is_still_available(self):
        eng = parallel_engine()
        try:
            plan = eng.explain_plan(two_hop_query(), backend="vectorized")
            assert "hash-join" in plan.ops()
            assert "parallel" not in plan.ops()
        finally:
            eng.close()

    def test_backend_override_per_call(self):
        q = edges_query()
        db = nested_random_graph(15, 0.15, seed=2)
        eng = Engine(backend="vectorized")
        try:
            assert eng.run(q, db, backend="parallel") == eng.run(q, db)
            assert eng.run(q, db, backend="parallel") == reference_run(q, db)
        finally:
            eng.close()

    def test_clear_plans_resets_worker_state_but_not_results(self):
        q = edges_query()
        db = nested_random_graph(15, 0.15, seed=2)
        eng = parallel_engine()
        try:
            first = eng.run(q, db)
            eng.clear_plans()
            assert eng.run(q, db) == first
        finally:
            eng.close()

    def test_warm_engine_reuses_driver_compiles(self):
        q = edges_query()
        db = nested_random_graph(15, 0.15, seed=2)
        eng = parallel_engine()
        try:
            eng.run(q, db)
            before = eng.vectorized_compiles()
            eng.run(q, db)
            assert eng.vectorized_compiles() == before
        finally:
            eng.close()

    def test_unknown_pool_kind_is_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(kind="fiber")

    def test_translation_cache_is_bounded(self):
        from repro.engine.parallel import ShardWorker
        from repro.nra.externals import EMPTY_SIGMA

        worker = ShardWorker(EMPTY_SIGMA)
        for i in range(ShardWorker.MAX_TRANSLATIONS + 500):
            worker.translate(from_python(i))
        assert len(worker._translated) <= ShardWorker.MAX_TRANSLATIONS
        # Hot entries survive: a value re-probed after the flood is served
        # from cache (same worker object back).
        v = from_python("hot")
        w1 = worker.translate(v)
        assert worker.translate(v) is w1

    def test_parallel_in_backends_and_validation(self):
        from repro.engine import BACKENDS

        assert "parallel" in BACKENDS
        with pytest.raises(ValueError):
            Engine(backend="sharded")


# ---------------------------------------------------------------------------
# The process pool
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestProcessPool:
    def test_process_pool_matches_reference(self):
        q = reachable_pairs_query("logloop")
        g = path_graph(8).value()
        eng = Engine(backend="parallel", workers=2, shards=3, pool="process")
        try:
            assert eng.run(q, g) == reference_run(q, g)
        finally:
            eng.close()

    def test_process_pool_shard_map_with_oracle(self):
        sigma, q, v = enrichment_workload(12, latency=0.0)
        eng = Engine(sigma=sigma, backend="parallel", workers=2, shards=3,
                     pool="process")
        try:
            assert eng.run(q, v) == reference_run(q, v, sigma=sigma)
        finally:
            eng.close()
