"""Tests for the circuit model, building blocks, flat-query compiler, families and DCL."""

import itertools

import pytest

from repro.circuits.builders import (
    duplicate_mask_block,
    equality_block,
    leq_block,
    membership_block,
    mux_block,
    parity_tree,
)
from repro.circuits.circuit import Circuit, CircuitError, GateType
from repro.circuits.compile_flat import (
    ComposeQ,
    DiffQ,
    FullQ,
    IdentityQ,
    InputRel,
    IntersectQ,
    LogLoopQ,
    LoopVar,
    NonEmptyQ,
    ParityQ,
    UnionQ,
    compile_query,
    connectivity_query,
    evaluate_query,
    nested_loop_query,
    parity_query,
    tc_squaring_query,
)
from repro.circuits.dcl import (
    and_or_family,
    and_or_family_witness,
    check_uniformity,
    direct_connection_language,
    encode_dcl_tuple,
)
from repro.circuits.families import CircuitFamily, looks_like_ack, polylog_depth_bound
from repro.relational.algebra import transitive_closure_squaring
from repro.workloads.graphs import path_graph, random_graph


class TestCircuitModel:
    def test_inputs_have_reserved_numbers(self):
        c = Circuit(3)
        assert [g.gid for g in c.gates] == [1, 2, 3]
        assert all(g.type is GateType.INPUT for g in c.gates)

    def test_forward_references_rejected(self):
        c = Circuit(1)
        with pytest.raises(CircuitError):
            c.add_not(5)

    def test_and_or_not_evaluation(self):
        c = Circuit(2)
        a = c.add_and([1, 2])
        o = c.add_or([1, 2])
        n = c.add_not(1)
        c.set_outputs([a, o, n])
        assert c.evaluate("11") == [True, True, False]
        assert c.evaluate("01") == [False, True, True]

    def test_empty_and_or_are_constants(self):
        c = Circuit(0)
        c.set_outputs([c.add_and([]), c.add_or([])])
        assert c.evaluate("") == [True, False]

    def test_xor_gates(self):
        c = Circuit(2)
        c.set_outputs([c.add_xor2(1, 2), c.add_xnor2(1, 2)])
        assert c.evaluate("10") == [True, False]
        assert c.evaluate("11") == [False, True]

    def test_depth_and_size(self):
        c = Circuit(2)
        x = c.add_and([1, 2])
        y = c.add_not(x)
        c.set_outputs([y])
        assert c.size() == 4
        assert c.depth() == 2

    def test_input_length_checked(self):
        c = Circuit(2)
        c.set_outputs([c.add_and([1, 2])])
        with pytest.raises(CircuitError):
            c.evaluate("1")

    def test_bad_output_rejected(self):
        c = Circuit(1)
        with pytest.raises(CircuitError):
            c.set_outputs([9])


class TestBuildingBlocks:
    def test_equality_block(self):
        c = Circuit(4)
        c.set_outputs([equality_block(c, [1, 2], [3, 4])])
        assert c.evaluate("1001")[0] is False
        assert c.evaluate("1010")[0] is True
        assert c.evaluate("1111")[0] is True

    def test_leq_block_exhaustive(self):
        width = 3
        c = Circuit(2 * width)
        c.set_outputs([leq_block(c, [1, 2, 3], [4, 5, 6])])
        for a, b in itertools.product(range(8), repeat=2):
            bits = format(a, "03b") + format(b, "03b")
            assert c.evaluate(bits)[0] is (a <= b), (a, b)

    def test_parity_tree_matches_xor(self):
        n = 9
        c = Circuit(n)
        c.set_outputs([parity_tree(c, list(range(1, n + 1)))])
        for trial in ("000000000", "100000000", "101010101", "111111111"):
            assert c.evaluate(trial)[0] is (trial.count("1") % 2 == 1)

    def test_parity_tree_depth_is_logarithmic(self):
        sizes = [8, 64, 512]
        depths = []
        for n in sizes:
            c = Circuit(n)
            c.set_outputs([parity_tree(c, list(range(1, n + 1)))])
            depths.append(c.depth())
        assert depths[2] - depths[1] == depths[1] - depths[0]

    def test_duplicate_mask_block(self):
        c = Circuit(6)  # three 2-bit elements
        masks = duplicate_mask_block(c, [[1, 2], [3, 4], [5, 6]])
        c.set_outputs(masks)
        # elements 10, 01, 11: all distinct
        assert c.evaluate("100111") == [True, True, True]
        # elements 10, 10, 11: the middle one duplicates the first
        assert c.evaluate("101011") == [True, False, True]
        # elements 10, 10, 10: both later copies are masked out
        assert c.evaluate("101010") == [True, False, False]

    def test_membership_and_mux(self):
        c = Circuit(5)
        m = membership_block(c, [1], [[2], [3]])
        x = mux_block(c, 4, 1, 5)
        c.set_outputs([m, x])
        assert c.evaluate("11010") == [True, True]
        assert c.evaluate("10001") == [False, True]


class TestFlatQueryCompiler:
    GRAPHS = [
        frozenset({(0, 1), (1, 2), (2, 3)}),
        frozenset({(0, 1), (1, 0), (2, 3)}),
        frozenset(),
    ]

    @pytest.mark.parametrize("edges", GRAPHS, ids=["path", "cycle+island", "empty"])
    def test_tc_circuit_matches_oracle(self, edges):
        n = 5
        compiled = compile_query(tc_squaring_query(), n)
        expected, _ = transitive_closure_squaring(edges)
        assert compiled.run({"r": edges}) == expected

    def test_tc_circuit_on_random_graph(self):
        g = random_graph(7, 0.3, seed=5)
        edges = frozenset(g.tuples)
        compiled = compile_query(tc_squaring_query(), 7)
        expected, _ = transitive_closure_squaring(edges)
        assert compiled.run({"r": edges}) == expected

    def test_parity_circuit(self):
        compiled = compile_query(parity_query(), 4)
        assert compiled.run({"r": frozenset({(0, 1), (1, 2), (2, 3)})}) is True
        assert compiled.run({"r": frozenset({(0, 1), (1, 2)})}) is False

    def test_boolean_operators(self):
        n = 3
        q = DiffQ(UnionQ(InputRel("a"), InputRel("b")), IntersectQ(InputRel("a"), InputRel("b")))
        compiled = compile_query(q, n)
        a = frozenset({(0, 1), (1, 2)})
        b = frozenset({(1, 2), (2, 0)})
        assert compiled.run({"a": a, "b": b}) == (a | b) - (a & b)
        assert evaluate_query(q, n, {"a": a, "b": b}) == (a | b) - (a & b)

    def test_compose_identity_full(self):
        n = 3
        q = ComposeQ(InputRel("a"), IdentityQ())
        compiled = compile_query(q, n)
        a = frozenset({(0, 2), (1, 1)})
        assert compiled.run({"a": a}) == a
        assert evaluate_query(FullQ(), n, {}) == frozenset((i, j) for i in range(n) for j in range(n))

    def test_connectivity_query(self):
        n = 4
        cycle = frozenset({(0, 1), (1, 2), (2, 3), (3, 0)})
        broken = frozenset({(0, 1), (1, 2)})
        q = connectivity_query()
        # NonEmpty(Full - closure) is True iff some pair is NOT connected.
        assert evaluate_query(q, n, {"r": cycle}) is False
        assert evaluate_query(q, n, {"r": broken}) is True
        assert compile_query(q, n).run({"r": cycle}) is False

    def test_loop_var_outside_loop_rejected(self):
        with pytest.raises(ValueError):
            compile_query(LoopVar("T"), 3)

    @pytest.mark.parametrize("k", [1, 2])
    def test_nested_loops_compute_tc(self, k):
        n = 5
        edges = frozenset({(0, 1), (1, 2), (2, 3), (3, 4)})
        expected, _ = transitive_closure_squaring(edges)
        assert evaluate_query(nested_loop_query(k), n, {"r": edges}) == expected
        assert compile_query(nested_loop_query(k), n).run({"r": edges}) == expected

    def test_depth_scales_with_nesting(self):
        n = 8
        d1 = compile_query(nested_loop_query(1), n).circuit.depth()
        d2 = compile_query(nested_loop_query(2), n).circuit.depth()
        assert d2 > 2 * d1


class TestFamiliesAndUniformity:
    def test_tc_family_depth_is_logarithmic(self):
        fam = CircuitFamily("tc", lambda n: compile_query(tc_squaring_query(), n).circuit)
        report = looks_like_ack(fam, 1, [4, 8, 16, 32])
        assert report["depth_polylog_ok"]
        assert report["size_polynomial_ok"]

    def test_nested_family_is_not_log1_but_is_log2(self):
        fam = CircuitFamily("tc2", lambda n: compile_query(nested_loop_query(2), n).circuit)
        measurements = fam.measure([4, 8, 16, 32])
        _, ok_k2 = polylog_depth_bound(measurements, 2)
        assert ok_k2

    def test_family_caching(self):
        calls = []

        def build(n):
            calls.append(n)
            return and_or_family(n)

        fam = CircuitFamily("and-or", build)
        fam.circuit(4)
        fam.circuit(4)
        assert calls == [4]

    def test_dcl_extraction(self):
        c = and_or_family(2)
        dcl = direct_connection_language(c, 2)
        assert (2, 1, 3, "AND") in dcl
        assert (2, 5, 0, "y1") in dcl

    def test_dcl_tuple_encoding(self):
        assert encode_dcl_tuple((2, 1, 3, "AND")) == "10#1#11#AND"

    def test_and_or_family_is_uniform(self):
        # n >= 2: with a single input the n-ary AND/OR collapse to the input
        # wire and the numbering scheme of the witness no longer applies.
        assert check_uniformity(and_or_family, and_or_family_witness(), [2, 3, 4, 6])

    def test_wrong_witness_detected(self):
        from repro.circuits.dcl import UniformityWitness

        bad = UniformityWitness("bad", lambda n, c, p, t: False)
        assert not check_uniformity(and_or_family, bad, [2])
