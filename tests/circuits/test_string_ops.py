"""Tests for the Lemma 7.4-7.6 circuits over string encodings."""

import pytest

from repro.circuits.string_ops import (
    BITS_PER_SYMBOL,
    duplicate_elimination_circuit,
    element_start_wires,
    encoding_equality_circuit,
    encoding_to_bits,
    new_encoding_circuit,
    paren_depth_wires,
    symbol_equals,
    symbol_in,
    symbol_wires,
)
from repro.objects.encoding import element_starts, match_parentheses, minimal_encoding
from repro.objects.values import from_python


ENCODINGS = [
    minimal_encoding(from_python({1, 2, 3})),
    minimal_encoding(from_python({(1, 2), (3, 4)})),
    minimal_encoding(from_python({(1, frozenset({2, 3}))})),
    "{}",
]


class TestSymbolWires:
    def test_wires_are_consecutive_triples(self):
        assert symbol_wires(0) == (1, 2, 3)
        assert symbol_wires(2) == (7, 8, 9)

    def test_symbol_equals(self):
        c = new_encoding_circuit(2)
        c.set_outputs([symbol_equals(c, symbol_wires(0), "{"),
                       symbol_equals(c, symbol_wires(1), "}")])
        assert c.evaluate(encoding_to_bits("{}")) == [True, True]
        assert c.evaluate(encoding_to_bits("()")) == [False, False]

    def test_symbol_in(self):
        c = new_encoding_circuit(1)
        c.set_outputs([symbol_in(c, symbol_wires(0), "{(")])
        assert c.evaluate(encoding_to_bits("("))[0] is True
        assert c.evaluate(encoding_to_bits("1"))[0] is False


class TestLemma74:
    @pytest.mark.parametrize("enc", ENCODINGS, ids=["flat", "pairs", "nested", "empty"])
    def test_depth_wires_match_reference(self, enc):
        ref = match_parentheses(enc)
        max_depth = max(ref.depth, default=0)
        c = new_encoding_circuit(len(enc))
        wires = paren_depth_wires(c, len(enc), max_depth)
        outputs = [wires[p][d] for p in range(len(enc)) for d in range(max_depth + 1)]
        c.set_outputs(outputs)
        values = c.evaluate(encoding_to_bits(enc))
        for p in range(len(enc)):
            for d in range(max_depth + 1):
                expected = ref.depth[p] == d
                assert values[p * (max_depth + 1) + d] is expected, (enc, p, d)


class TestLemma75:
    @pytest.mark.parametrize("enc", ENCODINGS[:3], ids=["flat", "pairs", "nested"])
    def test_element_start_wires_match_reference(self, enc):
        ref = element_starts(enc)
        c = new_encoding_circuit(len(enc))
        marks = element_start_wires(c, len(enc), max(match_parentheses(enc).depth))
        c.set_outputs(marks)
        got = tuple(1 if b else 0 for b in c.evaluate(encoding_to_bits(enc)))
        assert got == ref


class TestLemma76:
    def test_equality_circuit_positive_and_negative(self):
        from repro.objects.encoding import encode

        # NB: *minimal* encodings of {1,2} and {1,3} coincide (atoms are
        # renumbered), so use the direct encodings to get distinct strings.
        a = encode(from_python({1, 2}))
        b = encode(from_python({1, 3}))
        assert len(a) == len(b) and a != b
        c = encoding_equality_circuit(len(a))
        assert c.evaluate(encoding_to_bits(a) + encoding_to_bits(a))[0] is True
        assert c.evaluate(encoding_to_bits(a) + encoding_to_bits(b))[0] is False

    def test_equality_circuit_is_constant_depth(self):
        small = encoding_equality_circuit(4)
        large = encoding_equality_circuit(64)
        assert large.depth() == small.depth()


class TestDuplicateElimination:
    def test_masks_match_reference_behaviour(self):
        # three 2-symbol elements: "10", "10", "11" -> keep, drop, keep
        c = duplicate_elimination_circuit(3, 2)
        bits = encoding_to_bits("10" + "10" + "11")
        assert c.evaluate(bits) == [True, False, True]

    def test_constant_depth_in_number_of_elements(self):
        d4 = duplicate_elimination_circuit(4, 2).depth()
        d16 = duplicate_elimination_circuit(16, 2).depth()
        assert d4 == d16
