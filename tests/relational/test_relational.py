"""Tests for relations, ordered databases, the baseline algebra and the query library."""

import pytest

from repro.nra.cost import cost_run
from repro.nra.eval import run
from repro.objects.types import SetType, parse_type
from repro.objects.values import from_python, to_python
from repro.relational.algebra import (
    active_domain,
    cartesian,
    compose,
    difference,
    intersection,
    is_connected,
    parity_of,
    project,
    reachable_from,
    rows,
    select,
    transitive_closure_naive,
    transitive_closure_seminaive,
    transitive_closure_squaring,
    union,
)
from repro.relational.database import OrderedDatabase, is_generic_query, order_preserving_renaming
from repro.relational.queries import (
    cardinality_parity_dcr,
    parity_dcr,
    parity_esr,
    reachable_pairs_query,
    run_tc,
    tagged_boolean_set,
    transitive_closure_dcr,
    transitive_closure_logloop,
    transitive_closure_sri,
)
from repro.relational.relation import Relation
from repro.workloads.graphs import path_graph, random_graph


class TestRelation:
    def test_from_pairs_and_len(self):
        r = Relation.from_pairs("r", [(1, 2), (2, 3), (1, 2)])
        assert len(r) == 2
        assert (1, 2) in r

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Relation.from_tuples("r", 2, [(1, 2, 3)])
        with pytest.raises(ValueError):
            Relation("r", 0)

    def test_atom_validation(self):
        with pytest.raises(TypeError):
            Relation.from_pairs("r", [(1.5, 2)])  # type: ignore[list-item]

    def test_value_and_back(self):
        r = Relation.from_pairs("r", [(1, 2), (3, 4)])
        assert r.type == parse_type("{D x D}")
        assert Relation.from_value("r", r.value(), 2).tuples == r.tuples

    def test_unary_relation(self):
        r = Relation.unary("s", [5, 6])
        assert r.arity == 1
        assert to_python(r.value()) == frozenset({5, 6})

    def test_active_domain_and_project(self):
        r = Relation.from_pairs("r", [(1, 2), (2, 3)])
        assert r.active_domain() == frozenset({1, 2, 3})
        assert r.project(0) == frozenset({(1,), (2,)})

    def test_iteration_is_sorted(self):
        r = Relation.from_pairs("r", [(3, 1), (1, 2)])
        assert list(r) == [(1, 2), (3, 1)]


class TestDatabase:
    def test_environment_binds_relations(self):
        db = OrderedDatabase.of(Relation.from_pairs("r", [(1, 2)]))
        env = db.environment()
        assert to_python(env["r"]) == frozenset({(1, 2)})

    def test_duplicate_relation_rejected(self):
        db = OrderedDatabase.of(Relation.from_pairs("r", [(1, 2)]))
        with pytest.raises(ValueError):
            db.add(Relation.from_pairs("r", []))

    def test_active_domain_sorted(self):
        db = OrderedDatabase.of(Relation.from_pairs("r", [(3, 1), (2, 5)]))
        assert db.active_domain() == [1, 2, 3, 5]

    def test_renaming_is_order_preserving(self):
        import random

        mapping = order_preserving_renaming([1, 5, 9], random.Random(0))
        assert mapping[1] < mapping[5] < mapping[9]

    def test_tc_query_is_generic(self):
        db = OrderedDatabase.of(path_graph(6))
        query = lambda d: run(transitive_closure_dcr(), d["r"].value())
        assert is_generic_query(query, db)


class TestBaselineAlgebra:
    R = rows([(1, 2), (2, 3), (3, 4)])

    def test_set_operations(self):
        s = rows([(2, 3), (9, 9)])
        assert union(self.R, s) == self.R | s
        assert difference(self.R, s) == rows([(1, 2), (3, 4)])
        assert intersection(self.R, s) == rows([(2, 3)])

    def test_cartesian_select_project(self):
        prod = cartesian(rows([(1,)]), rows([(2,), (3,)]))
        assert prod == rows([(1, 2), (1, 3)])
        assert select(self.R, lambda t: t[0] == 1) == rows([(1, 2)])
        assert project(self.R, (1,)) == rows([(2,), (3,), (4,)])

    def test_compose(self):
        assert compose(rows([(1, 2)]), rows([(2, 5)])) == rows([(1, 5)])

    def test_three_tc_algorithms_agree(self):
        for edges in (self.R, rows([(i, (i + 1) % 8) for i in range(8)]), frozenset()):
            naive, _ = transitive_closure_naive(edges)
            semi, _ = transitive_closure_seminaive(edges)
            square, _ = transitive_closure_squaring(edges)
            assert naive == semi == square

    def test_round_counts_show_the_contrast(self):
        path = rows([(i, i + 1) for i in range(63)])
        _, semi_rounds = transitive_closure_seminaive(path)
        _, square_rounds = transitive_closure_squaring(path)
        assert semi_rounds >= 63
        assert square_rounds <= 7

    def test_reachability_and_connectivity(self):
        assert reachable_from(self.R, 1) == frozenset({1, 2, 3, 4})
        assert is_connected(self.R)
        assert not is_connected(rows([(1, 2), (3, 4)]))

    def test_parity_oracle(self):
        assert parity_of([True, True, True]) is True
        assert parity_of([]) is False


class TestQueryLibrary:
    @pytest.mark.parametrize("style", ["dcr", "logloop", "sri"])
    @pytest.mark.parametrize("graph", [path_graph(7), random_graph(9, 0.25, seed=3)],
                             ids=["path", "random"])
    def test_tc_styles_agree_with_oracle(self, style, graph):
        oracle, _ = transitive_closure_seminaive(frozenset(graph.tuples))
        assert run_tc(reachable_pairs_query(style), graph) == oracle

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            reachable_pairs_query("magic")

    @pytest.mark.parametrize("bits", [[], [True], [True, False, True, True], [False] * 6])
    def test_parity_queries_agree_with_oracle(self, bits):
        expected = parity_of(bits)
        assert run(parity_dcr(), tagged_boolean_set(bits)).value is expected
        assert run(parity_esr(), tagged_boolean_set(bits)).value is expected

    @pytest.mark.parametrize("n", [0, 1, 4, 9])
    def test_cardinality_parity(self, n):
        result = run(cardinality_parity_dcr(), from_python(set(range(n))))
        assert result.value is (n % 2 == 1)

    def test_dcr_depth_advantage_grows_with_input(self):
        small, large = path_graph(8), path_graph(32)
        _, dcr_small = cost_run(transitive_closure_dcr(), small.value())
        _, dcr_large = cost_run(transitive_closure_dcr(), large.value())
        _, sri_small = cost_run(transitive_closure_sri(), small.value())
        _, sri_large = cost_run(transitive_closure_sri(), large.value())
        dcr_growth = dcr_large.depth / dcr_small.depth
        sri_growth = sri_large.depth / sri_small.depth
        assert sri_growth > 2.5
        assert dcr_growth < sri_growth
