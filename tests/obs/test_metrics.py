"""The metrics registry: instruments, collectors, exposition.

Instrument tests run against private ``MetricsRegistry`` instances so
they cannot collide with the process-wide ``METRICS`` the engines and
servers register against; the engine-integration tests at the bottom use
the real singleton and only ever assert on *deltas*.
"""

import gc

import pytest

from repro.api import Database, Q, connect
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    METRICS,
    MetricsRegistry,
)
from repro.workloads.graphs import path_graph

pytestmark = pytest.mark.obs


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter_monotone():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_goes_both_ways():
    g = Gauge("g")
    g.set(10)
    g.dec(4)
    g.inc()
    assert g.value == 7.0


def test_histogram_buckets_cumulative():
    h = Histogram("h", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(56.05)
    assert h.cumulative() == [
        (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5),
    ]


def test_histogram_boundary_lands_in_its_bucket():
    h = Histogram("h", buckets=(1.0, 2.0))
    h.observe(1.0)  # le="1.0" includes the bound, Prometheus-style
    assert h.cumulative()[0] == (1.0, 1)


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    h = reg.histogram("z")
    assert reg.histogram("z") is h
    assert h.buckets == tuple(sorted(DEFAULT_LATENCY_BUCKETS))


# ---------------------------------------------------------------------------
# Collectors (the compatibility shims)
# ---------------------------------------------------------------------------

class _Owner:
    def __init__(self, n: float) -> None:
        self.n = n

    def sample(self) -> dict:
        return {"repro_owner_things_total": self.n}


def test_collectors_sum_across_live_owners():
    reg = MetricsRegistry()
    a, b = _Owner(3), _Owner(4)
    reg.register_collector(a.sample)
    reg.register_collector(b.sample)
    assert reg.scraped() == {"repro_owner_things_total": 7.0}


def test_dead_owner_drops_out_of_the_scrape():
    reg = MetricsRegistry()
    a, b = _Owner(3), _Owner(4)
    reg.register_collector(a.sample)
    reg.register_collector(b.sample)
    del a
    gc.collect()
    assert reg.scraped() == {"repro_owner_things_total": 4.0}
    # and the dead ref was pruned, not just skipped
    assert len(reg._collectors) == 1


def test_plain_function_collector_is_held_strongly():
    reg = MetricsRegistry()
    reg.register_collector(lambda: {"repro_fn_total": 1})
    gc.collect()
    assert reg.scraped() == {"repro_fn_total": 1.0}


# ---------------------------------------------------------------------------
# Exposition
# ---------------------------------------------------------------------------

def test_as_dict_shape():
    reg = MetricsRegistry()
    reg.counter("repro_c_total", help="c").inc(2)
    reg.gauge("repro_g").set(1.5)
    reg.histogram("repro_h", buckets=(1.0,)).observe(0.5)
    reg.register_collector(lambda: {"repro_scraped_total": 9})
    d = reg.as_dict()
    assert d["counters"] == {"repro_c_total": 2.0, "repro_scraped_total": 9.0}
    assert d["gauges"] == {"repro_g": 1.5}
    h = d["histograms"]["repro_h"]
    assert h["count"] == 1 and h["sum"] == 0.5
    assert h["buckets"] == {"1.0": 1, "+Inf": 1}


def test_prometheus_text_exposition():
    reg = MetricsRegistry()
    reg.counter("repro_c_total", help="things done").inc(2)
    reg.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
    text = reg.render_prometheus()
    assert "# HELP repro_c_total things done" in text
    assert "# TYPE repro_c_total counter" in text
    assert "repro_c_total 2.0" in text
    assert '# TYPE repro_h_seconds histogram' in text
    assert 'repro_h_seconds_bucket{le="1.0"} 1' in text
    assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_h_seconds_sum 0.5" in text
    assert "repro_h_seconds_count 1" in text
    assert text.endswith("\n")


# ---------------------------------------------------------------------------
# Engine integration (the real singleton; delta assertions only)
# ---------------------------------------------------------------------------

def test_engine_queries_feed_the_registry():
    before = METRICS.counter("repro_queries_total").value
    h = METRICS.histogram("repro_query_seconds")
    before_h = h.count
    s = connect(Database.of("g", edges=path_graph(8)))
    s.execute(Q.coll("edges").fix())
    s.execute(Q.coll("edges"))
    assert METRICS.counter("repro_queries_total").value == before + 2
    assert h.count == before_h + 2


def test_engine_scraped_counters_track_plan_cache():
    s = connect(Database.of("g", edges=path_graph(8)))
    base = METRICS.scraped()
    s.execute(Q.coll("edges"))  # miss
    s.execute(Q.coll("edges"))  # hit
    now = METRICS.scraped()
    delta = lambda k: now.get(k, 0.0) - base.get(k, 0.0)  # noqa: E731
    assert delta("repro_plan_cache_misses_total") >= 1
    assert delta("repro_plan_cache_hits_total") >= 1


def test_disabled_registry_skips_direct_instruments():
    before = METRICS.counter("repro_queries_total").value
    METRICS.enabled = False
    try:
        s = connect(Database.of("g", edges=path_graph(8)))
        s.execute(Q.coll("edges"))
    finally:
        METRICS.enabled = True
    assert METRICS.counter("repro_queries_total").value == before
