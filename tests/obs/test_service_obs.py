"""Service observability: metrics/trace wire ops and the slow-query log.

Live in-thread servers on ephemeral ports, like the rest of the service
suite.  The slow-query test is the PR-10 satellite: a blocking external
pushes one query past the threshold against a *live* server, and the
logged entry must carry the route decision and the (<= 3) hottest plan
nodes.  The shm-pool test pins the worker-span contract: process workers
produce no spans at all -- merged into driver-side timing or dropped,
never misparented.
"""

import time

import pytest

from repro.api import Q
from repro.nra.externals import ExternalFunction, Signature
from repro.objects.types import BASE
from repro.obs.trace import TRACER
from repro.service import QueryServer, ServerConfig, connect
from repro.service.cli import main as cli_main
from repro.workloads.databases import graph_database

pytestmark = [pytest.mark.obs, pytest.mark.service]


@pytest.fixture()
def server():
    srv = QueryServer(db=graph_database(24, "path", mutable=True), backend="auto")
    srv.start_in_thread()
    yield srv
    srv.stop()


# ---------------------------------------------------------------------------
# The metrics op
# ---------------------------------------------------------------------------

class TestMetricsOp:
    def test_metrics_snapshot(self, server):
        with connect(server.host, server.port) as conn:
            with conn.session() as s:
                s.execute("edges").close()
            payload = conn.metrics()
        counters = payload["metrics"]["counters"]
        assert counters["repro_queries_total"] >= 1
        assert counters["repro_service_queries_total"] >= 1
        assert "repro_query_seconds" in payload["metrics"]["histograms"]
        assert payload["slow_queries"] == []  # log disarmed by default
        assert payload["slow_query_s"] is None

    def test_prometheus_exposition(self, server):
        with connect(server.host, server.port) as conn:
            with conn.session() as s:
                s.execute("edges").close()
            payload = conn.metrics(prometheus=True)
        text = payload["prometheus"]
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_query_seconds_bucket{le="+Inf"}' in text
        assert "repro_service_queries_total" in text

    def test_cli_metrics_command(self, server, capsys):
        rc = cli_main([
            "metrics", "--host", server.host, "--port", str(server.port),
            "--json",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"repro_service_sessions_opened_total"' in out
        rc = cli_main([
            "metrics", "--host", server.host, "--port", str(server.port),
            "--prometheus",
        ])
        assert rc == 0
        assert "# TYPE" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The trace op
# ---------------------------------------------------------------------------

class TestTraceOp:
    def test_trace_returns_span_tree_and_rows(self, server):
        with connect(server.host, server.port) as conn:
            with conn.session(backend="auto") as s:
                out = s.trace(Q.coll("edges").fix())
                rows = out["cursor"].fetchall()
        assert len(rows) == out["cursor"].total > 0
        tree = out["trace"]
        assert tree["name"] == "request"
        names = set()

        def walk(node):
            names.add(node["name"])
            for c in node["children"]:
                walk(c)

        walk(tree)
        assert "query" in names
        assert "fixpoint-round" in names
        assert "request" in out["rendered"] and "query" in out["rendered"]

    def test_trace_restores_disabled_tracer(self, server):
        assert not TRACER.enabled  # default-off server
        with connect(server.host, server.port) as conn:
            with conn.session() as s:
                s.trace("edges")["cursor"].close()
        assert not TRACER.enabled  # forced on for the op only, then restored

    def test_cli_trace_command(self, server, capsys):
        rc = cli_main([
            "trace", "edges", "--host", server.host,
            "--port", str(server.port),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "row(s)" in out and "request" in out


# ---------------------------------------------------------------------------
# The slow-query log (live server, blocking external)
# ---------------------------------------------------------------------------

def _sleepy_impl(v):
    time.sleep(0.15)
    return v


SLEEPY_SIGMA = Signature([
    ExternalFunction("sleepy", BASE, BASE, _sleepy_impl, "sleeps then echoes"),
])

SLEEPY_QUERY = r"(ext(\x:D. {@sleepy(x)}))({1})"


class TestSlowQueryLog:
    def test_threshold_crossing_is_logged_with_route_and_hot_nodes(self):
        srv = QueryServer(
            db=graph_database(8, "path", mutable=True),
            sigma=SLEEPY_SIGMA,
            backend="auto",
            config=ServerConfig(slow_query_s=0.05),
        )
        srv.start_in_thread()
        try:
            with connect(srv.host, srv.port) as conn:
                with conn.session(backend="auto") as s:
                    s.execute("edges").close()       # fast: below threshold
                    s.execute(SLEEPY_QUERY).close()  # blocks past threshold
                payload = conn.metrics()
            assert payload["slow_query_s"] == 0.05
            slow = payload["slow_queries"]
            assert len(slow) == 1, "only the blocking query crosses"
            entry = slow[0]
            assert "sleepy" in entry["query"]
            assert entry["seconds"] >= 0.15
            # The route decision travelled from the engine's query span.
            assert entry["route"]["backend"]
            assert entry["route"]["route"]
            # Top plan nodes, hottest first, at most three.
            hot = entry["hot_nodes"]
            assert 1 <= len(hot) <= 3
            assert hot[0]["name"] == "query"
            assert hot[0]["seconds"] >= 0.15
            assert hot == sorted(
                hot, key=lambda n: n["seconds"], reverse=True)
        finally:
            srv.stop()
            TRACER.disable()  # the armed server enabled the process tracer

    def test_concurrent_requests_log_independent_entries(self):
        """Asyncio offloads carry their own span context: no cross-talk."""
        import threading

        srv = QueryServer(
            db=graph_database(8, "path", mutable=True),
            sigma=SLEEPY_SIGMA,
            config=ServerConfig(slow_query_s=0.05, max_inflight=4),
        )
        srv.start_in_thread()
        try:
            with connect(srv.host, srv.port) as conn:
                with conn.session() as s:
                    threads = [
                        threading.Thread(
                            target=lambda: s.execute(
                                SLEEPY_QUERY, timeout=30).close())
                        for _ in range(3)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join(timeout=30)
                payload = conn.metrics()
            slow = payload["slow_queries"]
            assert len(slow) == 3
            for entry in slow:
                # Each entry saw exactly its own request subtree.
                assert entry["seconds"] >= 0.15
                assert all(n["seconds"] <= entry["seconds"] * 1.5
                           for n in entry["hot_nodes"])
        finally:
            srv.stop()
            TRACER.disable()


# ---------------------------------------------------------------------------
# shm/process pools: worker spans merged-or-dropped, never misparented
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_shm_pool_produces_no_foreign_spans():
    from repro.api import Database, connect as local_connect
    from repro.engine import Engine
    from repro.workloads.graphs import path_graph

    TRACER.clear()
    TRACER.enable()
    try:
        db = Database.of("g", edges=path_graph(32))
        eng = Engine(backend="parallel", workers=2, pool="shm")
        s = local_connect(db, engine=eng)
        with TRACER.span("outer") as outer:
            value = s.execute(Q.coll("edges").fix()).value
        assert len(value.elements) == 32 * 31 // 2
        # Everything recorded is under this flow of control: process
        # workers contributed timing (folded into driver-side spans) but
        # no spans of their own, and nothing landed as a stray root.
        assert [r for r in TRACER.recent() if r is not outer] == []
        q = outer.find("query")
        assert q is not None
        for sp in q.walk():
            assert sp.name in {
                "query", "rewrite", "compile", "shard-wave", "fixpoint-round",
            }
    finally:
        TRACER.disable()
        TRACER.clear()
