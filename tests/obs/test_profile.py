"""Cost-vs-actual profiling: ``explain_analyze`` and router accuracy.

The PR-10 acceptance criteria live here: ``explain_analyze`` on a
transitive-closure query renders the executed plan tree with per-node
actual time and rows *beside* the work/depth cost prediction, and
``router_stats()`` reports a predicted-vs-actual accuracy ratio per
routed template.  Plus the isolation property that makes profiling safe
to ship on by default: a profiled run never leaves instrumented closures
in the engine's steady-state compile caches.
"""

import pytest

from repro.api import Database, Q, connect
from repro.obs.profile import NodeProfile, PlanProfiler, QueryProfile
from repro.workloads.graphs import path_graph

pytestmark = pytest.mark.obs


@pytest.fixture()
def session():
    return connect(Database.of("g", edges=path_graph(12)))


TC = Q.coll("edges").fix()


# ---------------------------------------------------------------------------
# PlanProfiler mechanics
# ---------------------------------------------------------------------------

def test_profiler_keys_on_identity_not_equality():
    from repro.engine.vectorized.plan import PlanNode

    p = PlanProfiler()
    a = PlanNode("var", detail="edges")
    b = PlanNode("var", detail="edges")
    assert a == b and a is not b
    p.wrap(a, lambda: None)()
    assert p.lookup(a).calls == 1
    assert p.lookup(b) is None  # equal tree, different node: separate actuals


def test_wrapped_closure_accumulates():
    from repro.engine.vectorized.plan import PlanNode

    p = PlanProfiler()
    node = PlanNode("var")
    fn = p.wrap(node, lambda x: x + 1)
    assert fn(1) == 2 and fn(5) == 6
    rec = p.lookup(node)
    assert rec.calls == 2
    assert rec.seconds >= 0.0
    assert rec.rows is None  # ints have no cardinality


# ---------------------------------------------------------------------------
# explain_analyze: the acceptance criterion
# ---------------------------------------------------------------------------

def test_explain_analyze_tc_actuals_beside_prediction(session):
    profile = session.explain_analyze(TC)
    assert isinstance(profile, QueryProfile)
    # The result is the real TC denotation.
    expected = session.execute(TC).value
    assert profile.result == expected
    assert profile.rows == len(expected.elements)
    assert profile.seconds > 0
    assert profile.profiler.profiled_nodes() > 0

    text = profile.render()
    assert text == str(profile)
    # actuals header, prediction header, and per-node annotations
    assert text.startswith("actual: ")
    assert "predicted: work=" in text
    assert "accuracy: predicted/actual =" in text
    assert "-- actual" in text
    assert "rows=" in text and "calls=" in text

    d = profile.as_dict()
    assert d["rows"] == profile.rows
    assert d["plan"]["op"]
    assert d["estimate"] is not None and d["estimate"]["work"] > 0


def test_explain_analyze_attributes_session_stats(session):
    before = session.stats.snapshot()
    session.explain_analyze(TC)
    assert session.stats.executes == before.executes + 1
    assert session.stats.rewrites == before.rewrites + 1  # fresh template
    session.explain_analyze(TC)
    assert session.stats.rewrites == before.rewrites + 1  # plan-cache hit


def test_profiled_run_never_pollutes_steady_state(session):
    """The engine's own evaluator must not see instrumented closures."""
    session.execute(TC)  # warm the steady-state caches
    compiles_before = session.engine.vectorized_compiles()
    session.explain_analyze(TC)
    # The throwaway evaluator's compiles never hit the engine counter ...
    assert session.engine.vectorized_compiles() == compiles_before
    # ... and re-executing uses the unwrapped cached closures (no recompiles).
    session.execute(TC)
    assert session.engine.vectorized_compiles() == compiles_before


def test_explain_analyze_with_params(session):
    q = Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))
    profile = session.explain_analyze(q, params={"src": 0})
    assert profile.rows == 11  # 0 reaches 1..11 on path_graph(12)
    assert "-- actual" in profile.render()


# ---------------------------------------------------------------------------
# Router accuracy: predicted-vs-actual per routed template
# ---------------------------------------------------------------------------

def test_router_stats_report_prediction_accuracy():
    s = connect(Database.of("g", edges=path_graph(16)), backend="auto")
    for _ in range(3):
        s.execute(TC)
    stats = s.engine.router_stats()
    assert stats is not None
    acc = stats["accuracy"]
    assert acc, "routed templates must report accuracy rows"
    row = acc[0]
    assert row["backend"]
    assert row["predicted_backend"]
    assert row["predicted_s"] > 0
    assert row["measured_s"] > 0
    assert row["ratio"] == pytest.approx(
        row["predicted_s"] / row["measured_s"])
    assert row["runs"] >= 1
    assert len(row["template"]) <= 80
