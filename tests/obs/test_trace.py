"""Span correctness: nesting, isolation, and the disabled fast path.

The tracer is process-wide and carried in a ``contextvars.ContextVar``,
so the load-bearing assertions are isolation ones: six threads running
concurrent sessions each get their own span ancestry (a span opened on
one flow of control never adopts children from another), the parallel
executor's worker threads never misparent spans (shard waves are timed
on the driver, which blocks on the wave), and with tracing off the whole
surface is a shared no-op.
"""

import threading

import pytest

from repro.api import Database, Q, connect
from repro.obs.trace import TRACER, Span, Tracer
from repro.workloads.graphs import path_graph

pytestmark = pytest.mark.obs


@pytest.fixture()
def tracer():
    """Enable the process tracer for one test, restoring the default."""
    TRACER.clear()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.clear()


# ---------------------------------------------------------------------------
# The disabled fast path
# ---------------------------------------------------------------------------

def test_disabled_span_is_a_shared_noop():
    assert not TRACER.enabled
    a = TRACER.span("query")
    b = TRACER.span("rewrite", attrs=1)
    assert a is b  # one shared null object, no allocation per call
    with a as sp:
        assert sp is None
    assert TRACER.recent() == []


def test_disabled_event_is_dropped():
    assert TRACER.event("fixpoint-round", seconds=0.1) is None
    assert TRACER.recent() == []


# ---------------------------------------------------------------------------
# Nesting and attributes
# ---------------------------------------------------------------------------

def test_span_nesting_and_attributes(tracer):
    with tracer.span("query", backend="vectorized") as q:
        with tracer.span("rewrite") as r:
            r.set(rules_fired=3)
        with tracer.span("compile", expr="Fix"):
            tracer.event("fixpoint-round", seconds=0.25, round=1)
    roots = tracer.recent()
    assert [sp.name for sp in roots] == ["query"]
    root = roots[0]
    assert root.attrs == {"backend": "vectorized"}
    assert [c.name for c in root.children] == ["rewrite", "compile"]
    assert root.children[0].attrs == {"rules_fired": 3}
    inner = root.children[1].children
    assert [c.name for c in inner] == ["fixpoint-round"]
    assert inner[0].seconds == 0.25
    assert root.seconds >= sum(c.seconds for c in root.children[:1])


def test_walk_find_hottest_render(tracer):
    with tracer.span("query") as q:
        tracer.event("a", seconds=0.1)
        tracer.event("b", seconds=0.3)
        tracer.event("c", seconds=0.2)
    assert [sp.name for sp in q.walk()] == ["query", "a", "b", "c"]
    assert q.find("b").seconds == 0.3
    assert q.find("missing") is None
    assert [sp.name for sp in q.hottest(2)] == ["b", "c"]
    rendered = q.render()
    assert "query" in rendered and "  b" in rendered
    d = q.as_dict()
    assert d["name"] == "query" and len(d["children"]) == 3


def test_exception_still_closes_and_parents(tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("query"):
            with tracer.span("compile"):
                raise RuntimeError("boom")
    (root,) = tracer.recent()
    assert root.name == "query"
    assert [c.name for c in root.children] == ["compile"]


def test_bounded_root_buffer():
    t = Tracer(keep=4)
    t.enable()
    for i in range(10):
        with t.span("q", i=i):
            pass
    kept = [sp.attrs["i"] for sp in t.recent()]
    assert kept == [6, 7, 8, 9]


# ---------------------------------------------------------------------------
# Concurrency: contextvars isolation
# ---------------------------------------------------------------------------

def test_six_threads_never_cross_parent(tracer):
    """Each thread's root adopts exactly its own children."""
    n = 6
    barrier = threading.Barrier(n)
    errors = []

    def work(i: int) -> None:
        try:
            barrier.wait(timeout=10)
            with tracer.span("root", thread=i) as root:
                for j in range(20):
                    with tracer.span("child", thread=i, j=j):
                        pass
            assert len(root.children) == 20
            assert all(c.attrs["thread"] == i for c in root.children)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert errors == []
    roots = tracer.recent()
    assert sorted(sp.attrs["thread"] for sp in roots) == list(range(n))


def test_concurrent_sessions_each_get_their_own_query_span(tracer):
    """Six sessions over one engine: no query span adopts foreign children."""
    db = Database.of("g", edges=path_graph(16))
    shared = connect(db)
    sessions = [connect(db, engine=shared.engine) for _ in range(6)]
    barrier = threading.Barrier(6)
    errors = []

    def work(i: int) -> None:
        try:
            barrier.wait(timeout=10)
            with tracer.span("outer", thread=i) as outer:
                sessions[i].execute(Q.coll("edges").fix())
            queries = [c for c in outer.children if c.name == "query"]
            assert len(queries) == 1
            # Every descendant is engine-side tracing, reached only
            # through this thread's query span.
            for c in outer.children:
                assert c.name == "query"
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []


def test_parallel_backend_spans_stay_on_the_driver(tracer):
    """Thread-pool shard waves fold into driver-side spans; workers open none."""
    db = Database.of("g", edges=path_graph(24))
    s = connect(db, backend="parallel")
    with tracer.span("outer") as outer:
        s.execute(Q.coll("edges").fix())
    names = {sp.name for sp in outer.walk()}
    assert "query" in names
    # Whatever the pool did (flat rounds or shard waves) is parented under
    # this flow of control -- nothing leaked to the root buffer from a
    # worker thread.
    assert all(root is outer for root in tracer.recent())


def test_engine_query_span_shape(tracer):
    db = Database.of("g", edges=path_graph(16))
    s = connect(db)
    s.execute(Q.coll("edges").fix())
    roots = [sp for sp in tracer.recent() if sp.name == "query"]
    assert roots, "engine.run must open a query span"
    q = roots[-1]
    assert q.attrs.get("backend")
    assert q.attrs.get("rows") == len(s.execute(Q.coll("edges").fix()).value.elements)
    names = [c.name for c in q.walk()]
    assert "rewrite" in names
    assert "compile" in names
    assert "fixpoint-round" in names
    rounds = [sp for sp in q.walk() if sp.name == "fixpoint-round"]
    assert all(sp.attrs["frontier"] >= 0 for sp in rounds)
