"""Tests for the Turing machine (space accounting) and the CRCW PRAM simulator."""

import math

import pytest

from repro.machines.pram import PRAM, PRAMError, PRAMProgram, WritePolicy, WriteRequest
from repro.machines.pram_programs import (
    add_op,
    decode_tc_memory,
    max_op,
    or_program,
    reduction_tree_program,
    sequential_fold_program,
    tc_squaring_program,
    xor_op,
)
from repro.machines.turing import (
    LogSpaceChecker,
    binary_counting_machine,
    unary_length_parity_machine,
)
from repro.relational.algebra import transitive_closure_squaring
from repro.workloads.graphs import path_graph, random_graph


class TestTuringMachine:
    def test_parity_machine_accepts_even_lengths(self):
        m = unary_length_parity_machine()
        assert m.run("1111").accepted
        assert not m.run("111").accepted
        assert m.run("").accepted

    def test_parity_machine_uses_constant_space(self):
        m = unary_length_parity_machine()
        assert m.run("1" * 200).work_cells_used <= 1

    def test_counting_machine_accepts_everything(self):
        m = binary_counting_machine()
        assert m.run("101101").accepted

    def test_counting_machine_space_is_logarithmic(self):
        m = binary_counting_machine()
        spaces = {n: m.run("1" * n).work_cells_used for n in (8, 64, 512)}
        # one marker cell plus ~log2(n) counter bits
        for n, cells in spaces.items():
            assert cells <= math.log2(n) + 3
        assert spaces[512] - spaces[64] <= 4

    def test_space_bound_enforcement(self):
        m = binary_counting_machine()
        assert not m.run("1" * 64, max_space=2).accepted

    def test_logspace_checker(self):
        checker = LogSpaceChecker(binary_counting_machine())
        inputs = [(n, "1" * n, True) for n in (4, 16, 64)]
        assert checker.fits(inputs)

    def test_missing_transition_rejects(self):
        m = unary_length_parity_machine()
        assert not m.run("x").accepted


class TestPRAMSimulator:
    def test_single_write(self):
        prog = PRAMProgram()
        prog.add_step([0], lambda p, mem: [WriteRequest(0, 42)])
        result = PRAM().run(prog)
        assert result.read(0) == 42
        assert result.steps == 1

    def test_reads_see_pre_step_state(self):
        prog = PRAMProgram()
        prog.add_step([0, 1], lambda p, mem: [WriteRequest(p, mem.get(1 - p, 0) + 1)])
        result = PRAM().run(prog, {0: 10, 1: 20})
        assert result.read(0) == 21 and result.read(1) == 11

    def test_common_policy_rejects_conflicts(self):
        prog = PRAMProgram()
        prog.add_step([0, 1], lambda p, mem: [WriteRequest(9, p)])
        with pytest.raises(PRAMError):
            PRAM(WritePolicy.COMMON).run(prog)

    def test_common_policy_accepts_agreeing_writes(self):
        prog = PRAMProgram()
        prog.add_step([0, 1], lambda p, mem: [WriteRequest(9, 7)])
        assert PRAM(WritePolicy.COMMON).run(prog).read(9) == 7

    def test_arbitrary_policy_lowest_processor_wins(self):
        prog = PRAMProgram()
        prog.add_step([3, 1, 2], lambda p, mem: [WriteRequest(9, p)])
        assert PRAM(WritePolicy.ARBITRARY).run(prog).read(9) == 1

    def test_work_and_processor_accounting(self):
        prog = PRAMProgram()
        prog.add_step(range(4), lambda p, mem: [])
        prog.add_step(range(2), lambda p, mem: [])
        result = PRAM().run(prog)
        assert result.max_processors == 4
        assert result.total_work == 6


class TestPRAMPrograms:
    @pytest.mark.parametrize("op,values,expected", [
        (xor_op, [1, 0, 1, 1, 0], 1),
        (add_op, list(range(10)), 45),
        (max_op, [3, 9, 2, 7], 9),
    ])
    def test_reduction_tree_results(self, op, values, expected):
        prog, addr, mem = reduction_tree_program(values, op)
        assert PRAM().run(prog, mem).read(addr) == expected

    def test_tree_and_fold_agree(self):
        values = [1] * 23
        tprog, taddr, tmem = reduction_tree_program(values, xor_op)
        fprog, faddr, fmem = sequential_fold_program(values, xor_op)
        assert PRAM().run(tprog, tmem).read(taddr) == PRAM().run(fprog, fmem).read(faddr)

    def test_tree_is_logarithmic_fold_is_linear(self):
        values = [1] * 64
        tprog, _, tmem = reduction_tree_program(values, xor_op)
        fprog, _, fmem = sequential_fold_program(values, xor_op)
        tree = PRAM().run(tprog, tmem)
        fold = PRAM().run(fprog, fmem)
        assert tree.steps == 6
        assert fold.steps == 64
        assert tree.max_processors == 32
        assert fold.max_processors == 1

    def test_empty_reduction(self):
        prog, addr, mem = reduction_tree_program([], xor_op)
        assert PRAM().run(prog, mem).read(addr) == 0

    def test_crcw_or_single_step(self):
        prog, addr, mem = or_program(8)
        mem.update({i: 0 for i in range(8)})
        mem[5] = 1
        result = PRAM().run(prog, mem)
        assert result.read(addr) == 1
        assert result.steps == 1

    @pytest.mark.parametrize("graph", [path_graph(8), random_graph(6, 0.35, seed=2)],
                             ids=["path", "random"])
    def test_tc_program_matches_oracle(self, graph):
        n = max(graph.active_domain(), default=0) + 1
        edges = list(graph.tuples)
        prog, mem = tc_squaring_program(n, edges)
        result = PRAM().run(prog, mem)
        expected, _ = transitive_closure_squaring(frozenset(edges))
        assert decode_tc_memory(n, result.memory) == expected

    def test_tc_program_steps_are_logarithmic(self):
        prog8, _ = tc_squaring_program(8, [(i, i + 1) for i in range(7)])
        prog64, _ = tc_squaring_program(64, [(i, i + 1) for i in range(63)])
        # two PRAM steps (square + merge) per squaring round, bit_length(n) rounds
        assert len(prog8.steps) == 2 * (8).bit_length()
        assert len(prog64.steps) == 2 * (64).bit_length()
        # doubling n three times adds only a constant number of rounds
        assert len(prog64.steps) - len(prog8.steps) == 2 * 3
