"""Tests for the lifted linear order on complex objects."""

import random

import pytest

from repro.objects.order import (
    co_cmp,
    co_le,
    co_lt,
    co_max,
    co_min,
    co_sorted,
    from_rank,
    is_sorted,
    rank,
    successor_pairs,
)
from repro.objects.values import FALSE, TRUE, base, from_python, mkset, pair


class TestBasicOrder:
    def test_integers_natural_order(self):
        assert co_lt(base(1), base(2))
        assert not co_lt(base(2), base(1))

    def test_strings_natural_order(self):
        assert co_lt(base("a"), base("b"))

    def test_booleans(self):
        assert co_lt(FALSE, TRUE)

    def test_reflexive_le(self):
        assert co_le(base(3), base(3))

    def test_cmp_signs(self):
        assert co_cmp(base(1), base(2)) < 0
        assert co_cmp(base(2), base(1)) > 0
        assert co_cmp(base(2), base(2)) == 0

    def test_pairs_lexicographic(self):
        assert co_lt(pair(base(1), base(9)), pair(base(2), base(0)))
        assert co_lt(pair(base(1), base(1)), pair(base(1), base(2)))

    def test_sets_by_cardinality_then_elements(self):
        assert co_lt(mkset([base(5)]), mkset([base(1), base(2)]))
        assert co_lt(mkset([base(1), base(2)]), mkset([base(1), base(3)]))


class TestTotality:
    def test_total_on_random_same_type_values(self):
        rng = random.Random(7)
        values = [from_python(frozenset(rng.sample(range(10), rng.randint(0, 4)))) for _ in range(20)]
        for a in values:
            for b in values:
                assert co_le(a, b) or co_le(b, a)
                if co_le(a, b) and co_le(b, a):
                    assert a == b

    def test_transitive(self):
        a, b, c = base(1), base(5), base(9)
        assert co_le(a, b) and co_le(b, c) and co_le(a, c)


class TestUtilities:
    def test_sorted_min_max(self):
        vs = [base(3), base(1), base(2)]
        assert [v.value for v in co_sorted(vs)] == [1, 2, 3]
        assert co_min(vs) == base(1)
        assert co_max(vs) == base(3)

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            co_min([])

    def test_is_sorted(self):
        assert is_sorted([base(1), base(2), base(2)])
        assert not is_sorted([base(2), base(1)])

    def test_rank_roundtrip(self):
        s = mkset([base(10), base(20), base(30)])
        for i, v in enumerate(s.elements):
            assert rank(s, v) == i
            assert from_rank(s, i) == v

    def test_rank_missing_element(self):
        with pytest.raises(ValueError):
            rank(mkset([base(1)]), base(2))

    def test_from_rank_out_of_range(self):
        with pytest.raises(ValueError):
            from_rank(mkset([base(1)]), 3)

    def test_successor_pairs(self):
        s = mkset([base(3), base(1), base(2)])
        assert successor_pairs(s) == [(base(1), base(2)), (base(2), base(3))]
