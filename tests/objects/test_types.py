"""Tests for the complex object type grammar."""

import pytest

from repro.objects.types import (
    BASE,
    BOOL,
    UNIT,
    ProdType,
    SetType,
    format_type,
    is_flat_type,
    is_nra1_type,
    is_ps_type,
    parse_type,
    prod,
    relation_type,
    set_height,
    type_size,
)


class TestConstruction:
    def test_singletons_are_equal(self):
        assert BASE == BASE
        assert BOOL == BOOL
        assert UNIT == UNIT

    def test_product_operator(self):
        assert BASE * BOOL == ProdType(BASE, BOOL)

    def test_set_of(self):
        assert BASE.set_of() == SetType(BASE)

    def test_prod_right_nesting(self):
        assert prod(BASE, BOOL, UNIT) == ProdType(BASE, ProdType(BOOL, UNIT))

    def test_prod_single(self):
        assert prod(BASE) == BASE

    def test_prod_empty_is_unit(self):
        assert prod() == UNIT

    def test_relation_type(self):
        assert relation_type(1) == SetType(BASE)
        assert relation_type(2) == SetType(ProdType(BASE, BASE))

    def test_relation_type_rejects_zero(self):
        with pytest.raises(ValueError):
            relation_type(0)

    def test_types_are_hashable(self):
        s = {BASE, BOOL, SetType(BASE), SetType(BASE)}
        assert len(s) == 3


class TestSetHeight:
    def test_atomic_heights(self):
        assert set_height(BASE) == 0
        assert set_height(BOOL) == 0
        assert set_height(UNIT) == 0

    def test_flat_relation_height(self):
        assert set_height(relation_type(3)) == 1

    def test_nested_height(self):
        assert set_height(SetType(SetType(BASE))) == 2

    def test_product_takes_max(self):
        t = ProdType(SetType(BASE), SetType(SetType(BOOL)))
        assert set_height(t) == 2


class TestPredicates:
    def test_flat_relation_is_flat(self):
        assert is_flat_type(relation_type(2))

    def test_product_of_relations_is_flat(self):
        assert is_flat_type(ProdType(relation_type(1), relation_type(2)))

    def test_nested_set_is_not_flat(self):
        assert not is_flat_type(SetType(SetType(BASE)))

    def test_base_alone_is_not_flat_type(self):
        assert not is_flat_type(BASE)

    def test_nra1_accepts_height_one(self):
        assert is_nra1_type(relation_type(2))
        assert is_nra1_type(BASE)

    def test_nra1_rejects_height_two(self):
        assert not is_nra1_type(SetType(relation_type(2)))

    def test_set_is_ps_type(self):
        assert is_ps_type(SetType(BASE))

    def test_product_of_sets_is_ps_type(self):
        assert is_ps_type(ProdType(SetType(BASE), SetType(BOOL)))

    def test_bool_is_not_ps_type(self):
        assert not is_ps_type(BOOL)

    def test_pair_with_non_set_component_is_not_ps(self):
        assert not is_ps_type(ProdType(SetType(BASE), BASE))


class TestParseFormat:
    @pytest.mark.parametrize(
        "text",
        ["D", "B", "unit", "{D}", "{D x D}", "{D x B} x {D}", "{{D x B}}", "(D x D) x B"],
    )
    def test_roundtrip(self, text):
        t = parse_type(text)
        assert parse_type(format_type(t)) == t

    def test_product_is_right_associative(self):
        assert parse_type("D x D x B") == prod(BASE, BASE, BOOL)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_type("D x x")

    def test_parse_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            parse_type("{D")

    def test_parse_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            parse_type("Q")

    def test_type_size(self):
        assert type_size(BASE) == 1
        assert type_size(parse_type("{D x B}")) == 4
