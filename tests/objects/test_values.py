"""Tests for complex object values: canonicity, conversions, typing, measures."""

import pytest

from repro.objects.types import BASE, BOOL, ProdType, SetType, parse_type
from repro.objects.values import (
    EMPTY_SET,
    FALSE,
    TRUE,
    BaseVal,
    BoolVal,
    PairVal,
    SetVal,
    UnitVal,
    active_domain,
    base,
    boolean,
    check_type,
    from_python,
    infer_type,
    mkset,
    pair,
    rename_atoms,
    singleton,
    to_python,
    tup,
    untup,
    value_size,
)


class TestConstruction:
    def test_base_accepts_int_and_str(self):
        assert base(3).value == 3
        assert base("a").value == "a"

    def test_base_rejects_bool(self):
        with pytest.raises(TypeError):
            BaseVal(True)

    def test_base_rejects_float(self):
        with pytest.raises(TypeError):
            BaseVal(1.5)

    def test_bool_constants(self):
        assert boolean(True) is TRUE
        assert boolean(False) is FALSE

    def test_pair_requires_values(self):
        with pytest.raises(TypeError):
            PairVal(1, base(2))  # type: ignore[arg-type]

    def test_set_rejects_non_values(self):
        with pytest.raises(TypeError):
            SetVal([1, 2])  # type: ignore[list-item]


class TestCanonicalSets:
    def test_duplicates_removed(self):
        s = mkset([base(1), base(1), base(2)])
        assert len(s) == 2

    def test_order_insensitive_equality(self):
        assert mkset([base(2), base(1)]) == mkset([base(1), base(2)])

    def test_hash_consistency(self):
        assert hash(mkset([base(2), base(1)])) == hash(mkset([base(1), base(2)]))

    def test_elements_are_sorted(self):
        s = mkset([base(3), base(1), base(2)])
        assert [e.value for e in s] == [1, 2, 3]

    def test_membership(self):
        s = mkset([base(1), base(2)])
        assert base(1) in s
        assert base(5) not in s

    def test_union_intersection_difference(self):
        a = mkset([base(1), base(2)])
        b = mkset([base(2), base(3)])
        assert a.union(b) == mkset([base(1), base(2), base(3)])
        assert a.intersection(b) == singleton(base(2))
        assert a.difference(b) == singleton(base(1))

    def test_subset(self):
        assert singleton(base(1)).is_subset(mkset([base(1), base(2)]))
        assert not mkset([base(1), base(3)]).is_subset(mkset([base(1), base(2)]))

    def test_nested_sets_deduplicate(self):
        s = mkset([mkset([base(1), base(2)]), mkset([base(2), base(1)])])
        assert len(s) == 1


class TestConversions:
    def test_from_python_scalars(self):
        assert from_python(5) == base(5)
        assert from_python(True) == TRUE
        assert from_python("x") == base("x")

    def test_from_python_tuple_nesting(self):
        assert from_python((1, 2, 3)) == tup(base(1), base(2), base(3))

    def test_from_python_empty_tuple_is_unit(self):
        assert from_python(()) == UnitVal()

    def test_from_python_set(self):
        v = from_python({1, 2})
        assert isinstance(v, SetVal)
        assert len(v) == 2

    def test_roundtrip(self):
        data = frozenset({(1, True), (2, False)})
        assert to_python(from_python(data)) == data

    def test_from_python_rejects_dict(self):
        with pytest.raises(TypeError):
            from_python({"a": 1})

    def test_tup_untup(self):
        v = tup(base(1), base(2), base(3))
        assert untup(v, 3) == (base(1), base(2), base(3))

    def test_untup_wrong_arity(self):
        with pytest.raises(TypeError):
            untup(base(1), 2)


class TestTyping:
    def test_infer_scalars(self):
        assert infer_type(base(1)) == BASE
        assert infer_type(TRUE) == BOOL

    def test_infer_pair(self):
        assert infer_type(pair(base(1), TRUE)) == ProdType(BASE, BOOL)

    def test_infer_set(self):
        assert infer_type(from_python({(1, 2)})) == parse_type("{D x D}")

    def test_infer_heterogeneous_set_fails(self):
        with pytest.raises(TypeError):
            infer_type(mkset([base(1), TRUE]))

    def test_check_empty_set_at_any_set_type(self):
        assert check_type(EMPTY_SET, parse_type("{D x D}"))
        assert check_type(EMPTY_SET, parse_type("{{D}}"))

    def test_check_type_positive(self):
        assert check_type(from_python({(1, True)}), parse_type("{D x B}"))

    def test_check_type_negative(self):
        assert not check_type(from_python({(1, 2)}), parse_type("{D x B}"))
        assert not check_type(base(1), BOOL)


class TestMeasures:
    def test_value_size_scalar(self):
        assert value_size(base(7)) == 1

    def test_value_size_nested(self):
        v = from_python({(1, 2), (3, 4)})
        assert value_size(v) == 1 + 2 * 3

    def test_active_domain(self):
        v = from_python({(1, 2), ("a", 3)})
        assert active_domain(v) == frozenset({1, 2, 3, "a"})

    def test_rename_atoms(self):
        v = from_python({(1, 2)})
        renamed = rename_atoms(v, {1: 10, 2: 20})
        assert to_python(renamed) == frozenset({(10, 20)})

    def test_rename_missing_atoms_unchanged(self):
        v = from_python({(1, 2)})
        assert rename_atoms(v, {}) == v
