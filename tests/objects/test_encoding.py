"""Tests for the Section 5 string encodings of complex objects."""

import pytest

from repro.objects.encoding import (
    ALPHABET,
    BLANK,
    EncodingError,
    atom_codes_for,
    compact_blanks,
    decode,
    element_starts,
    encode,
    encoded_length_bits,
    encodings_equal,
    from_bits,
    match_parentheses,
    minimal_encoding,
    remove_duplicates,
    roundtrip,
    scatter_blanks,
    strip_blanks,
    to_bits,
    top_level_elements,
    dumps_value,
    from_jsonable,
    loads_value,
    row_from_jsonable,
    row_to_jsonable,
    to_jsonable,
)
from repro.objects.types import parse_type
from repro.objects.values import FALSE, TRUE, UnitVal, base, from_python, mkset, pair


class TestEncode:
    def test_alphabet_has_eight_symbols(self):
        assert len(ALPHABET) == 8
        assert len(set(ALPHABET)) == 8

    def test_base_value_binary(self):
        assert encode(base(5)) == "101"
        assert encode(base(0)) == "0"

    def test_booleans(self):
        assert encode(TRUE) == "1"
        assert encode(FALSE) == "0"

    def test_unit(self):
        assert encode(UnitVal()) == "()"

    def test_pair(self):
        assert encode(pair(base(1), base(2))) == "(1,10)"

    def test_set_no_duplicates_in_encoding(self):
        enc = encode(from_python({1, 2, 3}))
        inner = enc[1:-1].split(",")
        assert len(inner) == len(set(inner))

    def test_string_atom_requires_codes(self):
        with pytest.raises(EncodingError):
            encode(base("x"))

    def test_negative_code_rejected(self):
        with pytest.raises(EncodingError):
            encode(base(1), {1: -1})

    def test_minimal_encoding_renumbers_atoms(self):
        v = from_python({100, 200})
        assert minimal_encoding(v) == "{0,1}"

    def test_atom_codes_preserve_order(self):
        codes = atom_codes_for(from_python({30, 10, 20}))
        assert codes == {10: 0, 20: 1, 30: 2}


class TestBits:
    def test_three_bits_per_symbol(self):
        assert len(to_bits("{}")) == 6

    def test_bits_roundtrip(self):
        s = "{(0,1),(1,10)}"
        assert from_bits(to_bits(s)) == s

    def test_from_bits_rejects_bad_length(self):
        with pytest.raises(EncodingError):
            from_bits("01")

    def test_encoded_length_bits(self):
        v = from_python({1})
        assert encoded_length_bits(v) == 3 * len(minimal_encoding(v))


class TestDecode:
    @pytest.mark.parametrize(
        "data,type_text",
        [
            (frozenset({1, 2, 3}), "{D}"),
            (frozenset({(1, 2), (3, 4)}), "{D x D}"),
            (frozenset({(1, frozenset({2, 3}))}), "{D x {D}}"),
            ((1, True), "D x B"),
            (frozenset(), "{D}"),
        ],
    )
    def test_roundtrip(self, data, type_text):
        v = from_python(data)
        t = parse_type(type_text)
        assert roundtrip(v, t) == v

    def test_decode_ignores_blanks(self):
        t = parse_type("{D}")
        assert decode("{_0_,_1_}", t) == from_python({0, 1})

    def test_decode_rejects_duplicates(self):
        with pytest.raises(EncodingError):
            decode("{1,1}", parse_type("{D}"))

    def test_decode_rejects_truncated(self):
        with pytest.raises(EncodingError):
            decode("{1,10", parse_type("{D}"))

    def test_decode_rejects_trailing(self):
        with pytest.raises(EncodingError):
            decode("{1}1", parse_type("{D}"))

    def test_decode_with_atom_map(self):
        t = parse_type("{D}")
        assert decode("{0,1}", t, {0: 100, 1: 200}) == from_python({100, 200})

    def test_encodings_equal(self):
        t = parse_type("{D}")
        assert encodings_equal("{0,1}", "{_1_,0}", t)
        assert not encodings_equal("{0,1}", "{0}", t)


class TestBlanks:
    def test_scatter_then_strip(self):
        enc = "{10,11}"
        blanked = scatter_blanks(enc, [0, 3, 7])
        assert strip_blanks(blanked) == enc

    def test_scatter_never_splits_numbers(self):
        enc = "{10,11}"
        blanked = scatter_blanks(enc, [2])
        # position 2 falls inside "10"; the blank must not split the digits
        assert "1_0" not in blanked and "1_1" not in blanked

    def test_compact_blanks_moves_to_end(self):
        assert compact_blanks("{_1_,_0_}") == "{1,0}" + BLANK * 4

    def test_compact_preserves_length(self):
        s = "{_1_,_0_}"
        assert len(compact_blanks(s)) == len(s)


class TestStringOps:
    def test_match_parentheses_partners(self):
        m = match_parentheses("{(0,1)}")
        assert m.partner[0] == 6
        assert m.partner[1] == 5

    def test_match_parentheses_depth(self):
        m = match_parentheses("{(0,1)}")
        assert m.depth[0] == 1
        assert m.depth[1] == 2

    def test_match_rejects_unbalanced(self):
        with pytest.raises(EncodingError):
            match_parentheses("{(0,1)")
        with pytest.raises(EncodingError):
            match_parentheses("{0)}")

    def test_element_starts_flat_set(self):
        marks = element_starts("{0,1,10}")
        assert marks == (0, 1, 0, 1, 0, 1, 0, 0)

    def test_element_starts_with_blanks(self):
        marks = element_starts("{_0,1}")
        assert marks[2] == 1 and marks[4] == 1

    def test_top_level_elements(self):
        assert top_level_elements("{(0,1),(1,10)}") == ["(0,1)", "(1,10)"]

    def test_top_level_elements_empty_set(self):
        assert top_level_elements("{}") == []

    def test_remove_duplicates_blanks_out_copies(self):
        result = remove_duplicates("{10,10,11}")
        assert strip_blanks(result) in ("{10,11}", "{10,11}")
        assert len(result) == len("{10,10,11}")

    def test_remove_duplicates_keeps_valid_decoding(self):
        t = parse_type("{D}")
        assert decode(remove_duplicates("{10,10,11}"), t) == from_python({2, 3})

    def test_remove_duplicates_no_op_when_distinct(self):
        assert remove_duplicates("{0,1}") == "{0,1}"


class TestJsonWireEncoding:
    """The JSON value codec the network service frames rows with."""

    CASES = [
        TRUE,
        FALSE,
        UnitVal(),
        base(0),
        base(41),
        base("atom"),
        pair(base(1), base(2)),
        pair(pair(base(1), TRUE), UnitVal()),
        mkset(),
        from_python({1, 2, 3}),
        from_python({(1, 2), (3, 4)}),
        from_python({frozenset({1}), frozenset({2, 3})}),
        from_python((frozenset({("a", 1)}), "b")),
    ]

    def test_round_trip(self):
        for v in self.CASES:
            assert from_jsonable(to_jsonable(v)) == v
            assert loads_value(dumps_value(v)) == v

    def test_jsonable_is_pure_json(self):
        import json as _json

        for v in self.CASES:
            _json.dumps(to_jsonable(v))  # must not raise

    def test_bool_int_disambiguation(self):
        # True/1 and False/0 are distinct values and must stay distinct on
        # the wire even though python bools are ints.
        assert to_jsonable(TRUE) is True
        assert to_jsonable(base(1)) == 1 and to_jsonable(base(1)) is not True
        assert from_jsonable(True) == TRUE != from_jsonable(1)
        assert from_jsonable(False) == FALSE != from_jsonable(0)

    def test_canonical_text_is_order_free(self):
        a = from_python({(3, 4), (1, 2)})
        b = from_python({(1, 2), (3, 4)})
        assert dumps_value(a) == dumps_value(b)

    def test_noncanonical_set_text_still_decodes(self):
        assert loads_value('{"s":[3,1,2,2]}') == from_python({1, 2, 3})

    def test_row_round_trip(self):
        # () is unit's python shape (to_python(UnitVal()) == ()).
        rows = [(1, 2), "x", True, (), frozenset({(1, 2)}), ((1, "a"), False)]
        for row in rows:
            assert row_from_jsonable(row_to_jsonable(row)) == row

    def test_junk_rejected(self):
        for junk in (
            [1, 2, 3],          # not a pair
            [1],                # not a pair either
            {"t": []},          # wrong set key
            {"s": [], "x": 1},  # extra key
            {"s": 7},           # set body must be a list
            1.5,                # no float atoms in the model
        ):
            with pytest.raises(EncodingError):
                from_jsonable(junk)

    def test_bad_json_text_rejected(self):
        with pytest.raises(EncodingError):
            loads_value("{not json")
