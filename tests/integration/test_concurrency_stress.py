"""Concurrency stress: many threads, many sessions, one parallel engine.

The documented lock contract (:class:`repro.engine.Engine`): an engine
serializes its cache-touching operations behind one reentrant lock, so
sharing an engine across sessions and threads is correct (not call-parallel);
the ``parallel`` backend parallelizes *inside* a call with workers that never
touch engine state.  This suite hammers exactly that contract: N threads over
M sessions on one shared ``Engine(backend="parallel")``, mixing ``run``
(execute), ``run_many`` (executemany) and prepared execution, then checks

* every result matches the single-threaded expectation, and
* the engine's plan-cache counters are exactly the sum of what the sessions
  attributed to themselves (the sessions are the engine's only users, and
  attribution happens under the engine lock, so nothing may be lost or
  double-counted).
"""

import threading

import pytest

from repro.api import Database, Q
from repro.api.session import Session
from repro.engine import Engine
from repro.workloads.graphs import path_graph

pytestmark = [pytest.mark.stress, pytest.mark.slow]

THREADS = 6
SESSIONS = 3
ITERATIONS = 8
SOURCES = (0, 2, 5, 9, 13)


# One Query object per template, shared by every session and thread: a
# rebuilt fluent query elaborates with fresh bound-variable names and would
# be a structurally new template (and a fresh rewrite) each time.
SELECTION = Q.coll("edges").where(lambda e: e.fst == Q.param("src"))
CLOSURE = Q.coll("edges").fix()


def _selection():
    return SELECTION


def _closure():
    return CLOSURE


@pytest.fixture()
def setup():
    db = Database.of("g", edges=path_graph(16))
    engine = Engine(backend="parallel", workers=2, shards=4)
    sessions = [Session(db, engine=engine) for _ in range(SESSIONS)]
    # Single-threaded expectations from a private vectorized session.
    oracle = Session(db, backend="vectorized")
    expected_select = {
        k: oracle.execute(_selection(), params={"src": k}).value for k in SOURCES
    }
    expected_many = [
        c.value for c in oracle.executemany(_selection(), list(SOURCES))
    ]
    expected_closure = oracle.execute(_closure()).value
    yield engine, sessions, expected_select, expected_many, expected_closure
    engine.close()


def test_threads_sessions_and_prepared_execution_agree(setup):
    engine, sessions, expected_select, expected_many, expected_closure = setup
    prepared = [s.prepare(_selection()) for s in sessions]
    start = threading.Barrier(THREADS)
    failures: list[str] = []

    def worker(tid: int) -> None:
        session = sessions[tid % SESSIONS]
        ps = prepared[tid % SESSIONS]
        start.wait()
        try:
            for i in range(ITERATIONS):
                k = SOURCES[(tid + i) % len(SOURCES)]
                got = session.execute(_selection(), params={"src": k}).value
                if got != expected_select[k]:
                    failures.append(f"t{tid}: execute src={k} diverged")
                got_many = [
                    c.value for c in session.executemany(_selection(), list(SOURCES))
                ]
                if got_many != expected_many:
                    failures.append(f"t{tid}: executemany diverged")
                got_ps = ps.execute(src=k).value
                if got_ps != expected_select[k]:
                    failures.append(f"t{tid}: prepared src={k} diverged")
                if i == ITERATIONS // 2:
                    got_fix = session.execute(_closure()).value
                    if got_fix != expected_closure:
                        failures.append(f"t{tid}: closure diverged")
        except Exception as exc:  # noqa: BLE001 - surfaced via the failure list
            failures.append(f"t{tid}: raised {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(tid,), name=f"stress-{tid}")
        for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "stress threads deadlocked"
    assert not failures, "\n".join(failures)

    # Cache-counter consistency: the sessions are this engine's only users
    # and attribute their deltas under the engine lock, so the per-session
    # sums must reproduce the engine totals exactly.
    assert engine.plan_misses == sum(s.stats.rewrites for s in sessions)
    assert engine.plan_hits == sum(s.stats.plan_hits for s in sessions)
    per_thread_executes = ITERATIONS * (2 + len(SOURCES)) + 1
    assert (
        sum(s.stats.executes for s in sessions) == THREADS * per_thread_executes
    )
    assert sum(s.stats.batches for s in sessions) == THREADS * ITERATIONS


def test_counter_attribution_is_exact_under_contention(setup):
    engine, sessions, expected_select, *_ = setup
    start = threading.Barrier(THREADS)
    errors: list[str] = []

    def worker(tid: int) -> None:
        session = sessions[tid % SESSIONS]
        start.wait()
        for i in range(ITERATIONS):
            k = SOURCES[(tid * 3 + i) % len(SOURCES)]
            if session.execute(_selection(), params={"src": k}).value != expected_select[k]:
                errors.append(f"t{tid} diverged")

    threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    # One template: exactly one rewrite ever, the rest plan-cache hits.
    assert engine.plan_misses == 1
    assert engine.plan_hits == THREADS * ITERATIONS - 1
    assert sum(s.stats.rewrites for s in sessions) == 1
    assert sum(s.stats.plan_hits for s in sessions) == THREADS * ITERATIONS - 1