"""Integration tests: the same queries computed by every substrate must agree.

The strongest correctness argument this reproduction can make is that four
independent executions of the paper's queries coincide:

1. the NRA reference interpreter (``repro.nra.eval``);
2. the work/depth cost evaluator (``repro.nra.cost``);
3. the compiled circuit families (``repro.circuits.compile_flat``);
4. the CRCW PRAM programs (``repro.machines.pram_programs``);

all checked against the plain-Python relational algebra oracle
(``repro.relational.algebra``).
"""

import pytest

from repro.circuits.compile_flat import compile_query, parity_query, tc_squaring_query
from repro.machines.pram import PRAM
from repro.machines.pram_programs import (
    decode_tc_memory,
    reduction_tree_program,
    tc_squaring_program,
    xor_op,
)
from repro.nra.cost import cost_run
from repro.nra.eval import run
from repro.relational.algebra import parity_of, transitive_closure_seminaive
from repro.relational.queries import (
    parity_dcr,
    reachable_pairs_query,
    run_tc,
    tagged_boolean_set,
)
from repro.workloads.graphs import cycle_graph, path_graph, random_graph
from repro.workloads.nested import random_bits


GRAPHS = [
    path_graph(6),
    cycle_graph(5),
    random_graph(7, 0.3, seed=11),
    random_graph(7, 0.6, seed=12),
]


@pytest.mark.parametrize("graph", GRAPHS, ids=["path", "cycle", "sparse", "dense"])
class TestTransitiveClosureEverywhere:
    def test_all_substrates_agree(self, graph):
        edges = frozenset(graph.tuples)
        n = max(graph.active_domain(), default=0) + 1
        oracle, _ = transitive_closure_seminaive(edges)

        # 1-2. NRA interpreter and cost evaluator, in all three styles.
        for style in ("dcr", "logloop", "sri"):
            q = reachable_pairs_query(style)
            assert run_tc(q, graph) == oracle
            value, _ = cost_run(q, graph.value())
            assert run(q, graph.value()) == value

        # 3. Compiled circuit.
        compiled = compile_query(tc_squaring_query(), n)
        assert compiled.run({"r": edges}) == oracle

        # 4. PRAM program.
        prog, mem = tc_squaring_program(n, list(edges))
        result = PRAM().run(prog, mem)
        assert decode_tc_memory(n, result.memory) == oracle


class TestParityEverywhere:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_all_substrates_agree(self, seed):
        bits = random_bits(11 + seed, seed=seed)
        expected = parity_of(bits)

        # NRA query (dcr style).
        assert run(parity_dcr(), tagged_boolean_set(bits)).value is expected

        # PRAM combining tree.
        prog, addr, mem = reduction_tree_program([1 if b else 0 for b in bits], xor_op)
        assert bool(PRAM().run(prog, mem).read(addr)) is expected

    def test_circuit_parity_of_edge_count(self):
        # The circuit-level parity query counts edges; cross-check on a known graph.
        graph = path_graph(6)
        edges = frozenset(graph.tuples)
        compiled = compile_query(parity_query(), 6)
        assert compiled.run({"r": edges}) is (len(edges) % 2 == 1)


class TestParallelShapeClaims:
    """The qualitative complexity claims, measured end to end."""

    def test_dcr_depth_polylog_sri_depth_linear(self):
        from repro.complexity.fit import is_polylog

        ns = [8, 16, 32, 64]
        dcr_depths = []
        sri_depths = []
        for n in ns:
            g = path_graph(n)
            _, c_dcr = cost_run(reachable_pairs_query("dcr"), g.value())
            _, c_sri = cost_run(reachable_pairs_query("sri"), g.value())
            dcr_depths.append(c_dcr.depth)
            sri_depths.append(c_sri.depth)
        assert is_polylog(ns, dcr_depths)
        assert not is_polylog(ns, sri_depths)

    def test_circuit_depth_matches_nesting_level(self):
        from repro.circuits.compile_flat import nested_loop_query
        from repro.circuits.families import CircuitFamily, polylog_depth_bound

        sizes = [4, 8, 16, 32]
        fam1 = CircuitFamily("k1", lambda n: compile_query(nested_loop_query(1), n).circuit)
        fam2 = CircuitFamily("k2", lambda n: compile_query(nested_loop_query(2), n).circuit)
        _, ok1 = polylog_depth_bound(fam1.measure(sizes), 1)
        _, ok2 = polylog_depth_bound(fam2.measure(sizes), 2)
        assert ok1 and ok2
        assert fam2.circuit(32).depth() > fam1.circuit(32).depth()

    def test_pram_tree_time_is_logarithmic_in_input(self):
        import math

        for n in (16, 64, 256):
            prog, _, mem = reduction_tree_program([1] * n, xor_op)
            result = PRAM().run(prog, mem)
            assert result.steps == math.ceil(math.log2(n))
