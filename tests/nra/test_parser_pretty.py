"""Tests for the concrete syntax: parser, pretty printer and their round trip."""

import pytest

from repro.objects.types import BASE, BOOL, SetType, parse_type
from repro.objects.values import base, from_python, pair
from repro.nra import ast
from repro.nra.errors import NRAParseError
from repro.nra.eval import run
from repro.nra.externals import ARITH_SIGMA
from repro.nra.parser import parse
from repro.nra.pretty import pretty, pretty_multiline
from repro.relational.queries import (
    parity_dcr,
    transitive_closure_dcr,
    transitive_closure_logloop,
    transitive_closure_sri,
)


class TestParserBasics:
    def test_literals(self):
        assert parse("true") == ast.BoolConst(True)
        assert parse("false") == ast.BoolConst(False)
        assert parse("()") == ast.UnitConst()
        assert parse("42") == ast.Const(base(42), BASE)

    def test_empty_set_with_type(self):
        assert parse("empty[D x D]") == ast.EmptySet(parse_type("D x D"))

    def test_set_literal_desugars_to_unions(self):
        e = parse("{1, 2, 3}")
        assert run(e) == from_python({1, 2, 3})

    def test_pair_and_projections(self):
        e = parse("pi1((1, 2))")
        assert run(e) == base(1)
        assert run(parse("pi2((1, 2))")) == base(2)

    def test_lambda_and_application(self):
        e = parse("(\\x:D. (x, x))(7)")
        assert run(e) == pair(base(7), base(7))

    def test_if_then_else(self):
        assert run(parse("if true then 1 else 2")) == base(1)

    def test_eq_and_isempty(self):
        assert run(parse("eq(1, 1)")).value is True
        assert run(parse("isempty(empty[D])")).value is True

    def test_union(self):
        assert run(parse("union({1}, {2})")) == from_python({1, 2})

    def test_ext(self):
        e = parse("(ext(\\x:D. {(x, x)}))({1, 2})")
        assert len(run(e)) == 2

    def test_external_call(self):
        e = parse("@plus(2, 3)")
        assert run(e, sigma=ARITH_SIGMA) == base(5)

    def test_dcr_syntax(self):
        e = parse("(dcr(0; \\x:D. x; \\p:D x D. @plus(pi1(p), pi2(p))))({1, 2, 3})")
        assert run(e, sigma=ARITH_SIGMA) == base(6)

    def test_loop_syntax(self):
        e = parse("(loop[D](\\x:D. @plus(x, 1)))(({5, 6, 7}, 0))")
        assert run(e, sigma=ARITH_SIGMA) == base(3)

    def test_parse_errors(self):
        for bad in ["(1, ", "dcr(1; 2)", "\\x. x", "@", "{}"]:
            with pytest.raises(NRAParseError):
                parse(bad)

    def test_trailing_input_rejected(self):
        with pytest.raises(NRAParseError):
            parse("1 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [transitive_closure_dcr, transitive_closure_logloop, transitive_closure_sri, parity_dcr],
        ids=["tc-dcr", "tc-logloop", "tc-sri", "parity"],
    )
    def test_query_library_round_trips(self, builder):
        q = builder()
        reparsed = parse(pretty(q))
        # Round trip preserves semantics (alpha-renaming may change variable names).
        if "parity" in pretty(q) or "B" in pretty(q).split(".")[0]:
            pass
        rel = from_python({(1, 2), (2, 3)})
        probe = rel if "D x D" in pretty(q) else from_python({(0, True), (1, False)})
        assert run(reparsed, probe) == run(q, probe)

    @pytest.mark.parametrize(
        "source",
        [
            "\\x:{D x D}. union(x, x)",
            "if eq(1, 2) then {1} else {2}",
            "(sri(empty[D]; \\p:D x {D}. union({pi1(p)}, pi2(p))))({1, 2})",
            "logloop[D](\\x:{D}. x)",
        ],
    )
    def test_pretty_parse_fixed_point(self, source):
        e = parse(source)
        assert pretty(parse(pretty(e))) == pretty(e)


class TestPretty:
    def test_pretty_is_single_line(self):
        assert "\n" not in pretty(transitive_closure_dcr())

    def test_pretty_multiline_indents_large_expressions(self):
        text = pretty_multiline(transitive_closure_dcr(), width=40)
        assert "\n" in text

    def test_repr_uses_pretty(self):
        assert repr(ast.BoolConst(True)) == "true"


class TestParamSlotIdents:
    """``$``-namespace identifiers: prepared-template slots on the wire."""

    def test_dollar_ident_parses_as_var(self):
        e = parse("$src")
        assert isinstance(e, ast.Var) and e.name == "$src"

    def test_template_with_slot_round_trips(self):
        source = (
            r"(ext(\e:(D x D). if eq(pi1(e), $src) then {e}"
            r" else empty[(D x D)]))(edges)"
        )
        e = parse(source)
        assert pretty(parse(pretty(e))) == pretty(e)
        assert "$src" in pretty(e)

    def test_elaborated_query_template_round_trips(self):
        from repro.api import Q
        from repro.objects.types import ProdType

        schema = {"edges": SetType(ProdType(BASE, BASE))}
        el = (
            Q.coll("edges").fix().where(lambda r: r.fst == Q.param("src"))
        ).elaborate(schema)
        text = pretty(el.expr)
        assert "$src" in text
        assert pretty(parse(text)) == text
