"""Tests for the NRA reference interpreter."""

import pytest

from repro.objects.types import BASE, BOOL, SetType, parse_type
from repro.objects.values import (
    FALSE,
    TRUE,
    BoolVal,
    SetVal,
    UnitVal,
    base,
    boolean,
    from_python,
    mkset,
    pair,
    to_python,
)
from repro.nra.ast import (
    Apply,
    Bdcr,
    BlogLoop,
    BoolConst,
    Const,
    Dcr,
    EmptySet,
    Eq,
    Esr,
    Ext,
    ExternalCall,
    If,
    IsEmpty,
    Lambda,
    LogLoop,
    Loop,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Sri,
    Union,
    UnitConst,
    Var,
    lam2,
)
from repro.nra.errors import NRAEvalError
from repro.nra.eval import FunctionValue, evaluate, run
from repro.nra.externals import AGGREGATE_SIGMA, ARITH_SIGMA, ORDER_SIGMA


class TestCoreEvaluation:
    def test_constants(self):
        assert evaluate(BoolConst(True)) == TRUE
        assert evaluate(UnitConst()) == UnitVal()
        assert evaluate(Const(base(5), BASE)) == base(5)

    def test_set_constructors(self):
        assert evaluate(EmptySet(BASE)) == mkset()
        assert evaluate(Singleton(Const(base(1), BASE))) == from_python({1})
        u = Union(Singleton(Const(base(1), BASE)), Singleton(Const(base(2), BASE)))
        assert evaluate(u) == from_python({1, 2})

    def test_union_deduplicates(self):
        u = Union(Singleton(Const(base(1), BASE)), Singleton(Const(base(1), BASE)))
        assert len(evaluate(u)) == 1

    def test_pairs_and_projections(self):
        p = Pair(Const(base(1), BASE), BoolConst(False))
        assert evaluate(p) == pair(base(1), FALSE)
        assert evaluate(Proj1(p)) == base(1)
        assert evaluate(Proj2(p)) == FALSE

    def test_eq_structural(self):
        a = Const(from_python({1, 2}), parse_type("{D}"))
        b = Const(from_python({2, 1}), parse_type("{D}"))
        assert evaluate(Eq(a, b)) == TRUE

    def test_isempty(self):
        assert evaluate(IsEmpty(EmptySet(BASE))) == TRUE
        assert evaluate(IsEmpty(Singleton(BoolConst(True)))) == FALSE

    def test_if_branches(self):
        e = If(BoolConst(False), Const(base(1), BASE), Const(base(2), BASE))
        assert evaluate(e) == base(2)

    def test_variable_lookup(self):
        assert evaluate(Var("x"), {"x": base(9)}) == base(9)

    def test_unbound_variable_raises(self):
        with pytest.raises(NRAEvalError):
            evaluate(Var("nope"))

    def test_lambda_apply_beta(self):
        f = Lambda("x", BASE, Pair(Var("x"), Var("x")))
        assert evaluate(Apply(f, Const(base(3), BASE))) == pair(base(3), base(3))

    def test_closure_captures_environment(self):
        f = Lambda("x", BASE, Pair(Var("x"), Var("y")))
        fn = evaluate(f, {"y": base(7)})
        assert isinstance(fn, FunctionValue)
        assert fn(base(1)) == pair(base(1), base(7))

    def test_shadowing(self):
        inner = Lambda("x", BASE, Var("x"))
        outer = Lambda("x", BASE, Apply(inner, Const(base(2), BASE)))
        assert evaluate(Apply(outer, Const(base(1), BASE))) == base(2)

    def test_ext_maps_and_unions(self):
        double = Lambda("x", BASE, Singleton(Pair(Var("x"), Var("x"))))
        s = Const(from_python({1, 2}), SetType(BASE))
        result = evaluate(Apply(Ext(double), s))
        assert to_python(result) == frozenset({(1, 1), (2, 2)})

    def test_ext_on_empty_set(self):
        f = Lambda("x", BASE, Singleton(Var("x")))
        assert evaluate(Apply(Ext(f), EmptySet(BASE))) == mkset()

    def test_run_applies_argument(self):
        f = Lambda("x", BASE, Singleton(Var("x")))
        assert run(f, base(4)) == from_python({4})

    def test_run_rejects_unapplied_function(self):
        with pytest.raises(NRAEvalError):
            run(Lambda("x", BASE, Var("x")))


class TestExternals:
    def test_leq(self):
        e = ExternalCall("leq", Pair(Const(base(1), BASE), Const(base(2), BASE)))
        assert evaluate(e, sigma=ORDER_SIGMA) == TRUE

    def test_arithmetic(self):
        plus = ExternalCall("plus", Pair(Const(base(2), BASE), Const(base(3), BASE)))
        assert evaluate(plus, sigma=ARITH_SIGMA) == base(5)

    def test_aggregates(self):
        s = Const(from_python({1, 2, 3}), SetType(BASE))
        assert evaluate(ExternalCall("card", s), sigma=AGGREGATE_SIGMA) == base(3)
        assert evaluate(ExternalCall("sum", s), sigma=AGGREGATE_SIGMA) == base(6)
        assert evaluate(ExternalCall("max", s), sigma=AGGREGATE_SIGMA) == base(3)

    def test_unknown_external_raises(self):
        with pytest.raises(NRAEvalError):
            evaluate(ExternalCall("nope", UnitConst()), sigma=ORDER_SIGMA)


class TestRecursionEvaluation:
    def _sum_dcr(self):
        return Dcr(
            Const(base(0), BASE),
            Lambda("x", BASE, Var("x")),
            lam2("a", BASE, "b", BASE, ExternalCall("plus", Pair(Var("a"), Var("b")))),
        )

    def test_dcr_sum(self):
        q = self._sum_dcr()
        result = run(q, from_python({1, 2, 3, 4}), sigma=ARITH_SIGMA)
        assert result == base(10)

    def test_dcr_on_empty_set_gives_seed(self):
        q = self._sum_dcr()
        assert run(q, mkset(), sigma=ARITH_SIGMA) == base(0)

    def test_sri_collects_elements(self):
        q = Sri(
            EmptySet(BASE),
            lam2("x", BASE, "acc", SetType(BASE), Union(Singleton(Var("x")), Var("acc"))),
        )
        assert run(q, from_python({1, 2, 3})) == from_python({1, 2, 3})

    def test_esr_counts_with_arithmetic(self):
        q = Esr(
            Const(base(0), BASE),
            lam2("x", BASE, "acc", BASE,
                 ExternalCall("plus", Pair(Const(base(1), BASE), Var("acc")))),
        )
        assert run(q, from_python({10, 20, 30}), sigma=ARITH_SIGMA) == base(3)

    def test_bdcr_clips_to_bound(self):
        bound = Const(from_python({1, 2}), SetType(BASE))
        q = Bdcr(
            EmptySet(BASE),
            Lambda("x", BASE, Singleton(Var("x"))),
            lam2("a", SetType(BASE), "b", SetType(BASE), Union(Var("a"), Var("b"))),
            bound,
        )
        assert run(q, from_python({1, 2, 3, 4})) == from_python({1, 2})

    def test_recursion_applied_to_non_set_raises(self):
        with pytest.raises(NRAEvalError):
            run(self._sum_dcr(), base(1), sigma=ARITH_SIGMA)


class TestIteratorEvaluation:
    def test_loop_counts_cardinality(self):
        step = Lambda("x", BASE, ExternalCall("plus", Pair(Var("x"), Const(base(1), BASE))))
        q = Loop(step, BASE)
        arg = pair(from_python({10, 20, 30}), base(0))
        assert run(q, arg, sigma=ARITH_SIGMA) == base(3)

    def test_log_loop_counts_bits(self):
        step = Lambda("x", BASE, ExternalCall("plus", Pair(Var("x"), Const(base(1), BASE))))
        q = LogLoop(step, BASE)
        arg = pair(from_python(set(range(9))), base(0))
        assert run(q, arg, sigma=ARITH_SIGMA) == base(4)

    def test_blog_loop_clips(self):
        bound = Const(from_python({0, 1}), SetType(BASE))
        step = Lambda("s", SetType(BASE), Union(Var("s"), Const(from_python({0, 1, 2}), SetType(BASE))))
        q = BlogLoop(step, bound, BASE)
        arg = pair(from_python(set(range(4))), mkset())
        assert run(q, arg) == from_python({0, 1})

    def test_iterator_requires_pair_argument(self):
        step = Lambda("x", BASE, Var("x"))
        with pytest.raises(NRAEvalError):
            run(Loop(step, BASE), base(1))
