"""Tests for the parallel cost semantics, the nesting-depth analysis and the
derived relational operators."""

import pytest

from repro.objects.types import BASE, BOOL, ProdType, SetType, parse_type
from repro.objects.values import base, from_python, mkset, pair, to_python
from repro.nra.ast import (
    Apply,
    BoolConst,
    Const,
    Dcr,
    EmptySet,
    Lambda,
    LogLoop,
    Pair,
    Proj1,
    Singleton,
    Sri,
    Union,
    Var,
    lam2,
)
from repro.nra.cost import Cost, cost_run
from repro.nra.depth import ac_level, count_recursion_nodes, recursion_depth, within_depth
from repro.nra.derived import (
    bool_and,
    bool_not,
    bool_or,
    cartesian,
    compose,
    difference,
    flatten,
    intersection,
    member,
    nest,
    rel_proj1,
    rel_proj2,
    select,
    set_equal,
    smap,
    subset,
    unnest,
)
from repro.nra.eval import evaluate, run
from repro.relational.queries import (
    parity_dcr,
    parity_esr,
    tagged_boolean_set,
    transitive_closure_dcr,
    transitive_closure_logloop,
    transitive_closure_sri,
)


class TestCostModel:
    def test_cost_composition_rules(self):
        a, b = Cost(3, 2), Cost(5, 4)
        assert a.then(b) == Cost(8, 6)
        assert a.beside(b) == Cost(8, 4)
        assert a.step() == Cost(4, 3)

    def test_cost_value_agrees_with_interpreter(self):
        q = transitive_closure_dcr()
        rel = from_python({(1, 2), (2, 3), (3, 4)})
        value, _ = cost_run(q, rel)
        assert value == run(q, rel)

    def test_parity_dcr_depth_grows_logarithmically(self):
        q = parity_dcr()
        depths = []
        for n in (8, 64, 512):
            _, cost = cost_run(q, tagged_boolean_set([True] * n))
            depths.append(cost.depth)
        assert depths[1] - depths[0] == pytest.approx(depths[2] - depths[1], abs=3)
        assert depths[2] < 4 * depths[0]

    def test_parity_esr_depth_grows_linearly(self):
        q = parity_esr()
        _, c64 = cost_run(q, tagged_boolean_set([True] * 64))
        _, c128 = cost_run(q, tagged_boolean_set([True] * 128))
        assert c128.depth > 1.8 * c64.depth

    def test_dcr_depth_beats_sri_depth_on_same_input(self):
        rel = from_python({(i, i + 1) for i in range(12)})
        _, dcr_cost = cost_run(transitive_closure_dcr(), rel)
        _, sri_cost = cost_run(transitive_closure_sri(), rel)
        assert dcr_cost.depth < sri_cost.depth

    def test_ext_is_one_parallel_step(self):
        f = Lambda("x", BASE, Singleton(Var("x")))
        small = Const(from_python({1, 2}), SetType(BASE))
        large = Const(from_python(set(range(40))), SetType(BASE))
        _, c_small = cost_run(Apply(__import__("repro.nra.ast", fromlist=["Ext"]).Ext(f), small))
        _, c_large = cost_run(Apply(__import__("repro.nra.ast", fromlist=["Ext"]).Ext(f), large))
        # depth must not grow with the set size (work does)
        assert c_large.depth == c_small.depth
        assert c_large.work > c_small.work


class TestDepthAnalysis:
    def test_recursion_free_has_depth_zero(self):
        assert recursion_depth(Singleton(BoolConst(True))) == 0

    def test_single_dcr_has_depth_one(self):
        assert recursion_depth(transitive_closure_dcr()) == 1
        assert recursion_depth(transitive_closure_logloop()) == 1
        assert recursion_depth(parity_dcr()) == 1

    def test_only_combine_function_counts(self):
        # a dcr whose *item* function contains another dcr does not nest
        inner = Dcr(
            Const(base(0), BASE),
            Lambda("x", BASE, Var("x")),
            lam2("a", BASE, "b", BASE, Var("a")),
        )
        outer = Dcr(
            Const(base(0), BASE),
            Lambda("x", BASE, Apply(inner, Singleton(Var("x")))),
            lam2("a", BASE, "b", BASE, Var("a")),
        )
        assert recursion_depth(outer) == 1

    def test_nesting_in_combine_increases_depth(self):
        inner = Dcr(
            Const(base(0), BASE),
            Lambda("x", BASE, Var("x")),
            lam2("a", BASE, "b", BASE, Var("a")),
        )
        outer = Dcr(
            Const(base(0), BASE),
            Lambda("x", BASE, Var("x")),
            lam2("a", BASE, "b", BASE, Apply(inner, Singleton(Var("a")))),
        )
        assert recursion_depth(outer) == 2

    def test_nested_log_loops(self):
        step = Lambda("x", SetType(BASE), Var("x"))
        one = LogLoop(step, BASE)
        two = LogLoop(Lambda("y", SetType(BASE),
                             Apply(one, Pair(EmptySet(BASE), Var("y")))), BASE)
        assert recursion_depth(one) == 1
        assert recursion_depth(two) == 2

    def test_within_depth_and_ac_level(self):
        q = transitive_closure_dcr()
        assert within_depth(q, 1)
        assert not within_depth(q, 0)
        assert ac_level(q) == 1

    def test_count_recursion_nodes(self):
        assert count_recursion_nodes(transitive_closure_dcr()) == 1
        assert count_recursion_nodes(Singleton(BoolConst(True))) == 0


class TestDerivedOperators:
    S = Const(from_python({1, 2, 3}), SetType(BASE))
    T = Const(from_python({2, 3, 4}), SetType(BASE))

    def test_booleans(self):
        assert evaluate(bool_not(BoolConst(True))).value is False
        assert evaluate(bool_and(BoolConst(True), BoolConst(False))).value is False
        assert evaluate(bool_or(BoolConst(False), BoolConst(True))).value is True

    def test_intersection(self):
        assert to_python(evaluate(intersection(self.S, self.T, BASE))) == frozenset({2, 3})

    def test_difference(self):
        assert to_python(evaluate(difference(self.S, self.T, BASE))) == frozenset({1})

    def test_member(self):
        assert evaluate(member(Const(base(2), BASE), self.S, BASE)).value is True
        assert evaluate(member(Const(base(9), BASE), self.S, BASE)).value is False

    def test_cartesian(self):
        result = to_python(evaluate(cartesian(self.S, self.T, BASE, BASE)))
        assert len(result) == 9
        assert (1, 4) in result

    def test_select(self):
        pred = Lambda("x", BASE, member(Var("x"), self.T, BASE))
        assert to_python(evaluate(select(pred, self.S))) == frozenset({2, 3})

    def test_smap(self):
        f = Lambda("x", BASE, Pair(Var("x"), Var("x")))
        assert to_python(evaluate(smap(f, self.S))) == frozenset({(1, 1), (2, 2), (3, 3)})

    def test_flatten(self):
        ss = Const(from_python({frozenset({1, 2}), frozenset({3})}), parse_type("{{D}}"))
        assert to_python(evaluate(flatten(ss, BASE))) == frozenset({1, 2, 3})

    def test_projections(self):
        r = Const(from_python({(1, 10), (2, 20)}), parse_type("{D x D}"))
        assert to_python(evaluate(rel_proj1(r, BASE, BASE))) == frozenset({1, 2})
        assert to_python(evaluate(rel_proj2(r, BASE, BASE))) == frozenset({10, 20})

    def test_compose(self):
        r1 = Const(from_python({(1, 2), (2, 3)}), parse_type("{D x D}"))
        r2 = Const(from_python({(2, 5), (3, 6)}), parse_type("{D x D}"))
        assert to_python(evaluate(compose(r1, r2, BASE))) == frozenset({(1, 5), (2, 6)})

    def test_nest_groups_by_first_column(self):
        r = Const(from_python({(1, 10), (1, 11), (2, 20)}), parse_type("{D x D}"))
        nested = to_python(evaluate(nest(r, BASE, BASE)))
        assert (1, frozenset({10, 11})) in nested
        assert (2, frozenset({20})) in nested

    def test_unnest_inverts_nest(self):
        r = Const(from_python({(1, 10), (1, 11), (2, 20)}), parse_type("{D x D}"))
        roundtrip = evaluate(unnest(nest(r, BASE, BASE), BASE, BASE))
        assert roundtrip == evaluate(r)

    def test_subset_and_set_equal(self):
        small = Const(from_python({1, 2}), SetType(BASE))
        assert evaluate(subset(small, self.S, BASE)).value is True
        assert evaluate(subset(self.S, small, BASE)).value is False
        assert evaluate(set_equal(self.S, self.S, BASE)).value is True
        assert evaluate(set_equal(self.S, self.T, BASE)).value is False
