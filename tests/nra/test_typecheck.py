"""Tests for NRA type inference and the language-restriction predicates."""

import pytest

from repro.objects.types import BASE, BOOL, UNIT, ProdType, SetType, parse_type
from repro.objects.values import base, from_python
from repro.nra.ast import (
    Apply,
    Bdcr,
    BoolConst,
    Const,
    Dcr,
    EmptySet,
    Eq,
    Ext,
    ExternalCall,
    If,
    IsEmpty,
    Lambda,
    LogLoop,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Sri,
    Union,
    UnitConst,
    Var,
    lam2,
)
from repro.nra.errors import NRATypeError
from repro.nra.externals import AGGREGATE_SIGMA, ORDER_SIGMA
from repro.nra.typecheck import (
    FunType,
    externals_used,
    in_nra1,
    infer,
    recursion_free,
    uses_only_bounded_recursion,
)
from repro.relational.queries import parity_dcr, transitive_closure_dcr, transitive_closure_sri


class TestCoreTyping:
    def test_constants(self):
        assert infer(BoolConst(True)) == BOOL
        assert infer(UnitConst()) == UNIT
        assert infer(Const(base(3), BASE)) == BASE

    def test_const_type_mismatch(self):
        with pytest.raises(NRATypeError):
            infer(Const(base(3), BOOL))

    def test_empty_and_singleton(self):
        assert infer(EmptySet(BASE)) == SetType(BASE)
        assert infer(Singleton(BoolConst(True))) == SetType(BOOL)

    def test_union_same_type(self):
        e = Union(Singleton(Const(base(1), BASE)), EmptySet(BASE))
        assert infer(e) == SetType(BASE)

    def test_union_mismatch_rejected(self):
        with pytest.raises(NRATypeError):
            infer(Union(Singleton(BoolConst(True)), EmptySet(BASE)))

    def test_union_of_non_sets_rejected(self):
        with pytest.raises(NRATypeError):
            infer(Union(BoolConst(True), BoolConst(False)))

    def test_pair_and_projections(self):
        p = Pair(Const(base(1), BASE), BoolConst(True))
        assert infer(p) == ProdType(BASE, BOOL)
        assert infer(Proj1(p)) == BASE
        assert infer(Proj2(p)) == BOOL

    def test_projection_of_non_pair_rejected(self):
        with pytest.raises(NRATypeError):
            infer(Proj1(BoolConst(True)))

    def test_eq_requires_same_types(self):
        assert infer(Eq(Const(base(1), BASE), Const(base(2), BASE))) == BOOL
        with pytest.raises(NRATypeError):
            infer(Eq(Const(base(1), BASE), BoolConst(True)))

    def test_isempty(self):
        assert infer(IsEmpty(EmptySet(BASE))) == BOOL
        with pytest.raises(NRATypeError):
            infer(IsEmpty(BoolConst(True)))

    def test_if_branches_must_agree(self):
        good = If(BoolConst(True), Const(base(1), BASE), Const(base(2), BASE))
        assert infer(good) == BASE
        with pytest.raises(NRATypeError):
            infer(If(BoolConst(True), Const(base(1), BASE), BoolConst(False)))

    def test_if_condition_must_be_bool(self):
        with pytest.raises(NRATypeError):
            infer(If(Const(base(1), BASE), BoolConst(True), BoolConst(False)))

    def test_unbound_variable(self):
        with pytest.raises(NRATypeError):
            infer(Var("x"))

    def test_variable_from_env(self):
        assert infer(Var("x"), {"x": BASE}) == BASE

    def test_lambda_and_apply(self):
        f = Lambda("x", BASE, Singleton(Var("x")))
        assert infer(f) == FunType(BASE, SetType(BASE))
        assert infer(Apply(f, Const(base(1), BASE))) == SetType(BASE)

    def test_apply_argument_mismatch(self):
        f = Lambda("x", BASE, Var("x"))
        with pytest.raises(NRATypeError):
            infer(Apply(f, BoolConst(True)))

    def test_apply_non_function(self):
        with pytest.raises(NRATypeError):
            infer(Apply(BoolConst(True), BoolConst(False)))

    def test_ext_typing(self):
        f = Lambda("x", BASE, Singleton(Var("x")))
        assert infer(Ext(f)) == FunType(SetType(BASE), SetType(BASE))

    def test_ext_requires_set_result(self):
        f = Lambda("x", BASE, Var("x"))
        with pytest.raises(NRATypeError):
            infer(Ext(f))

    def test_external_call(self):
        call = ExternalCall("leq", Pair(Const(base(1), BASE), Const(base(2), BASE)))
        assert infer(call, sigma=ORDER_SIGMA) == BOOL

    def test_external_argument_type_checked(self):
        with pytest.raises(NRATypeError):
            infer(ExternalCall("leq", BoolConst(True)), sigma=ORDER_SIGMA)

    def test_polymorphic_external(self):
        call = ExternalCall("card", Singleton(Const(base(1), BASE)))
        assert infer(call, sigma=AGGREGATE_SIGMA) == BASE


class TestRecursionTyping:
    def test_dcr_function_type(self):
        q = transitive_closure_dcr()
        t = infer(q)
        assert t == FunType(parse_type("{D x D}"), parse_type("{D x D}"))

    def test_parity_type(self):
        assert infer(parity_dcr()) == FunType(parse_type("{D x B}"), BOOL)

    def test_dcr_combine_must_take_pairs(self):
        bad = Dcr(BoolConst(False), Lambda("x", BASE, BoolConst(True)),
                  Lambda("y", BOOL, Var("y")))
        with pytest.raises(NRATypeError):
            infer(bad)

    def test_dcr_item_result_must_match_seed(self):
        bad = Dcr(BoolConst(False), Lambda("x", BASE, Const(base(1), BASE)),
                  lam2("a", BOOL, "b", BOOL, Var("a")))
        with pytest.raises(NRATypeError):
            infer(bad)

    def test_bdcr_requires_ps_type(self):
        bad = Bdcr(
            BoolConst(False),
            Lambda("x", BASE, BoolConst(True)),
            lam2("a", BOOL, "b", BOOL, Var("a")),
            BoolConst(True),
        )
        with pytest.raises(NRATypeError):
            infer(bad)

    def test_bdcr_at_set_type_accepted(self):
        q = Bdcr(
            EmptySet(BASE),
            Lambda("x", BASE, Singleton(Var("x"))),
            lam2("a", SetType(BASE), "b", SetType(BASE), Union(Var("a"), Var("b"))),
            Const(from_python({1, 2, 3}), SetType(BASE)),
        )
        assert infer(q) == FunType(SetType(BASE), SetType(BASE))

    def test_sri_insert_shape(self):
        q = Sri(EmptySet(BASE), lam2("x", BASE, "acc", SetType(BASE),
                                     Union(Singleton(Var("x")), Var("acc"))))
        assert infer(q) == FunType(SetType(BASE), SetType(BASE))

    def test_logloop_step_must_be_endofunction(self):
        bad = LogLoop(Lambda("x", BASE, Singleton(Var("x"))), BASE)
        with pytest.raises(NRATypeError):
            infer(bad)

    def test_logloop_type(self):
        step = Lambda("x", SetType(BASE), Var("x"))
        t = infer(LogLoop(step, BOOL))
        assert t == FunType(ProdType(SetType(BOOL), SetType(BASE)), SetType(BASE))


class TestRestrictions:
    def test_tc_queries_are_nra1(self):
        assert in_nra1(transitive_closure_dcr())
        assert in_nra1(transitive_closure_sri())

    def test_nested_type_escapes_nra1(self):
        nested = Singleton(Singleton(Const(base(1), BASE)))
        assert not in_nra1(nested)

    def test_bounded_only_detection(self):
        assert not uses_only_bounded_recursion(transitive_closure_dcr())
        q = Bdcr(
            EmptySet(BASE),
            Lambda("x", BASE, Singleton(Var("x"))),
            lam2("a", SetType(BASE), "b", SetType(BASE), Union(Var("a"), Var("b"))),
            EmptySet(BASE),
        )
        assert uses_only_bounded_recursion(q)

    def test_recursion_free(self):
        assert recursion_free(Singleton(BoolConst(True)))
        assert not recursion_free(transitive_closure_dcr())

    def test_externals_used(self):
        call = ExternalCall("leq", Pair(Const(base(1), BASE), Const(base(2), BASE)))
        assert externals_used(call) == frozenset({"leq"})
        assert externals_used(parity_dcr()) == frozenset()
