"""Bounded recursion on sets: ``bdcr`` and ``bsri`` (Section 2).

Over complex objects, unrestricted ``dcr`` (and even ``sru``) can express
``powerset``, which takes the language out of NC.  The paper's fix -- in the
spirit of Buneman's bounded fixpoints [34] -- is to intersect the result with
a *bounding set* at every recursion step.  Bounding only makes sense at
**PS-types** (products of set types), where "intersect" means componentwise
set intersection.

Definitions (Section 2)::

    bdcr(e, f, u, b) = dcr(e n b, f n b, u n b)
    bsri(e, i, b)    = sri(e n b, i n b)

where ``(u n b)(y, y') = u(y, y') n b`` etc., and ``n`` is the PS-type
intersection implemented here by :func:`ps_intersect`.

Over flat relations the explicit bound is unnecessary (Proposition 2.2): the
result of a flat ``dcr`` is already contained in a polynomially-bounded set
definable in the relational algebra, which is why the flat language of
Theorem 6.2 uses plain ``dcr``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..objects.types import ProdType, SetType, Type, is_ps_type
from ..objects.values import PairVal, SetVal, Value
from .forms import Binary, EvaluationTrace, Insert, Unary, dcr, sri


class BoundingError(TypeError):
    """Raised when bounding is attempted at a type that is not a PS-type."""


def ps_intersect(v: Value, bound: Value, t: Type) -> Value:
    """Componentwise intersection of two values of the PS-type ``t``.

    At a set type this is ordinary set intersection; at a product of PS-types
    it intersects the components pairwise.  Raises :class:`BoundingError` if
    ``t`` is not a PS-type or the values do not match its shape.
    """
    if isinstance(t, SetType):
        if not isinstance(v, SetVal) or not isinstance(bound, SetVal):
            raise BoundingError(
                f"PS-intersection at {t!r} expects set values, got {v!r} and {bound!r}"
            )
        return v.intersection(bound)
    if isinstance(t, ProdType):
        if not isinstance(v, PairVal) or not isinstance(bound, PairVal):
            raise BoundingError(
                f"PS-intersection at {t!r} expects pair values, got {v!r} and {bound!r}"
            )
        return PairVal(
            ps_intersect(v.fst, bound.fst, t.fst),
            ps_intersect(v.snd, bound.snd, t.snd),
        )
    raise BoundingError(f"{t!r} is not a PS-type; bounded recursion is undefined at it")


def require_ps_type(t: Type) -> None:
    """Raise :class:`BoundingError` unless ``t`` is a PS-type."""
    if not is_ps_type(t):
        raise BoundingError(f"bounded recursion requires a PS-type result, got {t!r}")


def ps_intersect_values(v: Value, bound: Value) -> Value:
    """Value-directed PS-intersection: the shape of ``bound`` drives the recursion.

    Sets are intersected, pairs are intersected componentwise; any other shape
    is rejected.  This is the runtime counterpart of :func:`ps_intersect` used
    by the NRA evaluator, where the PS-type is implicit in the bound value
    produced by the (already type-checked) bound expression.
    """
    if isinstance(bound, SetVal):
        if not isinstance(v, SetVal):
            raise BoundingError(f"cannot intersect {v!r} with set bound {bound!r}")
        return v.intersection(bound)
    if isinstance(bound, PairVal):
        if not isinstance(v, PairVal):
            raise BoundingError(f"cannot intersect {v!r} with pair bound {bound!r}")
        return PairVal(
            ps_intersect_values(v.fst, bound.fst),
            ps_intersect_values(v.snd, bound.snd),
        )
    raise BoundingError(f"bound {bound!r} is not a value of a PS-type")


def bdcr(
    e: Value,
    f: Unary,
    u: Binary,
    b: Value,
    result_type: Type,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded divide and conquer recursion ``bdcr(e, f, u, b)(s)``.

    Every intermediate value -- the seed, each ``f(x)``, and each combination
    ``u(y, y')`` -- is intersected with the bound ``b`` at the PS-type
    ``result_type``.  Because the bound has polynomial size in the input, all
    intermediate values stay polynomially bounded, which is what keeps the
    construct inside NC over complex objects (Theorem 6.1).
    """
    require_ps_type(result_type)

    def f_bounded(x: Value) -> Value:
        return ps_intersect(f(x), b, result_type)

    def u_bounded(y1: Value, y2: Value) -> Value:
        return ps_intersect(u(y1, y2), b, result_type)

    seed = ps_intersect(e, b, result_type)
    return dcr(seed, f_bounded, u_bounded, s, trace)


def bsri(
    e: Value,
    i: Insert,
    b: Value,
    result_type: Type,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded structural recursion on the insert presentation.

    ``bsri(e, i, b) = sri(e n b, i n b)`` with the intersection taken at the
    PS-type ``result_type``.  This is the bounded element-by-element recursion
    that captures PTIME over ordered complex-object databases
    (Proposition 6.6).
    """
    require_ps_type(result_type)

    def i_bounded(x: Value, acc: Value) -> Value:
        return ps_intersect(i(x, acc), b, result_type)

    seed = ps_intersect(e, b, result_type)
    return sri(seed, i_bounded, s, trace)


def make_bound(values: SetVal) -> SetVal:
    """Convenience: use an explicit set of candidate values as a bound."""
    return values


def powerset_via_dcr(s: SetVal) -> SetVal:
    """The powerset of a set, expressed with *unbounded* ``dcr``.

    This is the paper's motivating example for why bounding is necessary over
    complex objects: ``powerset`` is expressible with ``dcr`` (indeed with
    ``sru``) but has exponential output size, so no language containing it can
    sit inside NC.  Take ``e = {{}}``, ``f(x) = {{}, {x}}`` and
    ``u(P1, P2) = { p1 U p2 | p1 in P1, p2 in P2 }``.
    """
    from ..objects.values import mkset, singleton

    e = singleton(mkset())

    def f(x: Value) -> Value:
        return mkset([mkset(), singleton(x)])

    def u(p1: Value, p2: Value) -> Value:
        assert isinstance(p1, SetVal) and isinstance(p2, SetVal)
        return mkset(a.union(b) for a in p1 for b in p2
                     if isinstance(a, SetVal) and isinstance(b, SetVal))

    result = dcr(e, f, u, s)
    assert isinstance(result, SetVal)
    return result
