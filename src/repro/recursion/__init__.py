"""Recursion on sets: the paper's Section 2 as executable combinators.

* :mod:`repro.recursion.forms` -- ``dcr``, ``sru``, ``sri``, ``esr`` with
  work/depth tracing;
* :mod:`repro.recursion.bounded` -- ``bdcr``, ``bsri`` and PS-type bounding
  (plus the ``powerset``-via-``dcr`` cautionary example);
* :mod:`repro.recursion.iterators` -- ``loop``, ``log_loop`` and their bounded
  versions (Section 7.1);
* :mod:`repro.recursion.translations` -- the constructive simulations behind
  Propositions 2.1, 2.2 and 7.3 and the ordered recursions of [23];
* :mod:`repro.recursion.algebraic` -- finite-carrier checking of the algebraic
  preconditions, and the undecidability gadget.
"""

from .forms import EvaluationTrace, dcr, esr, sri, sru
from .bounded import BoundingError, bdcr, bsri, powerset_via_dcr, ps_intersect
from .iterators import (
    blog_loop,
    bloop,
    iterate,
    iteration_count,
    log_iterations,
    log_loop,
    loop,
    nested_log_loop,
)
from .translations import (
    dcr_via_bdcr_flat,
    dcr_via_esr,
    dcr_via_log_loop,
    dcr_via_sri,
    esr_via_sri,
    flat_bound,
    log_loop_via_dcr,
    loop_via_esr,
    ordered_dcr,
    set_reduce,
    simulation_dcr_instance,
    sri_via_loop,
    sru_via_sri,
)
from .algebraic import (
    WellDefinednessReport,
    carrier_closure,
    check_dcr_preconditions,
    check_sri_preconditions,
    conditional_operation,
    difference_op,
    has_identity,
    is_associative,
    is_commutative,
    is_i_commutative,
    is_i_idempotent,
    is_idempotent,
    union_op,
)

__all__ = [
    "EvaluationTrace", "dcr", "sru", "sri", "esr",
    "bdcr", "bsri", "ps_intersect", "BoundingError", "powerset_via_dcr",
    "loop", "log_loop", "bloop", "blog_loop", "iterate", "log_iterations",
    "nested_log_loop", "iteration_count",
    "dcr_via_esr", "esr_via_sri", "sru_via_sri", "dcr_via_sri",
    "flat_bound", "dcr_via_bdcr_flat",
    "dcr_via_log_loop", "log_loop_via_dcr", "simulation_dcr_instance",
    "loop_via_esr", "sri_via_loop", "set_reduce", "ordered_dcr",
    "WellDefinednessReport", "check_dcr_preconditions", "check_sri_preconditions",
    "carrier_closure", "is_associative", "is_commutative", "has_identity",
    "is_idempotent", "is_i_commutative", "is_i_idempotent",
    "conditional_operation", "union_op", "difference_op",
]
