"""Constructive translations between the forms of recursion on sets.

This module implements, as executable code, the simulations the paper uses in
its expressiveness results:

* **Proposition 2.1** -- ``sri`` can express ``sru``; ``esr`` can express
  ``dcr``; ``sri`` can express ``esr``; all with at most polynomial overhead:

  - :func:`dcr_via_esr` realises ``dcr(e, f, u) = esr(e, (x, y) -> u(f(x), y))``;
  - :func:`esr_via_sri` realises
    ``esr(e, i) = snd . sri((emptyset, e), (x, (s, y)) -> if x in s then (s, y)
    else (insert x s, i(x, y)))``;
  - :func:`sru_via_sri` is the homomorphic special case.

* **Proposition 2.2** -- over flat relations the explicit bound of ``bdcr`` is
  unnecessary: :func:`flat_bound` constructs, inside the relational algebra,
  a polynomially-sized bounding set from the active domain, and
  :func:`dcr_via_bdcr_flat` runs ``bdcr`` with that bound and reproduces the
  unbounded ``dcr``.

* **Proposition 7.3** -- over ordered databases ``dcr`` and ``log_loop`` have
  the same expressive power (and similarly ``sri`` and ``loop``):

  - :func:`dcr_via_log_loop` simulates ``dcr`` by first mapping ``f`` over the
    set in one parallel step and then iterating, ``ceil(log n)`` times, the
    "pair up adjacent results and combine" step of the paper's proof;
  - :func:`log_loop_via_dcr` simulates ``log_loop`` by a ``dcr`` whose carrier
    is the set of pairs ``(i, f^(bits(i))(y))`` -- the combining operation
    adds the counts and recomputes the iterate, which is associative and
    commutative on that carrier by construction (this is the *decidable
    sublanguage* of ``dcr`` the paper points out);
  - :func:`loop_via_esr` and :func:`sri_via_loop` relate the linear iterator
    and the insert recursions the same way.

* **Section 2 (ordered forms of [23])** -- :func:`set_reduce` (ordered
  element-by-element reduction with *no* conditions on the step function) and
  :func:`ordered_dcr` (ordered divide and conquer with no conditions on the
  combiner), which in the presence of order have the same power as ``sri`` and
  ``dcr`` respectively.

Each translation is tested (in ``tests/recursion``) for extensional equality
against the direct combinator on randomly generated well-behaved instances,
and the benchmarks of experiment E3/E4 measure the promised polynomial
overhead.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..objects.types import ProdType, SetType, Type, is_ps_type
from ..objects.values import (
    Atom,
    BaseVal,
    BoolVal,
    PairVal,
    SetVal,
    UnitVal,
    Value,
    mkset,
    singleton,
)
from .bounded import bdcr
from .forms import Binary, EvaluationTrace, Insert, Unary, dcr, esr, sri
from .iterators import Step, iterate, log_iterations, log_loop, loop


# ---------------------------------------------------------------------------
# Proposition 2.1: dcr -> esr -> sri
# ---------------------------------------------------------------------------

def dcr_via_esr(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Express ``dcr(e, f, u)`` through element-step recursion.

    ``dcr(e, f, u) = esr(e, (x, y) -> u(f(x), y))``: instead of combining the
    results of two halves, each element's contribution ``f(x)`` is folded into
    the accumulator one at a time.  Extensionally equal to ``dcr`` whenever the
    ``dcr`` preconditions hold, but the dependent-application depth becomes
    linear -- which is exactly the PTIME-versus-NC contrast the paper draws.
    """

    def i(x: Value, y: Value) -> Value:
        return u(f(x), y)

    return esr(e, i, s, trace)


def esr_via_sri(
    e: Value,
    i: Insert,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Express ``esr(e, i)`` through ``sri`` (Proposition 2.1).

    The accumulator is a pair ``(seen, acc)`` of the set of elements already
    inserted and the running result; the step function ignores elements it has
    already seen, which makes it i-idempotent even when ``i`` is not.
    """

    def step(x: Value, state: Value) -> Value:
        assert isinstance(state, PairVal)
        seen, acc = state.fst, state.snd
        assert isinstance(seen, SetVal)
        if x in seen:
            return state
        return PairVal(seen.union(singleton(x)), i(x, acc))

    initial = PairVal(mkset(), e)
    result = sri(initial, step, s, trace)
    assert isinstance(result, PairVal)
    return result.snd


def sru_via_sri(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Express ``sru(e, f, u)`` through ``sri`` ([6], cited in Proposition 2.1).

    ``sru(e, f, u) = sri(e, (x, y) -> u(f(x), y))``; i-idempotence of the step
    follows from idempotence of ``u``.
    """

    def i(x: Value, y: Value) -> Value:
        return u(f(x), y)

    return sri(e, i, s, trace)


def dcr_via_sri(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """The composite translation ``dcr -> esr -> sri`` of Proposition 2.1."""

    def i(x: Value, y: Value) -> Value:
        return u(f(x), y)

    return esr_via_sri(e, i, s, trace)


# ---------------------------------------------------------------------------
# Proposition 2.2: dcr through bdcr over flat relations
# ---------------------------------------------------------------------------

def flat_bound(result_type: Type, atoms: Iterable[Atom]) -> Value:
    """Build the bounding set used to express flat ``dcr`` through ``bdcr``.

    For a flat PS-type, the value of a ``dcr`` whose arguments are flat
    relations over a given active domain is always contained in the "full"
    relation over that domain: the set of *all* tuples built from the active
    domain, the booleans and the unit value.  That full relation has
    polynomial size and is definable in the relational algebra (by cartesian
    products of the active domain), which is the content of Proposition 2.2.
    """
    if isinstance(result_type, SetType):
        return mkset(_all_records(result_type.elem, tuple(atoms)))
    if isinstance(result_type, ProdType):
        return PairVal(
            flat_bound(result_type.fst, atoms),
            flat_bound(result_type.snd, atoms),
        )
    raise TypeError(f"flat_bound requires a flat PS-type, got {result_type!r}")


def _all_records(t: Type, atoms: tuple[Atom, ...]) -> list[Value]:
    from ..objects.types import BaseType, BoolType, UnitType

    if isinstance(t, BaseType):
        return [BaseVal(a) for a in atoms]
    if isinstance(t, BoolType):
        return [BoolVal(False), BoolVal(True)]
    if isinstance(t, UnitType):
        return [UnitVal()]
    if isinstance(t, ProdType):
        return [
            PairVal(a, b)
            for a in _all_records(t.fst, atoms)
            for b in _all_records(t.snd, atoms)
        ]
    raise TypeError(f"flat record type expected inside a flat bound, got {t!r}")


def dcr_via_bdcr_flat(
    e: Value,
    f: Unary,
    u: Binary,
    result_type: Type,
    atoms: Iterable[Atom],
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Express flat ``dcr`` through ``bdcr`` with the active-domain bound.

    Correct whenever every intermediate value of the ``dcr`` is a flat
    relation over the given atoms (which is the situation of Proposition 2.2:
    arguments are flat relations, values have flat PS-type).
    """
    bound = flat_bound(result_type, atoms)
    return bdcr(e, f, u, bound, result_type, s, trace)


# ---------------------------------------------------------------------------
# Proposition 7.3: dcr <-> log_loop over ordered sets
# ---------------------------------------------------------------------------

def dcr_via_log_loop(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Simulate ``dcr(e, f, u)(s)`` with a logarithmic iterator.

    Following the proof of Proposition 7.3: first apply ``f`` to every element
    of ``s`` in one parallel step, obtaining the sequence ``y = [f(a1), ...,
    f(an)]`` ordered by the lifted order on ``s``; then iterate, ``ceil(log(n+1))``
    times, the step that combines adjacent pairs ``u(b1, b2), u(b3, b4), ...``
    (padding with ``e`` when the length is odd).  After the iterations the
    sequence has collapsed to a single element, which equals the value of the
    ``dcr`` by associativity and commutativity of ``u``.

    The intermediate "sequence tagged by position" of the paper (needed there
    to stay within the object language) is represented here directly as a
    Python list; the NRA-level version of the same simulation is exercised by
    the circuit compiler.
    """
    elems = s.elements
    if not elems:
        return e
    if trace is not None:
        trace.record("f", count=len(elems))
        trace.depth += 1
    current: list[Value] = [f(a) for a in elems]
    rounds = log_iterations(len(elems))
    for _ in range(rounds):
        if len(current) == 1:
            break
        nxt: list[Value] = []
        for j in range(0, len(current) - 1, 2):
            if trace is not None:
                trace.record("u")
            nxt.append(u(current[j], current[j + 1]))
        if len(current) % 2 == 1:
            if trace is not None:
                trace.record("u")
            nxt.append(u(current[-1], e))
        if trace is not None:
            trace.depth += 1
            trace.combine_rounds += 1
        current = nxt
    if len(current) != 1:
        raise AssertionError("pairing iteration did not converge to a single value")
    return current[0]


def log_loop_via_dcr(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Simulate ``log_loop(f)(x, y)`` with a divide and conquer recursion.

    The carrier of the ``dcr`` is the set ``{(i, f^(bits(i))(y)) | 0 <= i <= |x|}``
    where ``bits(i) = ceil(log2(i+1))`` is the number of bits of ``i``.  The
    combining operation adds the counts and recomputes the corresponding
    iterate of ``f``::

        e           = (0, y)
        f_elem(a)   = (1, f(y))
        u((i, _), (j, _)) = (i + j, f^(bits(i+j))(y))

    On that carrier ``u`` is associative and commutative with identity ``e``
    **by construction** -- this is the family of ``dcr`` instances that forms
    the decidable sublanguage mentioned after Proposition 7.3.  The repeated
    recomputation of ``f``-iterates costs only a polynomial factor, as the
    proposition allows.
    """

    def pack(i: int, v: Value) -> Value:
        return PairVal(BaseVal(i), v)

    def unpack(p: Value) -> tuple[int, Value]:
        assert isinstance(p, PairVal) and isinstance(p.fst, BaseVal)
        count = p.fst.value
        assert isinstance(count, int)
        return count, p.snd

    def iterate_to(count: int) -> Value:
        return iterate(f, y, log_iterations(count), trace)

    e = pack(0, y)

    def f_elem(_: Value) -> Value:
        return pack(1, iterate_to(1))

    def u(p1: Value, p2: Value) -> Value:
        i, _ = unpack(p1)
        j, _ = unpack(p2)
        return pack(i + j, iterate_to(i + j))

    result = dcr(e, f_elem, u, x, trace)
    _, value = unpack(result)
    return value


def simulation_dcr_instance(f: Step, y: Value) -> tuple[Value, Unary, Binary]:
    """The ``(e, f_elem, u)`` triple used by :func:`log_loop_via_dcr`.

    Exposed separately so the algebraic checker can verify -- as the paper
    asserts -- that this family of instances always satisfies the ``dcr``
    preconditions, giving a decidable (indeed recursive) sublanguage with the
    full expressive power of ``NRA1(dcr, <=)``.
    """

    def pack(i: int, v: Value) -> Value:
        return PairVal(BaseVal(i), v)

    e = pack(0, y)

    def f_elem(_: Value) -> Value:
        return pack(1, iterate(f, y, log_iterations(1)))

    def u(p1: Value, p2: Value) -> Value:
        assert isinstance(p1, PairVal) and isinstance(p1.fst, BaseVal)
        assert isinstance(p2, PairVal) and isinstance(p2.fst, BaseVal)
        i = p1.fst.value
        j = p2.fst.value
        assert isinstance(i, int) and isinstance(j, int)
        return pack(i + j, iterate(f, y, log_iterations(i + j)))

    return e, f_elem, u


# ---------------------------------------------------------------------------
# loop <-> sri / esr (the "similar relationship" of Proposition 7.3)
# ---------------------------------------------------------------------------

def loop_via_esr(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Simulate ``loop(f)(x, y)`` by an element-step recursion over ``x``.

    The accumulator counts how many elements have been consumed and keeps the
    corresponding iterate of ``f``; each insertion applies ``f`` once more.
    """

    def step(_: Value, state: Value) -> Value:
        assert isinstance(state, PairVal) and isinstance(state.fst, BaseVal)
        count = state.fst.value
        assert isinstance(count, int)
        if trace is not None:
            trace.record("step")
        return PairVal(BaseVal(count + 1), f(state.snd))

    result = esr(PairVal(BaseVal(0), y), step, x, trace)
    assert isinstance(result, PairVal)
    return result.snd


def sri_via_loop(
    e: Value,
    i: Insert,
    x: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Simulate ``sri(e, i)(x)`` by iterating ``|x|`` times.

    The loop state is the number of elements already folded in together with
    the partial result; step ``k`` folds in the ``k``-th largest element, so
    after ``|x|`` iterations the result equals ``sri(e, i)(x)`` evaluated in
    decreasing order -- the order :func:`repro.recursion.forms.sri` itself
    uses.
    """
    elems = x.elements

    def step(state: Value) -> Value:
        assert isinstance(state, PairVal) and isinstance(state.fst, BaseVal)
        k = state.fst.value
        assert isinstance(k, int)
        if k >= len(elems):
            return state
        element = elems[len(elems) - 1 - k]
        return PairVal(BaseVal(k + 1), i(element, state.snd))

    result = loop(step, x, PairVal(BaseVal(0), e), trace)
    assert isinstance(result, PairVal)
    return result.snd


# ---------------------------------------------------------------------------
# The order-based recursions of Immerman, Patnaik and Stemple [23]
# ---------------------------------------------------------------------------

def set_reduce(
    i: Insert,
    e: Value,
    x: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Ordered set-reduce: ``f({x1, ..., xn}) = i(x1, f({x2, ..., xn}))``.

    The elements are consumed in increasing order ``x1 < x2 < ... < xn`` and
    **no algebraic conditions** are imposed on ``i`` -- well-definedness comes
    from the order, not from identities.  In the presence of order this has
    the same expressive power as ``sri`` (Section 2), and one level of it
    captures PTIME (Proposition 6.6, after [23]).
    """
    acc = e
    for element in reversed(x.elements):
        if trace is not None:
            trace.record("i")
            trace.depth += 1
        acc = i(element, acc)
    return acc


def ordered_dcr(
    u: Binary,
    f: Unary,
    e: Value,
    x: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Ordered divide and conquer: split at the median of the order.

    ``f({x1, ..., xn}) = u(f({x1, ..., x_(n/2)}), f({x_(n/2+1), ..., xn}))``
    with no conditions imposed on ``u``; the linear order makes the split --
    and hence the result -- canonical.  In the presence of order this has the
    same expressive power as ``dcr`` (Section 2).
    """

    def go(elems: Sequence[Value], depth: int) -> tuple[Value, int]:
        if not elems:
            return e, depth
        if len(elems) == 1:
            if trace is not None:
                trace.record("f")
            return f(elems[0]), depth + 1
        mid = len(elems) // 2
        left, dl = go(elems[:mid], depth)
        right, dr = go(elems[mid:], depth)
        if trace is not None:
            trace.record("u")
        return u(left, right), max(dl, dr) + 1

    result, depth = go(x.elements, 0)
    if trace is not None:
        trace.depth = max(trace.depth, depth)
    return result
