"""The four forms of recursion on finite sets (Sections 1 and 2).

The paper contrasts two presentations of finite sets and, for each, a
structural recursion and a relaxed ("non-homomorphic") variant:

===============  ==========================  =================================
presentation     structural recursion        relaxed variant
===============  ==========================  =================================
union            ``sru(e, f, u)``            ``dcr(e, f, u)`` (divide & conquer)
insert           ``sri(e, i)``               ``esr(e, i)`` (element step)
===============  ==========================  =================================

* ``sru(e, f, u)`` requires ``u`` associative, commutative, **idempotent**
  with identity ``e`` on a carrier containing ``e`` and the range of ``f``.
* ``dcr(e, f, u)`` drops idempotence: the set is split into *disjoint* parts,
  so ``u`` only needs to be associative and commutative with identity ``e``.
  This is the paper's central construct: its evaluation is a balanced
  combining tree of depth ``ceil(log2 n)``, which is what puts it in NC.
* ``sri(e, i)`` requires ``i`` i-commutative and i-idempotent; it consumes the
  set one element at a time (depth ``n``), and over ordered databases it
  captures PTIME (Proposition 6.6).
* ``esr(e, i)`` drops i-idempotence (each element is inserted exactly once).

All four are provided as higher-order functions over
:class:`repro.objects.values.SetVal`.  The parameter functions ``f``, ``u``
and ``i`` are ordinary Python callables on :class:`Value`; the combinators are
deterministic because canonical sets fix the enumeration order and ``dcr`` /
``sru`` always split a set into its first and second sorted halves.  When the
algebraic preconditions genuinely hold, the result does not depend on these
choices -- which is exactly what the property-based tests check.

Every combinator optionally records an :class:`EvaluationTrace` exposing the
*work* (number of applications of the parameter operations) and the *depth*
(length of the critical path of dependent applications).  The trace is how the
benchmarks measure the Theta(log n) versus Theta(n) contrast between ``dcr``
and ``sri`` without pretending to run real parallel hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..objects.values import SetVal, Value

#: A unary parameter function (the ``f`` of ``dcr``/``sru``).
Unary = Callable[[Value], Value]
#: A binary combining function (the ``u`` of ``dcr``/``sru``).
Binary = Callable[[Value, Value], Value]
#: An insertion function (the ``i`` of ``sri``/``esr``).
Insert = Callable[[Value, Value], Value]


@dataclass
class EvaluationTrace:
    """Work/depth accounting for one run of a recursion combinator.

    ``work`` counts every application of the parameter functions (``f``, ``u``
    or ``i``); ``depth`` is the length of the longest chain of applications
    where each depends on the result of the previous one -- the parallel time
    under the PRAM reading of the combinator.  ``combine_rounds`` counts, for
    the divide-and-conquer forms, the number of levels of the combining tree.
    """

    work: int = 0
    depth: int = 0
    combine_rounds: int = 0
    applications: list[str] = field(default_factory=list, repr=False)

    def record(self, label: str, count: int = 1) -> None:
        self.work += count
        self.applications.append(label)


class RecursionError_(ValueError):
    """Raised when a recursion combinator is applied outside its domain."""


# ---------------------------------------------------------------------------
# Divide and conquer recursion (union presentation)
# ---------------------------------------------------------------------------

def dcr(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Divide and conquer recursion ``dcr(e, f, u)(s)``.

    Defining equations (Section 1)::

        phi({})        = e
        phi({x})       = f(x)
        phi(s1 U s2)   = u(phi(s1), phi(s2))      (s1, s2 disjoint, non-empty)

    ``u`` must be associative and commutative with identity ``e`` on a set
    containing ``e`` and the range of ``f``; under that precondition the
    result is independent of how the set is split.  The implementation splits
    the canonical element sequence into halves, giving a combining tree of
    depth ``ceil(log2 |s|)``.
    """
    if not isinstance(s, SetVal):
        raise RecursionError_(f"dcr expects a set value, got {s!r}")
    elems = s.elements
    if trace is None:
        return _dcr_go_untraced(e, f, u, elems)
    if elems:
        trace.combine_rounds = max(trace.combine_rounds, _ceil_log2(len(elems)))
    result, depth = _dcr_go(e, f, u, elems, trace)
    trace.depth = max(trace.depth, depth)
    return result


def _dcr_go_untraced(
    e: Value,
    f: Unary,
    u: Binary,
    elems: tuple[Value, ...],
) -> Value:
    """The combining tree without per-node trace branching (the hot path).

    Identical splits to :func:`_dcr_go` — first/second halves of the canonical
    element sequence — so traced and untraced runs produce the same value.
    """
    if not elems:
        return e
    if len(elems) == 1:
        return f(elems[0])
    mid = len(elems) // 2
    return u(_dcr_go_untraced(e, f, u, elems[:mid]), _dcr_go_untraced(e, f, u, elems[mid:]))


def _dcr_go(
    e: Value,
    f: Unary,
    u: Binary,
    elems: tuple[Value, ...],
    trace: Optional[EvaluationTrace],
) -> tuple[Value, int]:
    if not elems:
        return e, 0
    if len(elems) == 1:
        if trace is not None:
            trace.record("f")
        return f(elems[0]), 1
    mid = len(elems) // 2
    left, dl = _dcr_go(e, f, u, elems[:mid], trace)
    right, dr = _dcr_go(e, f, u, elems[mid:], trace)
    if trace is not None:
        trace.record("u")
    return u(left, right), max(dl, dr) + 1


def _ceil_log2(n: int) -> int:
    if n <= 1:
        return 0
    return (n - 1).bit_length()


# ---------------------------------------------------------------------------
# Structural recursion on the union presentation
# ---------------------------------------------------------------------------

def sru(
    e: Value,
    f: Unary,
    u: Binary,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Structural recursion on the union presentation, ``sru(e, f, u)(s)``.

    Same defining equations as :func:`dcr` but the split need not be disjoint,
    so ``u`` must additionally be idempotent for the definition to be sound.
    If ``sru(e, f, u)`` is well-defined then so is ``dcr(e, f, u)`` and they
    coincide; this implementation simply delegates to the same combining tree.
    The distinction matters for the *algebraic preconditions* (checked in
    :mod:`repro.recursion.algebraic`) and for expressiveness: the paper notes
    it is open whether ``sru`` can express parity or transitive closure.
    """
    return dcr(e, f, u, s, trace)


# ---------------------------------------------------------------------------
# Structural recursion on the insert presentation
# ---------------------------------------------------------------------------

def sri(
    e: Value,
    i: Insert,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Structural recursion on the insert presentation, ``sri(e, i)(s)``.

    Defining equations (Section 2)::

        sri(e, i)({})      = e
        sri(e, i)(y ins s) = i(y, sri(e, i)(s))

    ``i`` must be i-commutative (``i(x, i(y, s)) = i(y, i(x, s))``) and
    i-idempotent (``i(x, i(x, s)) = i(x, s)``) on the relevant carrier.  The
    elements are consumed one by one, so the dependent-application depth is
    ``|s|`` -- this is the element-by-element recursion that captures PTIME
    over ordered databases (Proposition 6.6).
    """
    if not isinstance(s, SetVal):
        raise RecursionError_(f"sri expects a set value, got {s!r}")
    # Consume in decreasing order so that the outermost application is on the
    # least element, matching the ordered set-reduce of [23] (section 2).
    if trace is None:
        acc = e
        for x in reversed(s.elements):
            acc = i(x, acc)
        return acc
    acc = e
    depth = 0
    for x in reversed(s.elements):
        trace.record("i")
        acc = i(x, acc)
        depth += 1
    trace.depth = max(trace.depth, depth)
    return acc


def esr(
    e: Value,
    i: Insert,
    s: SetVal,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Element-step recursion ``esr(e, i)(s)``.

    Like :func:`sri` but the element being inserted is guaranteed not to occur
    in the remaining set (``esr(e, i)(y ins s) = i(y, esr(e, i)(s))`` only when
    ``y`` not in ``s``), so ``i`` need only be i-commutative, not
    i-idempotent.  On canonical sets every element occurs exactly once, so the
    evaluation strategy coincides with :func:`sri`; the two differ only in
    their algebraic preconditions and hence in which parameter functions they
    may legitimately be given.
    """
    return sri(e, i, s, trace)
