"""Logarithmic and linear iterators over sets (Section 7.1).

The main technical tool of the paper's proofs is to convert recursion on sets
into simple *iterators*:

* ``log_loop(f)(x, y)`` applies ``f`` to ``y`` exactly ``ceil(log2(|x|+1))``
  times -- the number of bits needed to write the cardinality of ``x``;
* ``loop(f)(x, y)`` applies ``f`` exactly ``|x|`` times;
* ``blog_loop(f, b)`` and ``bloop(f, b)`` are the bounded versions, which
  intersect with the bound ``b`` at every step (and start from ``y n b``), so
  that intermediate values stay inside the polynomially-sized bound.

Proposition 7.3 shows that, over ordered databases, ``dcr`` and ``log_loop``
have the same expressive power (and similarly ``sri`` and ``loop``); the
constructive translations live in :mod:`repro.recursion.translations`.

Example 7.1: ``log_loop`` expresses transitive closure by repeated squaring
(``r <- r U r o r``, ``ceil(log(n+1))`` times).  Example 7.2: iterating
``log^2 n`` times needs nesting depth two -- provided here as
:func:`nested_log_loop` for the depth/AC^k experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..objects.types import Type
from ..objects.values import SetVal, Value
from .bounded import ps_intersect, require_ps_type
from .forms import EvaluationTrace

#: A step function iterated by the loops.
Step = Callable[[Value], Value]


def log_iterations(cardinality: int) -> int:
    """``ceil(log2(n + 1))``: the number of bits of ``n``, and the number of
    times ``log_loop`` iterates its step function on a set of ``n`` elements."""
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    return cardinality.bit_length()


def log_loop(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """``log_loop(f)(x, y) = f^(ceil(log(|x|+1)))(y)``."""
    if not isinstance(x, SetVal):
        raise TypeError(f"log_loop iterates over a set, got {x!r}")
    rounds = log_iterations(len(x))
    return iterate(f, y, rounds, trace)


def loop(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """``loop(f)(x, y) = f^(|x|)(y)``."""
    if not isinstance(x, SetVal):
        raise TypeError(f"loop iterates over a set, got {x!r}")
    return iterate(f, y, len(x), trace)


def iterate(
    f: Step,
    y: Value,
    rounds: int,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Apply ``f`` to ``y`` the given number of times, recording work/depth."""
    acc = y
    for _ in range(rounds):
        if trace is not None:
            trace.record("step")
        acc = f(acc)
    if trace is not None:
        trace.depth += rounds
        trace.combine_rounds = max(trace.combine_rounds, rounds)
    return acc


def blog_loop(
    f: Step,
    b: Value,
    result_type: Type,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded logarithmic iterator: ``blog_loop(f, b)(x, y) = log_loop(f n b)(x, y n b)``.

    ``result_type`` must be a PS-type; every iterate (and the start value) is
    intersected with the bound ``b``.
    """
    require_ps_type(result_type)

    def f_bounded(v: Value) -> Value:
        return ps_intersect(f(v), b, result_type)

    return log_loop(f_bounded, x, ps_intersect(y, b, result_type), trace)


def bloop(
    f: Step,
    b: Value,
    result_type: Type,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded linear iterator: ``bloop(f, b)(x, y) = loop(f n b)(x, y n b)``."""
    require_ps_type(result_type)

    def f_bounded(v: Value) -> Value:
        return ps_intersect(f(v), b, result_type)

    return loop(f_bounded, x, ps_intersect(y, b, result_type), trace)


def nested_log_loop(
    f: Step,
    x: SetVal,
    y: Value,
    nesting: int,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Iterate ``f`` approximately ``(log |x|)^nesting`` times (Example 7.2).

    Nesting ``log_loop`` inside itself multiplies the iteration counts: a
    depth-two nesting iterates ``log^2 n`` times, and in general depth ``k``
    gives ``log^k n`` -- which is why recursion-nesting depth ``k``
    corresponds to AC^k.  ``nesting`` must be at least 1.
    """
    if nesting < 1:
        raise ValueError("nesting must be >= 1")
    if nesting == 1:
        return log_loop(f, x, y, trace)

    def outer_step(v: Value) -> Value:
        return nested_log_loop(f, x, v, nesting - 1, trace)

    rounds = log_iterations(len(x))
    acc = y
    for _ in range(rounds):
        acc = outer_step(acc)
    return acc


def iteration_count(x: SetVal, nesting: int) -> int:
    """Total number of applications performed by :func:`nested_log_loop`."""
    return log_iterations(len(x)) ** nesting
