"""Logarithmic and linear iterators over sets (Section 7.1).

The main technical tool of the paper's proofs is to convert recursion on sets
into simple *iterators*:

* ``log_loop(f)(x, y)`` applies ``f`` to ``y`` exactly ``ceil(log2(|x|+1))``
  times -- the number of bits needed to write the cardinality of ``x``;
* ``loop(f)(x, y)`` applies ``f`` exactly ``|x|`` times;
* ``blog_loop(f, b)`` and ``bloop(f, b)`` are the bounded versions, which
  intersect with the bound ``b`` at every step (and start from ``y n b``), so
  that intermediate values stay inside the polynomially-sized bound.

Proposition 7.3 shows that, over ordered databases, ``dcr`` and ``log_loop``
have the same expressive power (and similarly ``sri`` and ``loop``); the
constructive translations live in :mod:`repro.recursion.translations`.

Example 7.1: ``log_loop`` expresses transitive closure by repeated squaring
(``r <- r U r o r``, ``ceil(log(n+1))`` times).  Example 7.2: iterating
``log^2 n`` times needs nesting depth two -- provided here as
:func:`nested_log_loop` for the depth/AC^k experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..objects.types import Type
from ..objects.values import SetVal, Value
from .bounded import ps_intersect, require_ps_type
from .forms import EvaluationTrace

#: A step function iterated by the loops.
Step = Callable[[Value], Value]


def log_iterations(cardinality: int) -> int:
    """``ceil(log2(n + 1))``: the number of bits of ``n``, and the number of
    times ``log_loop`` iterates its step function on a set of ``n`` elements."""
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    return cardinality.bit_length()


def log_loop(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """``log_loop(f)(x, y) = f^(ceil(log(|x|+1)))(y)``."""
    if not isinstance(x, SetVal):
        raise TypeError(f"log_loop iterates over a set, got {x!r}")
    rounds = log_iterations(len(x))
    return iterate(f, y, rounds, trace)


def loop(
    f: Step,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """``loop(f)(x, y) = f^(|x|)(y)``."""
    if not isinstance(x, SetVal):
        raise TypeError(f"loop iterates over a set, got {x!r}")
    return iterate(f, y, len(x), trace)


def iterate(
    f: Step,
    y: Value,
    rounds: int,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Apply ``f`` to ``y`` the given number of times, recording work/depth.

    The untraced path is the hot loop of every iterator-backed evaluation, so
    tracing is checked *once* up front: with no trace the loop carries zero
    accounting overhead instead of re-testing ``trace is not None`` per round.
    """
    if trace is None:
        acc = y
        for _ in range(rounds):
            acc = f(acc)
        return acc
    acc = y
    for _ in range(rounds):
        trace.record("step")
        acc = f(acc)
    trace.depth += rounds
    trace.combine_rounds = max(trace.combine_rounds, rounds)
    return acc


# ---------------------------------------------------------------------------
# Delta-aware entry points (the set-at-a-time backend's iteration strategies)
# ---------------------------------------------------------------------------

def iterate_stable(f: Step, y: Value, rounds: int) -> Value:
    """Like :func:`iterate`, but stop as soon as a round is a no-op.

    Exact for *every* step function: iteration applies one deterministic pure
    function, so ``f(acc) == acc`` implies all remaining rounds return ``acc``
    unchanged.  Callers that intern values get the equality test for free
    (``is`` on canonical representatives); for plain values it is structural
    equality.  This is the full-iteration fallback of the vectorized engine's
    loop execution — semi-naive evaluation (:func:`seminaive_iterate`) needs
    an inflationary, union-decomposable step, this needs nothing.
    """
    acc = y
    for _ in range(rounds):
        nxt = f(acc)
        if nxt is acc or nxt == acc:
            return acc
        acc = nxt
    return acc


def seminaive_iterate(
    full_round: Callable[[Value], Value],
    delta_round: Callable[[SetVal, Value], Value],
    y: Value,
    rounds: int,
    union: Optional[Callable[[SetVal, SetVal], SetVal]] = None,
    difference: Optional[Callable[[SetVal, SetVal], SetVal]] = None,
) -> Value:
    """Semi-naive (frontier) iteration of an inflationary set-valued step.

    ``full_round(acc)`` performs one complete application of the step;
    ``delta_round(delta, acc)`` returns the elements the step derives when
    only ``delta`` (the previous round's newly discovered elements) needs
    re-deriving — the caller guarantees ``full_round(acc) == acc U
    delta_round(delta, acc)`` whenever ``delta = acc - previous_acc``, which
    holds exactly when the step is ``acc U F(acc)`` with every ``F`` operand
    distributing over union (see the inflationary-step analysis in
    :mod:`repro.engine.rewrite`).  Runs at most ``rounds`` rounds and stops
    early once the frontier empties, which is exact because an empty frontier
    means the step has reached its fixpoint.

    ``union``/``difference`` default to the :class:`SetVal` operations; the
    vectorized engine passes its interning merge/diff so every intermediate
    stays canonical and shared.
    """
    if rounds <= 0:
        return y
    if not isinstance(y, SetVal):
        raise TypeError(f"seminaive_iterate needs a set accumulator, got {y!r}")
    union = union or (lambda a, b: a.union(b))
    difference = difference or (lambda a, b: a.difference(b))
    acc = full_round(y)
    if not isinstance(acc, SetVal):
        raise TypeError(f"seminaive_iterate step returned a non-set {acc!r}")
    delta = difference(acc, y)
    done = 1
    while done < rounds and len(delta):
        derived = delta_round(delta, acc)
        nxt = union(acc, derived)
        delta = difference(nxt, acc)
        acc = nxt
        done += 1
    return acc


def blog_loop(
    f: Step,
    b: Value,
    result_type: Type,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded logarithmic iterator: ``blog_loop(f, b)(x, y) = log_loop(f n b)(x, y n b)``.

    ``result_type`` must be a PS-type; every iterate (and the start value) is
    intersected with the bound ``b``.
    """
    require_ps_type(result_type)

    def f_bounded(v: Value) -> Value:
        return ps_intersect(f(v), b, result_type)

    return log_loop(f_bounded, x, ps_intersect(y, b, result_type), trace)


def bloop(
    f: Step,
    b: Value,
    result_type: Type,
    x: SetVal,
    y: Value,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Bounded linear iterator: ``bloop(f, b)(x, y) = loop(f n b)(x, y n b)``."""
    require_ps_type(result_type)

    def f_bounded(v: Value) -> Value:
        return ps_intersect(f(v), b, result_type)

    return loop(f_bounded, x, ps_intersect(y, b, result_type), trace)


def nested_log_loop(
    f: Step,
    x: SetVal,
    y: Value,
    nesting: int,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Iterate ``f`` approximately ``(log |x|)^nesting`` times (Example 7.2).

    Nesting ``log_loop`` inside itself multiplies the iteration counts: a
    depth-two nesting iterates ``log^2 n`` times, and in general depth ``k``
    gives ``log^k n`` -- which is why recursion-nesting depth ``k``
    corresponds to AC^k.  ``nesting`` must be at least 1.
    """
    if nesting < 1:
        raise ValueError("nesting must be >= 1")
    if nesting == 1:
        return log_loop(f, x, y, trace)

    def outer_step(v: Value) -> Value:
        return nested_log_loop(f, x, v, nesting - 1, trace)

    rounds = log_iterations(len(x))
    acc = y
    for _ in range(rounds):
        acc = outer_step(acc)
    return acc


def iteration_count(x: SetVal, nesting: int) -> int:
    """Total number of applications performed by :func:`nested_log_loop`."""
    return log_iterations(len(x)) ** nesting
