"""Depth of recursion nesting (Section 3) and the AC^k stratification.

The paper defines the depth of recursion nesting of an expression by::

    depth(dcr(e, f, u)) = max(depth(e), depth(f), 1 + depth(u))

-- only the combining function ``u`` is actually iterated, so only it counts
towards the nesting -- and similarly for ``sri(e, i)`` (the insert function is
iterated) and for the iterators (``depth(log_loop(f)) = 1 + depth(f)``).  All
other constructs take the maximum over their subexpressions.

The languages of the main theorems are the restrictions to nesting depth at
most ``k``: ``NRA1(dcr^(k), <=) = FLAT-AC^k`` and ``NRA(bdcr^(k), <=) =
CMPX-OBJ-AC^k`` for ``k >= 1``.  :func:`recursion_depth` computes the depth,
and :func:`within_depth` / :func:`ac_level` phrase the restriction.
"""

from __future__ import annotations

from . import ast
from .ast import Expr


def recursion_depth(e: Expr) -> int:
    """The paper's depth of recursion (and iteration) nesting."""
    if isinstance(e, (ast.Dcr, ast.Sru, ast.Bdcr)):
        parts = [recursion_depth(e.seed), recursion_depth(e.item), 1 + recursion_depth(e.combine)]
        if isinstance(e, ast.Bdcr):
            parts.append(recursion_depth(e.bound))
        return max(parts)
    if isinstance(e, (ast.Sri, ast.Esr, ast.Bsri)):
        parts = [recursion_depth(e.seed), 1 + recursion_depth(e.insert)]
        if isinstance(e, ast.Bsri):
            parts.append(recursion_depth(e.bound))
        return max(parts)
    if isinstance(e, (ast.LogLoop, ast.Loop)):
        return 1 + recursion_depth(e.step)
    if isinstance(e, (ast.BlogLoop, ast.Bloop)):
        return max(1 + recursion_depth(e.step), recursion_depth(e.bound))
    depths = [recursion_depth(c) for c in e.children()]
    return max(depths, default=0)


def within_depth(e: Expr, k: int) -> bool:
    """True iff ``e`` lies in the depth-``k`` fragment (``dcr^(k)`` etc.)."""
    return recursion_depth(e) <= k


def ac_level(e: Expr) -> int:
    """The AC^k level the main theorems assign to the expression.

    An expression of recursion-nesting depth ``k >= 1`` (with order) defines a
    query in AC^k; recursion-free expressions are already in (uniform) AC^0 by
    Proposition 6.4, so they are reported as level 0.
    """
    return recursion_depth(e)


def count_recursion_nodes(e: Expr) -> int:
    """Total number of recursion/iteration constructs in the expression."""
    nodes = ast.RECURSION_NODES + ast.ITERATOR_NODES
    return sum(1 for sub in ast.subexpressions(e) if isinstance(sub, nodes))
