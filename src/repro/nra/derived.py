"""Derived operators of the nested relational algebra.

Section 3 of the paper notes that NRA "is powerful enough to express the
following functions: set difference, set intersection, cartesian product,
database projections, equalities at all types, selections over predicates
definable in the language, nest and unnest".  This module provides exactly
those derivations as *expression builders*: each function assembles an NRA
syntax tree from given subexpressions, so everything downstream (the type
checker, both evaluators, the circuit compiler) sees only the core constructs.

Builders that introduce a bound variable take the element type(s) explicitly,
since NRA is explicitly typed at binders.  Naming convention: builders take
and return :class:`repro.nra.ast.Expr` values; nothing here evaluates
anything.
"""

from __future__ import annotations

from ..objects.types import ProdType, SetType, Type
from .ast import (
    Apply,
    BoolConst,
    EmptySet,
    Eq,
    Expr,
    Ext,
    If,
    IsEmpty,
    Lambda,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Union,
    Var,
    fresh_name,
)


# ---------------------------------------------------------------------------
# Booleans
# ---------------------------------------------------------------------------

def bool_not(e: Expr) -> Expr:
    """Boolean negation, via the conditional."""
    return If(e, BoolConst(False), BoolConst(True))


def bool_and(a: Expr, b: Expr) -> Expr:
    """Boolean conjunction, via the conditional (short-circuiting on ``a``)."""
    return If(a, b, BoolConst(False))


def bool_or(a: Expr, b: Expr) -> Expr:
    """Boolean disjunction, via the conditional."""
    return If(a, BoolConst(True), b)


def not_empty(s: Expr) -> Expr:
    """``not empty(s)``: the set is inhabited."""
    return bool_not(IsEmpty(s))


# ---------------------------------------------------------------------------
# Mapping, filtering and membership
# ---------------------------------------------------------------------------

def ext_apply(f: Lambda, s: Expr) -> Expr:
    """``ext(f)(s)``: map ``f`` (returning sets) over ``s`` and union the results."""
    return Apply(Ext(f), s)


def smap(f: Lambda, s: Expr) -> Expr:
    """Map a function ``f : s -> t`` over a set: ``ext(\\x. {f(x)})(s)``."""
    x = fresh_name("m")
    singleton_f = Lambda(x, f.var_type, Singleton(Apply(f, Var(x))))
    return ext_apply(singleton_f, s)


def select(pred: Lambda, s: Expr) -> Expr:
    """Selection: keep the elements satisfying the definable predicate ``pred``."""
    x = fresh_name("sel")
    body = If(Apply(pred, Var(x)), Singleton(Var(x)), EmptySet(pred.var_type))
    return ext_apply(Lambda(x, pred.var_type, body), s)


def member(x: Expr, s: Expr, elem_type: Type) -> Expr:
    """Membership test ``x in s``, via an emptiness check of a selection."""
    y = fresh_name("mem")
    matches = ext_apply(
        Lambda(
            y,
            elem_type,
            If(Eq(Var(y), x), Singleton(Var(y)), EmptySet(elem_type)),
        ),
        s,
    )
    return not_empty(matches)


def flatten(ss: Expr, elem_type: Type) -> Expr:
    """Flatten a set of sets: ``ext(\\s. s)(ss)``."""
    x = fresh_name("fl")
    return ext_apply(Lambda(x, SetType(elem_type), Var(x)), ss)


# ---------------------------------------------------------------------------
# The relational operations of Section 3
# ---------------------------------------------------------------------------

def intersection(s1: Expr, s2: Expr, elem_type: Type) -> Expr:
    """Set intersection ``s1 n s2``."""
    x = fresh_name("int")
    body = If(member(Var(x), s2, elem_type), Singleton(Var(x)), EmptySet(elem_type))
    return ext_apply(Lambda(x, elem_type, body), s1)


def difference(s1: Expr, s2: Expr, elem_type: Type) -> Expr:
    """Set difference ``s1 \\ s2``."""
    x = fresh_name("dif")
    body = If(member(Var(x), s2, elem_type), EmptySet(elem_type), Singleton(Var(x)))
    return ext_apply(Lambda(x, elem_type, body), s1)


def cartesian(s1: Expr, s2: Expr, t1: Type, t2: Type) -> Expr:
    """Cartesian product ``s1 x s2``."""
    x = fresh_name("cx")
    y = fresh_name("cy")
    inner = ext_apply(Lambda(y, t2, Singleton(Pair(Var(x), Var(y)))), s2)
    return ext_apply(Lambda(x, t1, inner), s1)


def rel_proj1(r: Expr, t1: Type, t2: Type) -> Expr:
    """Database projection ``Pi_1`` of a binary relation: the set of first components."""
    p = fresh_name("p1")
    return ext_apply(Lambda(p, ProdType(t1, t2), Singleton(Proj1(Var(p)))), r)


def rel_proj2(r: Expr, t1: Type, t2: Type) -> Expr:
    """Database projection ``Pi_2`` of a binary relation: the set of second components."""
    p = fresh_name("p2")
    return ext_apply(Lambda(p, ProdType(t1, t2), Singleton(Proj2(Var(p)))), r)


def field_of(r: Expr, t1: Type, t2: Type) -> Expr:
    """``Pi_1(r) U Pi_2(r)``: all values mentioned by a binary relation over one type.

    Only meaningful when ``t1 == t2``; this is the ``v`` of Example 7.1.
    """
    if t1 != t2:
        raise ValueError("field_of requires a homogeneous binary relation")
    return Union(rel_proj1(r, t1, t2), rel_proj2(r, t1, t2))


def compose(r1: Expr, r2: Expr, t: Type) -> Expr:
    """Relation composition ``r1 o r2`` of binary relations over ``t``.

    ``{(x, z) | (x, y) in r1, (y, z) in r2}`` -- the join used by the
    repeated-squaring transitive closure of Example 7.1.
    """
    rel_t = ProdType(t, t)
    p = fresh_name("cp")
    q = fresh_name("cq")
    inner_body = If(
        Eq(Proj2(Var(p)), Proj1(Var(q))),
        Singleton(Pair(Proj1(Var(p)), Proj2(Var(q)))),
        EmptySet(rel_t),
    )
    inner = ext_apply(Lambda(q, rel_t, inner_body), r2)
    return ext_apply(Lambda(p, rel_t, inner), r1)


def nest(r: Expr, t1: Type, t2: Type) -> Expr:
    """Nest a binary relation on its first column: ``{s x t} -> {s x {t}}``.

    Each first-component value ``a`` is paired with the set of second
    components it is related to.  Duplicate groups collapse because sets are
    canonical.
    """
    rel_t = ProdType(t1, t2)
    p = fresh_name("np")
    q = fresh_name("nq")
    group = ext_apply(
        Lambda(
            q,
            rel_t,
            If(Eq(Proj1(Var(q)), Proj1(Var(p))), Singleton(Proj2(Var(q))), EmptySet(t2)),
        ),
        r,
    )
    return ext_apply(Lambda(p, rel_t, Singleton(Pair(Proj1(Var(p)), group))), r)


def unnest(r: Expr, t1: Type, t2: Type) -> Expr:
    """Unnest ``{s x {t}} -> {s x t}``: flatten the grouped second column."""
    nested_t = ProdType(t1, SetType(t2))
    p = fresh_name("up")
    y = fresh_name("uy")
    inner = ext_apply(Lambda(y, t2, Singleton(Pair(Proj1(Var(p)), Var(y)))), Proj2(Var(p)))
    return ext_apply(Lambda(p, nested_t, inner), r)


def subset(s1: Expr, s2: Expr, elem_type: Type) -> Expr:
    """``s1 subseteq s2``: the difference ``s1 \\ s2`` is empty."""
    return IsEmpty(difference(s1, s2, elem_type))


def set_equal(s1: Expr, s2: Expr, elem_type: Type) -> Expr:
    """Extensional equality of sets, as mutual inclusion.

    The primitive :class:`repro.nra.ast.Eq` already decides equality at all
    types on canonical values; this derived form shows it is definable from
    equality at the element type alone, as the paper asserts.
    """
    return bool_and(subset(s1, s2, elem_type), subset(s2, s1, elem_type))


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------

def let(var: str, var_type: Type, value: Expr, body: Expr) -> Expr:
    """``let var = value in body`` as a beta-redex."""
    return Apply(Lambda(var, var_type, body), value)


def pair_with_all(x: Expr, s: Expr, x_type: Type, elem_type: Type) -> Expr:
    """``{(x, y) | y in s}``: tag every element of ``s`` with ``x``."""
    y = fresh_name("tw")
    return ext_apply(Lambda(y, elem_type, Singleton(Pair(x, Var(y)))), s)
