"""Exception hierarchy of the NRA language implementation."""

from __future__ import annotations


class NRAError(Exception):
    """Base class for all errors raised by the NRA implementation."""


class NRATypeError(NRAError):
    """A static typing error: an expression does not have a valid type."""


class NRAEvalError(NRAError):
    """A dynamic error: evaluation failed (unbound variable, bad value, ...)."""


class NRAParseError(NRAError):
    """The surface syntax could not be parsed."""


class NRAScopeError(NRAError):
    """A variable is used outside the scope of its binder."""
