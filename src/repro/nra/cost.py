"""Work/depth parallel cost semantics for NRA expressions.

The paper's complexity claims are about *parallel* resources: ``dcr`` is in NC
because its combining tree has logarithmic depth, ``ext`` is a single parallel
step, ``sri`` is inherently sequential in the number of elements.  Executing
Python threads would not measure any of this (see the substitution note in
DESIGN.md), so this module evaluates expressions under an explicit **work /
depth cost model** -- the standard PRAM abstraction (Brent): *work* is the
total number of elementary operations, *depth* is the length of the critical
path of operations that must happen one after another.  Parallel time on
polynomially many processors is proportional to depth.

Cost rules (each elementary constructor/test counts 1 work, 1 depth):

* independent subexpressions evaluate in parallel: work adds, depth is the
  maximum;
* ``ext(f)(s)``: all ``f(x)`` evaluate in parallel -- depth is the *maximum*
  over the elements plus one union step, work is the sum;
* ``dcr``/``sru``/``bdcr``: the item applications run in parallel, then a
  balanced combining tree of ``ceil(log2 n)`` rounds; the depth of each round
  is the maximum depth of its combine applications;
* ``sri``/``esr``/``bsri`` and the iterators: a sequential chain -- the depth
  of every step *adds*;
* external functions cost one unit (they are assumed NC-computable, as in
  Proposition 6.3; their internal cost is not the object of study);
* bounding intersections cost one extra unit of depth per step.

The benchmarks regenerate the paper's qualitative claims from these numbers:
``dcr``-based queries show Theta(log n) (or Theta(log^k n)) depth growth while
their ``sri`` counterparts show Theta(n) depth growth on identical inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Union

from ..objects.values import BoolVal, PairVal, SetVal, UnitVal, Value
from ..recursion.bounded import ps_intersect_values
from ..recursion.iterators import log_iterations
from . import ast
from .ast import Expr
from .errors import NRAEvalError
from .externals import EMPTY_SIGMA, Signature


@dataclass(frozen=True)
class Cost:
    """Parallel cost: total work and critical-path depth."""

    work: int
    depth: int

    def then(self, other: "Cost") -> "Cost":
        """Sequential composition: work adds, depth adds."""
        return Cost(self.work + other.work, self.depth + other.depth)

    def beside(self, other: "Cost") -> "Cost":
        """Parallel composition: work adds, depth is the maximum."""
        return Cost(self.work + other.work, max(self.depth, other.depth))

    def step(self, work: int = 1, depth: int = 1) -> "Cost":
        """Add a constant amount of work/depth after this cost."""
        return Cost(self.work + work, self.depth + depth)


ZERO = Cost(0, 0)
UNIT_COST = Cost(1, 1)


def parallel_all(costs: list[Cost]) -> Cost:
    """Parallel composition of many independent costs."""
    if not costs:
        return ZERO
    return Cost(sum(c.work for c in costs), max(c.depth for c in costs))


def sequential_all(costs: list[Cost]) -> Cost:
    """Sequential composition of many dependent costs."""
    return Cost(sum(c.work for c in costs), sum(c.depth for c in costs))


@dataclass
class CostFunction:
    """Runtime denotation of a function under the cost semantics."""

    name: str
    call: Callable[[Value], tuple[Value, Cost]]

    def __call__(self, v: Value) -> tuple[Value, Cost]:
        return self.call(v)


CostDenotation = Union[Value, CostFunction]
CostEnv = Mapping[str, CostDenotation]


def cost_evaluate(
    e: Expr,
    env: Optional[dict[str, CostDenotation]] = None,
    sigma: Signature = EMPTY_SIGMA,
) -> tuple[CostDenotation, Cost]:
    """Evaluate ``e`` and return its denotation together with its parallel cost."""
    return _ceval(e, dict(env or {}), sigma)


def cost_run(
    e: Expr,
    arg: Optional[Value] = None,
    env: Optional[dict[str, CostDenotation]] = None,
    sigma: Signature = EMPTY_SIGMA,
) -> tuple[Value, Cost]:
    """Evaluate ``e`` (optionally applying it to ``arg``) and return value and cost."""
    d, c = cost_evaluate(e, env, sigma)
    if arg is not None:
        if not isinstance(d, CostFunction):
            raise NRAEvalError("cost_run: expression did not denote a function")
        v, c_app = d(arg)
        return v, c.then(c_app)
    if isinstance(d, CostFunction):
        raise NRAEvalError("cost_run: result is a function; supply an argument")
    return d, c


def _value(d: CostDenotation, what: str) -> Value:
    if isinstance(d, CostFunction):
        raise NRAEvalError(f"{what}: expected a value, got a function")
    return d


def _function(d: CostDenotation, what: str) -> CostFunction:
    if not isinstance(d, CostFunction):
        raise NRAEvalError(f"{what}: expected a function")
    return d


def _set(v: Value, what: str) -> SetVal:
    if not isinstance(v, SetVal):
        raise NRAEvalError(f"{what}: expected a set, got {v!r}")
    return v


def _pair(v: Value, what: str) -> PairVal:
    if not isinstance(v, PairVal):
        raise NRAEvalError(f"{what}: expected a pair, got {v!r}")
    return v


def _ceval(
    e: Expr, env: dict[str, CostDenotation], sigma: Signature
) -> tuple[CostDenotation, Cost]:
    if isinstance(e, ast.Const):
        return e.value, UNIT_COST
    if isinstance(e, ast.EmptySet):
        return SetVal(), UNIT_COST
    if isinstance(e, ast.Singleton):
        d, c = _ceval(e.item, env, sigma)
        return SetVal([_value(d, "singleton")]), c.step()
    if isinstance(e, ast.Union):
        dl, cl = _ceval(e.left, env, sigma)
        dr, cr = _ceval(e.right, env, sigma)
        result = _set(_value(dl, "union"), "union").union(_set(_value(dr, "union"), "union"))
        return result, cl.beside(cr).step()
    if isinstance(e, ast.UnitConst):
        return UnitVal(), UNIT_COST
    if isinstance(e, ast.Pair):
        df, cf = _ceval(e.fst, env, sigma)
        ds, cs = _ceval(e.snd, env, sigma)
        return PairVal(_value(df, "pair"), _value(ds, "pair")), cf.beside(cs).step()
    if isinstance(e, ast.Proj1):
        d, c = _ceval(e.pair, env, sigma)
        return _pair(_value(d, "pi1"), "pi1").fst, c.step()
    if isinstance(e, ast.Proj2):
        d, c = _ceval(e.pair, env, sigma)
        return _pair(_value(d, "pi2"), "pi2").snd, c.step()
    if isinstance(e, ast.BoolConst):
        return BoolVal(e.value), UNIT_COST
    if isinstance(e, ast.Eq):
        dl, cl = _ceval(e.left, env, sigma)
        dr, cr = _ceval(e.right, env, sigma)
        return BoolVal(_value(dl, "eq") == _value(dr, "eq")), cl.beside(cr).step()
    if isinstance(e, ast.IsEmpty):
        d, c = _ceval(e.set, env, sigma)
        return BoolVal(len(_set(_value(d, "empty"), "empty")) == 0), c.step()
    if isinstance(e, ast.If):
        dc, cc = _ceval(e.cond, env, sigma)
        cond = _value(dc, "if")
        if not isinstance(cond, BoolVal):
            raise NRAEvalError(f"if-condition must be boolean, got {cond!r}")
        branch = e.then if cond.value else e.orelse
        db, cb = _ceval(branch, env, sigma)
        return db, cc.then(cb).step(work=0, depth=0)
    if isinstance(e, ast.Var):
        if e.name not in env:
            raise NRAEvalError(f"unbound variable {e.name!r}")
        return env[e.name], Cost(1, 1)
    if isinstance(e, ast.Lambda):
        captured = dict(env)

        def call(v: Value, e=e, captured=captured) -> tuple[Value, Cost]:
            inner = dict(captured)
            inner[e.var] = v
            d, c = _ceval(e.body, inner, sigma)
            return _value(d, "lambda body"), c

        return CostFunction(f"\\{e.var}", call), UNIT_COST
    if isinstance(e, ast.Apply):
        df, cf = _ceval(e.func, env, sigma)
        da, ca = _ceval(e.arg, env, sigma)
        fn = _function(df, "application")
        v, c_app = fn(_value(da, "argument"))
        return v, cf.beside(ca).then(c_app)
    if isinstance(e, ast.Ext):
        df, cf = _ceval(e.func, env, sigma)
        fn = _function(df, "ext parameter")

        def ext_call(v: Value, fn=fn) -> tuple[Value, Cost]:
            s = _set(v, "ext argument")
            pieces: list[Value] = []
            costs: list[Cost] = []
            for x in s:
                piece, c = fn(x)
                pieces.append(_set(piece, "ext piece"))
                costs.append(c)
            result = SetVal()
            for piece in pieces:
                result = result.union(piece)  # type: ignore[arg-type]
            # One parallel fan-out (max depth) followed by one union step.
            return result, parallel_all(costs).step()

        return CostFunction("ext", ext_call), cf
    if isinstance(e, ast.ExternalCall):
        fn = sigma[e.name]
        d, c = _ceval(e.arg, env, sigma)
        return fn(_value(d, f"external {e.name}")), c.step()
    if isinstance(e, (ast.Dcr, ast.Sru, ast.Bdcr)):
        return _cost_union_recursion(e, env, sigma)
    if isinstance(e, (ast.Sri, ast.Esr, ast.Bsri)):
        return _cost_insert_recursion(e, env, sigma)
    if isinstance(e, (ast.LogLoop, ast.Loop, ast.BlogLoop, ast.Bloop)):
        return _cost_iterator(e, env, sigma)
    raise NRAEvalError(f"cannot cost-evaluate node {type(e).__name__}")


def _cost_union_recursion(
    e: Expr, env: dict[str, CostDenotation], sigma: Signature
) -> tuple[CostDenotation, Cost]:
    bounded = isinstance(e, ast.Bdcr)
    d_seed, c_seed = _ceval(e.seed, env, sigma)
    d_item, c_item = _ceval(e.item, env, sigma)
    d_comb, c_comb = _ceval(e.combine, env, sigma)
    seed = _value(d_seed, "recursion seed")
    item = _function(d_item, "recursion item")
    combine = _function(d_comb, "recursion combine")
    setup = parallel_all([c_seed, c_item, c_comb])
    bound: Optional[Value] = None
    if bounded:
        d_bound, c_bound = _ceval(e.bound, env, sigma)
        bound = _value(d_bound, "recursion bound")
        setup = setup.beside(c_bound)

    def clip(v: Value) -> Value:
        return ps_intersect_values(v, bound) if bound is not None else v

    def call(v: Value) -> tuple[Value, Cost]:
        s = _set(v, "recursion argument")
        if not len(s):
            return clip(seed), Cost(1, 1)
        # Leaf applications of the item function, all in parallel.
        leaves: list[Value] = []
        leaf_costs: list[Cost] = []
        for x in s:
            value, c = item(x)
            leaves.append(clip(value))
            leaf_costs.append(c)
        total = parallel_all(leaf_costs)
        # Balanced combining tree: each round combines adjacent pairs in parallel.
        current = leaves
        while len(current) > 1:
            nxt: list[Value] = []
            round_costs: list[Cost] = []
            for j in range(0, len(current) - 1, 2):
                value, c = combine(PairVal(current[j], current[j + 1]))
                nxt.append(clip(value))
                round_costs.append(c)
            if len(current) % 2 == 1:
                nxt.append(current[-1])
            total = total.then(parallel_all(round_costs))
            current = nxt
        extra = 1 if bound is not None else 0
        return current[0], total.step(work=extra, depth=extra)

    name = type(e).__name__.lower()
    return CostFunction(name, call), setup


def _cost_insert_recursion(
    e: Expr, env: dict[str, CostDenotation], sigma: Signature
) -> tuple[CostDenotation, Cost]:
    bounded = isinstance(e, ast.Bsri)
    d_seed, c_seed = _ceval(e.seed, env, sigma)
    d_ins, c_ins = _ceval(e.insert, env, sigma)
    seed = _value(d_seed, "recursion seed")
    insert = _function(d_ins, "recursion insert")
    setup = parallel_all([c_seed, c_ins])
    bound: Optional[Value] = None
    if bounded:
        d_bound, c_bound = _ceval(e.bound, env, sigma)
        bound = _value(d_bound, "recursion bound")
        setup = setup.beside(c_bound)

    def clip(v: Value) -> Value:
        return ps_intersect_values(v, bound) if bound is not None else v

    def call(v: Value) -> tuple[Value, Cost]:
        s = _set(v, "recursion argument")
        acc = clip(seed)
        total = Cost(1, 1)
        # Element-by-element: every step depends on the previous accumulator.
        for x in reversed(s.elements):
            acc_next, c = insert(PairVal(x, acc))
            acc = clip(acc_next)
            total = total.then(c)
        return acc, total

    name = type(e).__name__.lower()
    return CostFunction(name, call), setup


def _cost_iterator(
    e: Expr, env: dict[str, CostDenotation], sigma: Signature
) -> tuple[CostDenotation, Cost]:
    bounded = isinstance(e, (ast.BlogLoop, ast.Bloop))
    logarithmic = isinstance(e, (ast.LogLoop, ast.BlogLoop))
    d_step, c_step = _ceval(e.step, env, sigma)
    step = _function(d_step, "iterator step")
    setup = c_step
    bound: Optional[Value] = None
    if bounded:
        d_bound, c_bound = _ceval(e.bound, env, sigma)
        bound = _value(d_bound, "iterator bound")
        setup = setup.beside(c_bound)

    def clip(v: Value) -> Value:
        return ps_intersect_values(v, bound) if bound is not None else v

    def call(v: Value) -> tuple[Value, Cost]:
        p = _pair(v, "iterator argument")
        x, y = p.fst, p.snd
        s = _set(x, "iterator cardinality argument")
        rounds = log_iterations(len(s)) if logarithmic else len(s)
        acc = clip(y)
        total = Cost(1, 1)
        for _ in range(rounds):
            acc_next, c = step(acc)
            acc = clip(acc_next)
            total = total.then(c)
        return acc, total

    name = type(e).__name__.lower()
    return CostFunction(name, call), setup


# -- cardinality-aware estimation -------------------------------------------------
#
# The backend router (:mod:`repro.engine.router`) needs the cost of a query
# *at catalog scale* without paying for a full cost evaluation (which runs the
# query under the cost semantics and is itself as slow as the reference
# interpreter).  The trick: run the cost semantics twice on *truncated*
# inputs -- the catalog samples capped at two small sizes -- fit a power law
# ``work ~ n^k`` through the two observations, and extrapolate to the full
# cardinalities the catalog reports.  When every input already fits under the
# cap the "estimate" is exact and says so.


def truncate_sets(v: Value, cap: int) -> Value:
    """Recursively truncate every set in ``v`` to at most ``cap`` elements.

    Canonical order is preserved (a prefix of a sorted tuple is sorted), so
    the result is a legal complex object value representing a sub-instance of
    the input -- exactly what sampled cost evaluation wants.
    """
    if isinstance(v, SetVal):
        return SetVal([truncate_sets(x, cap) for x in v.elements[:cap]])
    if isinstance(v, PairVal):
        return PairVal(truncate_sets(v.fst, cap), truncate_sets(v.snd, cap))
    return v


def value_cardinality(v: Value) -> int:
    """The top-level size of an input: set length, or 1 for scalars."""
    return len(v) if isinstance(v, SetVal) else 1


@dataclass(frozen=True)
class CostEstimate:
    """An extrapolated parallel cost for a query at full catalog cardinality.

    ``work``/``depth`` are the extrapolated PRAM costs; ``exponent`` is the
    fitted power-law exponent for work (1 = linear, 2 = quadratic join, ...);
    ``sample_n``/``full_n`` are the total input cardinalities the fit saw and
    extrapolated to.  ``exact`` means the inputs fit under the sampling cap,
    so no extrapolation happened and the numbers are the true cost.
    """

    work: float
    depth: float
    exponent: float
    sample_n: int
    full_n: int
    exact: bool = False

    @property
    def parallelism(self) -> float:
        """Average available parallelism (work / depth, >= 1)."""
        return self.work / max(self.depth, 1.0)


#: Exponent clips: sub-constant or beyond-cubic fits are sampling artifacts.
_WORK_EXP_RANGE = (0.5, 3.5)
_DEPTH_EXP_RANGE = (0.0, 2.0)


def _fit_exponent(y1: float, y2: float, n1: int, n2: int, lo: float, hi: float) -> float:
    if n2 <= n1 or y1 <= 0 or y2 <= 0:
        return 1.0
    k = math.log(y2 / y1) / math.log(n2 / n1)
    return min(hi, max(lo, k))


def estimate_cost(
    e: Expr,
    arg: Optional[Value] = None,
    env: Optional[dict[str, CostDenotation]] = None,
    sigma: Signature = EMPTY_SIGMA,
    counts: Optional[Mapping[str, int]] = None,
    caps: tuple[int, int] = (4, 8),
) -> CostEstimate:
    """Estimate the full-scale cost of ``e`` from truncated sample runs.

    ``env`` maps free variables to (sample) values; ``counts`` gives the full
    cardinality of each input collection (defaulting to the size of the value
    actually present in ``env``/``arg`` -- the right default when the caller
    passes full data, as the engine does at run time; the session layer passes
    catalog samples plus catalog counts).  Raises :class:`NRAEvalError` when
    the expression cannot be cost-evaluated (callers fall back to a static
    decision).
    """
    env = dict(env or {})
    lo_cap, hi_cap = caps

    def sampled(cap: int) -> tuple[Cost, int]:
        cut_env: dict[str, CostDenotation] = {}
        n = 0
        for name, d in env.items():
            if isinstance(d, CostFunction):
                cut_env[name] = d
            else:
                cut = truncate_sets(d, cap)
                cut_env[name] = cut
                n += value_cardinality(cut)
        cut_arg = truncate_sets(arg, cap) if arg is not None else None
        if cut_arg is not None:
            n += value_cardinality(cut_arg)
        _, cost = cost_run(e, cut_arg, cut_env, sigma)
        return cost, n

    c1, n1 = sampled(lo_cap)
    c2, n2 = sampled(hi_cap)

    full_n = 0
    for name, d in env.items():
        if isinstance(d, CostFunction):
            continue
        declared = counts.get(name) if counts else None
        full_n += declared if declared is not None else value_cardinality(d)
    if arg is not None:
        declared = counts.get("$arg") if counts else None
        full_n += declared if declared is not None else value_cardinality(arg)

    if full_n <= n2:
        # Everything fit under the cap: the sampled run *was* the real run.
        return CostEstimate(
            work=float(c2.work), depth=float(c2.depth),
            exponent=1.0, sample_n=n2, full_n=full_n, exact=True,
        )
    k_work = _fit_exponent(c1.work, c2.work, n1, n2, *_WORK_EXP_RANGE)
    k_depth = _fit_exponent(c1.depth, c2.depth, n1, n2, *_DEPTH_EXP_RANGE)
    scale = full_n / max(n2, 1)
    return CostEstimate(
        work=float(c2.work) * scale**k_work,
        depth=float(c2.depth) * scale**k_depth,
        exponent=k_work,
        sample_n=n2,
        full_n=full_n,
    )
