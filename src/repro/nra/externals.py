"""External functions: the signature ``Sigma`` of ``NRA(Sigma)`` (Section 3).

The paper parameterises the language by a set ``Sigma`` of external functions
``p : dom(p) -> codom(p)``.  Two members of ``Sigma`` play special roles:

* the **order predicate** ``<= : D x D -> B`` -- the languages that capture
  NC / AC^k are ``NRA1(dcr, <=)`` and ``NRA(bdcr, <=)``, i.e. the order is
  always available;
* **arithmetic and aggregates** (``+``, ``*``, ``-``, ``card``, ``sum`` ...)
  -- Proposition 6.3 shows any NC-computable externals can be added to the
  *bounded* language without leaving NC, whereas adding ``N`` with ``+`` to
  the unbounded flat language already yields exponential-space queries.

An :class:`ExternalFunction` packages a name, a typing rule and a Python
implementation over complex-object values.  A :class:`Signature` is a named
collection of them; the module ships the signatures used throughout the
examples, tests and benchmarks:

* :data:`ORDER_SIGMA` -- just ``leq``;
* :data:`ARITH_SIGMA` -- ``leq``, ``plus``, ``times``, ``monus`` on integer
  atoms;
* :data:`AGGREGATE_SIGMA` -- ``card``, ``sum_``, ``max_`` on sets of integer
  atoms (all NC-computable, as required by Proposition 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..objects.types import BASE, BOOL, ProdType, SetType, Type
from ..objects.values import BaseVal, BoolVal, PairVal, SetVal, Value
from ..objects.order import co_le
from .errors import NRAEvalError, NRATypeError

#: Implementation of an external function: a map on complex object values.
Impl = Callable[[Value], Value]
#: Optional custom typing rule, mapping the argument type to the result type.
TypeRule = Callable[[Type], Type]


@dataclass(frozen=True)
class ExternalFunction:
    """A named external function with its typing rule and implementation.

    When ``type_rule`` is ``None`` the function has the fixed type
    ``arg_type -> result_type``; otherwise ``type_rule`` receives the actual
    argument type and must return the result type (or raise
    :class:`NRATypeError`), which allows polymorphic externals such as
    cardinality.
    """

    name: str
    arg_type: Optional[Type]
    result_type: Optional[Type]
    impl: Impl
    description: str = ""
    type_rule: Optional[TypeRule] = None

    def result_type_for(self, actual_arg: Type) -> Type:
        if self.type_rule is not None:
            return self.type_rule(actual_arg)
        if self.arg_type is None or self.result_type is None:
            raise NRATypeError(f"external {self.name!r} has no typing rule")
        if actual_arg != self.arg_type:
            raise NRATypeError(
                f"external {self.name!r} expects argument type {self.arg_type!r}, "
                f"got {actual_arg!r}"
            )
        return self.result_type

    def __call__(self, v: Value) -> Value:
        return self.impl(v)


class Signature:
    """A collection of external functions, looked up by name."""

    def __init__(self, functions: Iterable[ExternalFunction] = ()) -> None:
        self._functions: dict[str, ExternalFunction] = {}
        for fn in functions:
            self.add(fn)

    def add(self, fn: ExternalFunction) -> None:
        if fn.name in self._functions:
            raise ValueError(f"external function {fn.name!r} already defined")
        self._functions[fn.name] = fn

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __getitem__(self, name: str) -> ExternalFunction:
        if name not in self._functions:
            raise NRAEvalError(f"unknown external function {name!r}")
        return self._functions[name]

    def __iter__(self) -> Iterator[ExternalFunction]:
        return iter(self._functions.values())

    def names(self) -> list[str]:
        return sorted(self._functions)

    def extend(self, other: "Signature") -> "Signature":
        """A new signature containing the functions of both (names must not clash)."""
        return Signature(list(self) + list(other))


# ---------------------------------------------------------------------------
# Implementations of the standard externals
# ---------------------------------------------------------------------------

def _expect_pair(v: Value, who: str) -> PairVal:
    if not isinstance(v, PairVal):
        raise NRAEvalError(f"{who} expects a pair argument, got {v!r}")
    return v


def _expect_int(v: Value, who: str) -> int:
    if not isinstance(v, BaseVal) or not isinstance(v.value, int):
        raise NRAEvalError(f"{who} expects an integer atom, got {v!r}")
    return v.value


def _leq_impl(v: Value) -> Value:
    p = _expect_pair(v, "leq")
    return BoolVal(co_le(p.fst, p.snd))


def _plus_impl(v: Value) -> Value:
    p = _expect_pair(v, "plus")
    return BaseVal(_expect_int(p.fst, "plus") + _expect_int(p.snd, "plus"))


def _times_impl(v: Value) -> Value:
    p = _expect_pair(v, "times")
    return BaseVal(_expect_int(p.fst, "times") * _expect_int(p.snd, "times"))


def _monus_impl(v: Value) -> Value:
    p = _expect_pair(v, "monus")
    return BaseVal(max(0, _expect_int(p.fst, "monus") - _expect_int(p.snd, "monus")))


def _card_impl(v: Value) -> Value:
    if not isinstance(v, SetVal):
        raise NRAEvalError(f"card expects a set, got {v!r}")
    return BaseVal(len(v))


def _card_type_rule(arg: Type) -> Type:
    if not isinstance(arg, SetType):
        raise NRATypeError(f"card expects a set type, got {arg!r}")
    return BASE


def _sum_impl(v: Value) -> Value:
    if not isinstance(v, SetVal):
        raise NRAEvalError(f"sum expects a set, got {v!r}")
    return BaseVal(sum(_expect_int(e, "sum") for e in v))


def _max_impl(v: Value) -> Value:
    if not isinstance(v, SetVal):
        raise NRAEvalError(f"max expects a set, got {v!r}")
    if not len(v):
        return BaseVal(0)
    return BaseVal(max(_expect_int(e, "max") for e in v))


#: The pair type ``D x D`` used by the binary externals.
_DXD = ProdType(BASE, BASE)

LEQ = ExternalFunction(
    "leq", _DXD, BOOL, _leq_impl,
    "the linear order <= on the base type (lifted order on atoms)",
)
PLUS = ExternalFunction("plus", _DXD, BASE, _plus_impl, "integer addition")
TIMES = ExternalFunction("times", _DXD, BASE, _times_impl, "integer multiplication")
MONUS = ExternalFunction("monus", _DXD, BASE, _monus_impl, "truncated subtraction")
CARD = ExternalFunction(
    "card", None, None, _card_impl, "cardinality of a set", type_rule=_card_type_rule
)
SUM = ExternalFunction("sum", SetType(BASE), BASE, _sum_impl, "sum of a set of integers")
MAX = ExternalFunction("max", SetType(BASE), BASE, _max_impl, "maximum of a set of integers")

#: ``NRA(<=)``: just the order.
ORDER_SIGMA = Signature([LEQ])
#: Order plus integer arithmetic (the ``NRA1(N, +, dcr)`` setting of Prop 6.3).
ARITH_SIGMA = Signature([LEQ, PLUS, TIMES, MONUS])
#: Order, arithmetic and NC-computable aggregates (the positive side of Prop 6.3).
AGGREGATE_SIGMA = Signature([LEQ, PLUS, TIMES, MONUS, CARD, SUM, MAX])
#: The empty signature: plain ``NRA``.
EMPTY_SIGMA = Signature([])
