"""Type checking for NRA expressions.

The paper's NRA is simply typed over the complex object types; functions
``s -> t`` occur only as parameters of ``ext``, the recursions and the
iterators -- they are second class (no sets of functions).  The checker infers
a :class:`FunType` for lambdas and the recursion constructs, and a complex
object type for everything else.

Besides plain inference the module provides the *language restriction*
predicates the theorems are phrased with:

* :func:`in_nra1` -- all types occurring in the expression (inputs, outputs
  and intermediates) have set height <= 1, i.e. the expression lives in the
  flat language ``NRA1``;
* :func:`uses_only_bounded_recursion` -- every recursion/iteration construct
  is one of the bounded forms (``bdcr``, ``bsri``, ``blog_loop``, ``bloop``),
  as required over complex objects (Theorem 6.1);
* :func:`externals_used` -- which names of the signature the expression
  mentions (e.g. to check membership in ``NRA(<=)`` rather than a richer
  signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..objects.types import ProdType, SetType, Type, is_ps_type, set_height
from ..objects.values import check_type
from . import ast
from .ast import Expr
from .errors import NRATypeError
from .externals import EMPTY_SIGMA, Signature


@dataclass(frozen=True)
class FunType:
    """The type ``arg -> result`` of a function expression.

    Not a complex object type: functions cannot be stored in sets or pairs,
    mirroring the paper where function types only appear in typing rules.
    """

    arg: Type
    result: Type

    def __repr__(self) -> str:
        return f"({self.arg!r} -> {self.result!r})"


#: A type as assigned to an expression: either a complex object type or a
#: function type.
ExprType = "Type | FunType"

#: A typing environment: variable name -> complex object type.
TypeEnv = dict


def infer(
    e: Expr,
    env: Optional[dict[str, Type]] = None,
    sigma: Signature = EMPTY_SIGMA,
    collected: Optional[list[tuple[Expr, object]]] = None,
) -> "Type | FunType":
    """Infer the type of an NRA expression.

    ``env`` maps free variables to their (complex object) types; ``sigma`` is
    the signature of external functions; if ``collected`` is given, every
    visited subexpression is appended together with its inferred type (used by
    the NRA1 membership check).  Raises :class:`NRATypeError` on ill-typed
    expressions.
    """
    env = env or {}
    t = _infer(e, env, sigma, collected)
    return t


def _co(t: "Type | FunType", what: str) -> Type:
    if isinstance(t, FunType):
        raise NRATypeError(f"{what} must have a complex object type, found function type {t!r}")
    return t


def _fn(t: "Type | FunType", what: str) -> FunType:
    if not isinstance(t, FunType):
        raise NRATypeError(f"{what} must be a function, found {t!r}")
    return t


def _same(a: Type, b: Type, what: str) -> Type:
    if a != b:
        raise NRATypeError(f"{what}: type mismatch, {a!r} vs {b!r}")
    return a


def _infer(
    e: Expr,
    env: dict[str, Type],
    sigma: Signature,
    collected: Optional[list[tuple[Expr, object]]],
) -> "Type | FunType":
    result = _infer_node(e, env, sigma, collected)
    if collected is not None:
        collected.append((e, result))
    return result


def _infer_node(
    e: Expr,
    env: dict[str, Type],
    sigma: Signature,
    collected: Optional[list[tuple[Expr, object]]],
) -> "Type | FunType":
    if isinstance(e, ast.Const):
        if not check_type(e.value, e.type):
            raise NRATypeError(f"constant {e.value!r} does not have declared type {e.type!r}")
        return e.type
    if isinstance(e, ast.EmptySet):
        return SetType(e.elem_type)
    if isinstance(e, ast.Singleton):
        return SetType(_co(_infer(e.item, env, sigma, collected), "singleton element"))
    if isinstance(e, ast.Union):
        lt = _infer(e.left, env, sigma, collected)
        rt = _infer(e.right, env, sigma, collected)
        lt = _co(lt, "union operand")
        rt = _co(rt, "union operand")
        if not isinstance(lt, SetType) or not isinstance(rt, SetType):
            raise NRATypeError(f"union expects sets, got {lt!r} and {rt!r}")
        return _same(lt, rt, "union")
    if isinstance(e, ast.UnitConst):
        from ..objects.types import UNIT

        return UNIT
    if isinstance(e, ast.Pair):
        return ProdType(
            _co(_infer(e.fst, env, sigma, collected), "pair component"),
            _co(_infer(e.snd, env, sigma, collected), "pair component"),
        )
    if isinstance(e, ast.Proj1):
        pt = _co(_infer(e.pair, env, sigma, collected), "projection argument")
        if not isinstance(pt, ProdType):
            raise NRATypeError(f"pi1 expects a pair, got {pt!r}")
        return pt.fst
    if isinstance(e, ast.Proj2):
        pt = _co(_infer(e.pair, env, sigma, collected), "projection argument")
        if not isinstance(pt, ProdType):
            raise NRATypeError(f"pi2 expects a pair, got {pt!r}")
        return pt.snd
    if isinstance(e, ast.BoolConst):
        from ..objects.types import BOOL

        return BOOL
    if isinstance(e, ast.Eq):
        lt = _co(_infer(e.left, env, sigma, collected), "equality operand")
        rt = _co(_infer(e.right, env, sigma, collected), "equality operand")
        _same(lt, rt, "equality")
        from ..objects.types import BOOL

        return BOOL
    if isinstance(e, ast.IsEmpty):
        st = _co(_infer(e.set, env, sigma, collected), "empty() argument")
        if not isinstance(st, SetType):
            raise NRATypeError(f"empty() expects a set, got {st!r}")
        from ..objects.types import BOOL

        return BOOL
    if isinstance(e, ast.If):
        from ..objects.types import BOOL

        ct = _co(_infer(e.cond, env, sigma, collected), "condition")
        if ct != BOOL:
            raise NRATypeError(f"if-condition must be boolean, got {ct!r}")
        tt = _co(_infer(e.then, env, sigma, collected), "then-branch")
        et = _co(_infer(e.orelse, env, sigma, collected), "else-branch")
        return _same(tt, et, "if-branches")
    if isinstance(e, ast.Var):
        if e.name not in env:
            raise NRATypeError(f"unbound variable {e.name!r}")
        return env[e.name]
    if isinstance(e, ast.Lambda):
        inner_env = dict(env)
        inner_env[e.var] = e.var_type
        body_t = _co(_infer(e.body, inner_env, sigma, collected), "lambda body")
        return FunType(e.var_type, body_t)
    if isinstance(e, ast.Apply):
        ft = _fn(_infer(e.func, env, sigma, collected), "applied expression")
        at = _co(_infer(e.arg, env, sigma, collected), "argument")
        _same(ft.arg, at, "application")
        return ft.result
    if isinstance(e, ast.Ext):
        ft = _fn(_infer(e.func, env, sigma, collected), "ext parameter")
        if not isinstance(ft.result, SetType):
            raise NRATypeError(f"ext(f) needs f : s -> {{t}}, got result {ft.result!r}")
        return FunType(SetType(ft.arg), ft.result)
    if isinstance(e, ast.ExternalCall):
        fn = sigma[e.name]
        at = _co(_infer(e.arg, env, sigma, collected), "external argument")
        return fn.result_type_for(at)
    if isinstance(e, (ast.Dcr, ast.Sru)):
        return _infer_union_recursion(e, env, sigma, collected, bounded=False)
    if isinstance(e, ast.Bdcr):
        return _infer_union_recursion(e, env, sigma, collected, bounded=True)
    if isinstance(e, (ast.Sri, ast.Esr)):
        return _infer_insert_recursion(e, env, sigma, collected, bounded=False)
    if isinstance(e, ast.Bsri):
        return _infer_insert_recursion(e, env, sigma, collected, bounded=True)
    if isinstance(e, (ast.LogLoop, ast.Loop)):
        ft = _fn(_infer(e.step, env, sigma, collected), "loop step")
        _same(ft.arg, ft.result, "loop step must have type t -> t")
        return FunType(ProdType(SetType(e.set_elem_type), ft.arg), ft.result)
    if isinstance(e, (ast.BlogLoop, ast.Bloop)):
        ft = _fn(_infer(e.step, env, sigma, collected), "bounded loop step")
        _same(ft.arg, ft.result, "loop step must have type t -> t")
        bt = _co(_infer(e.bound, env, sigma, collected), "loop bound")
        _same(bt, ft.result, "loop bound")
        if not is_ps_type(ft.result):
            raise NRATypeError(
                f"bounded iteration requires a PS-type, got {ft.result!r}"
            )
        return FunType(ProdType(SetType(e.set_elem_type), ft.arg), ft.result)
    raise NRATypeError(f"unknown expression node {type(e).__name__}")


def _infer_union_recursion(e, env, sigma, collected, bounded: bool) -> FunType:
    name = type(e).__name__.lower()
    seed_t = _co(_infer(e.seed, env, sigma, collected), f"{name} seed")
    item_t = _fn(_infer(e.item, env, sigma, collected), f"{name} item function")
    comb_t = _fn(_infer(e.combine, env, sigma, collected), f"{name} combine function")
    _same(item_t.result, seed_t, f"{name}: item function result vs seed")
    expected_comb_arg = ProdType(seed_t, seed_t)
    _same(comb_t.arg, expected_comb_arg, f"{name}: combine argument")
    _same(comb_t.result, seed_t, f"{name}: combine result")
    if bounded:
        bound_t = _co(_infer(e.bound, env, sigma, collected), f"{name} bound")
        _same(bound_t, seed_t, f"{name}: bound")
        if not is_ps_type(seed_t):
            raise NRATypeError(f"{name} requires a PS-type result, got {seed_t!r}")
    return FunType(SetType(item_t.arg), seed_t)


def _infer_insert_recursion(e, env, sigma, collected, bounded: bool) -> FunType:
    name = type(e).__name__.lower()
    seed_t = _co(_infer(e.seed, env, sigma, collected), f"{name} seed")
    ins_t = _fn(_infer(e.insert, env, sigma, collected), f"{name} insert function")
    if not isinstance(ins_t.arg, ProdType):
        raise NRATypeError(f"{name}: insert function must take a pair, got {ins_t.arg!r}")
    _same(ins_t.arg.snd, seed_t, f"{name}: insert accumulator type")
    _same(ins_t.result, seed_t, f"{name}: insert result type")
    if bounded:
        bound_t = _co(_infer(e.bound, env, sigma, collected), f"{name} bound")
        _same(bound_t, seed_t, f"{name}: bound")
        if not is_ps_type(seed_t):
            raise NRATypeError(f"{name} requires a PS-type result, got {seed_t!r}")
    return FunType(SetType(ins_t.arg.fst), seed_t)


# ---------------------------------------------------------------------------
# Language restriction predicates
# ---------------------------------------------------------------------------

def all_types(
    e: Expr, env: Optional[dict[str, Type]] = None, sigma: Signature = EMPTY_SIGMA
) -> list["Type | FunType"]:
    """All types assigned to subexpressions of ``e`` during inference."""
    collected: list[tuple[Expr, object]] = []
    infer(e, env, sigma, collected)
    return [t for _, t in collected]  # type: ignore[misc]


def in_nra1(
    e: Expr, env: Optional[dict[str, Type]] = None, sigma: Signature = EMPTY_SIGMA
) -> bool:
    """True iff every type occurring in ``e`` has set height <= 1 (NRA1).

    The paper restricts inputs, outputs *and intermediate types*; we check the
    type of every subexpression, including both sides of every function type.
    """
    for t in all_types(e, env, sigma):
        if isinstance(t, FunType):
            if set_height(t.arg) > 1 or set_height(t.result) > 1:
                return False
        elif set_height(t) > 1:
            return False
    return True


def uses_only_bounded_recursion(e: Expr) -> bool:
    """True iff every recursion/iteration node in ``e`` is a bounded form."""
    unbounded = (ast.Dcr, ast.Sru, ast.Sri, ast.Esr, ast.LogLoop, ast.Loop)
    return not any(isinstance(sub, unbounded) for sub in ast.subexpressions(e))


def recursion_free(e: Expr) -> bool:
    """True iff ``e`` contains no recursion or iteration construct at all."""
    nodes = ast.RECURSION_NODES + ast.ITERATOR_NODES
    return not any(isinstance(sub, nodes) for sub in ast.subexpressions(e))


def externals_used(e: Expr) -> frozenset[str]:
    """The names of the external functions mentioned in ``e``."""
    return frozenset(
        sub.name for sub in ast.subexpressions(e) if isinstance(sub, ast.ExternalCall)
    )
