"""Abstract syntax of the nested relational algebra NRA (Section 3).

The paper presents NRA as a simply-typed combinator calculus over complex
object types, with the following constructs (we keep the paper's names where
reasonable):

====================  =======================================================
construct             meaning
====================  =======================================================
``EmptySet``          the empty set ``{} : {t}``
``Singleton(e)``      the singleton set ``{e}``
``Union(e1, e2)``     set union
``UnitConst``         the empty tuple ``() : unit``
``Pair(e1, e2)``      pair formation
``Proj1(e)``/...      the projections ``pi1``, ``pi2``
``BoolConst(b)``      ``true`` / ``false``
``Eq(e1, e2)``        equality (primitive at base type; the evaluator accepts
                      it at all types, as the paper notes equality at all
                      types is definable)
``IsEmpty(e)``        the ``empty(e)`` test
``If(c, e1, e2)``     conditional
``Var``, ``Lambda``,  variables, abstraction and application (functions are
``Apply``             second class: they may not appear inside sets)
``Ext(f)``            ``ext(f)({x1, ..., xn}) = f(x1) U ... U f(xn)``
``ExternalCall``      application of a named external function from a
                      signature ``Sigma`` (e.g. the order ``<=``)
``Const(v)``          literal embedding of a complex object value
====================  =======================================================

plus the recursion and iteration constructs of Sections 2 and 7.1:
``Dcr``, ``Sru``, ``Sri``, ``Esr``, their bounded versions ``Bdcr`` and
``Bsri``, and the iterators ``Loop``, ``LogLoop``, ``Bloop``, ``BlogLoop``.

Each node is an immutable dataclass.  Variables are identified by name;
``Lambda`` stores the declared type of its variable, as in the paper's
``\\x^s. e``.  All node classes carry ``slots=True``: expressions are interned
into engine-side caches (plan cache, memo keys, the rewriter's ACU cache) and
slotted frozen dataclasses both shrink the nodes and keep attribute access on
the hot evaluator dispatch paths cheap.  The helpers at the bottom
(:func:`free_variables`, :func:`subexpressions`, :func:`substitute`,
:func:`expr_size`) are what the type checker, the depth analysis, the
evaluators and the compiler build on.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Optional

from ..objects.types import Type
from ..objects.values import Value


class Expr:
    """Base class of NRA expressions."""

    __slots__ = ()

    def children(self) -> Iterator["Expr"]:
        """Yield the immediate subexpressions, in syntactic order."""
        for f in fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if isinstance(v, Expr):
                yield v

    def __repr__(self) -> str:
        from .pretty import pretty

        return pretty(self)


# ---------------------------------------------------------------------------
# Core constructs
# ---------------------------------------------------------------------------

@dataclass(frozen=True, repr=False, slots=True)
class Const(Expr):
    """A literal complex object value, with its type."""

    value: Value
    type: Type


@dataclass(frozen=True, repr=False, slots=True)
class EmptySet(Expr):
    """The empty set at element type ``elem_type``: ``{} : {elem_type}``."""

    elem_type: Type


@dataclass(frozen=True, repr=False, slots=True)
class Singleton(Expr):
    """The singleton set ``{e}``."""

    item: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Union(Expr):
    """Set union ``e1 U e2``."""

    left: Expr
    right: Expr


@dataclass(frozen=True, repr=False, slots=True)
class UnitConst(Expr):
    """The empty tuple ``()`` of type ``unit``."""


@dataclass(frozen=True, repr=False, slots=True)
class Pair(Expr):
    """Pair formation ``(e1, e2)``."""

    fst: Expr
    snd: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Proj1(Expr):
    """First projection ``pi1 e``."""

    pair: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Proj2(Expr):
    """Second projection ``pi2 e``."""

    pair: Expr


@dataclass(frozen=True, repr=False, slots=True)
class BoolConst(Expr):
    """A boolean constant ``true`` or ``false``."""

    value: bool


@dataclass(frozen=True, repr=False, slots=True)
class Eq(Expr):
    """Equality test ``e1 = e2``.

    The paper's grammar gives equality at the base type ``D`` only and notes
    that equality at all types is then expressible; for convenience the
    evaluator accepts ``Eq`` at every type (structural equality of canonical
    values), and the type checker only requires both sides to have the same
    type.
    """

    left: Expr
    right: Expr


@dataclass(frozen=True, repr=False, slots=True)
class IsEmpty(Expr):
    """The emptiness test ``empty(e) : B``."""

    set: Expr


@dataclass(frozen=True, repr=False, slots=True)
class If(Expr):
    """Conditional ``if c then e1 else e2``."""

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Var(Expr):
    """A variable occurrence.  The type is attached by ``Lambda`` binders."""

    name: str


@dataclass(frozen=True, repr=False, slots=True)
class Lambda(Expr):
    """Function abstraction ``\\x^s. body`` with declared argument type ``s``."""

    var: str
    var_type: Type
    body: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Apply(Expr):
    """Function application ``f(e)``."""

    func: Expr
    arg: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Ext(Expr):
    """The ``ext(f)`` construct: map ``f`` over a set and union the results.

    ``ext(f)({x1, ..., xn}) = f(x1) U ... U f(xn)``.  The paper keeps this as
    a primitive (rather than defining it with ``sru``) precisely because it is
    a *single* parallel step: all ``f(xi)`` are independent.
    """

    func: Expr


@dataclass(frozen=True, repr=False, slots=True)
class ExternalCall(Expr):
    """Application of a named external function to an argument expression.

    External functions come from a signature ``Sigma`` (see
    :mod:`repro.nra.externals`); the distinguished order predicate ``<=`` of
    the ordered languages ``NRA(<=)`` is one of them.
    """

    name: str
    arg: Expr


# ---------------------------------------------------------------------------
# Recursion on sets and iterators
# ---------------------------------------------------------------------------

@dataclass(frozen=True, repr=False, slots=True)
class Dcr(Expr):
    """Divide and conquer recursion ``dcr(e, f, u)`` as a function ``{s} -> t``.

    ``seed`` is the value at the empty set, ``item`` the function applied to
    singletons, ``combine`` the binary combination.  The node itself denotes a
    *function*; apply it to a set with :class:`Apply`.
    """

    seed: Expr
    item: Expr
    combine: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Sru(Expr):
    """Structural recursion on the union presentation, ``sru(e, f, u)``."""

    seed: Expr
    item: Expr
    combine: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Sri(Expr):
    """Structural recursion on the insert presentation, ``sri(e, i)``."""

    seed: Expr
    insert: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Esr(Expr):
    """Element-step recursion ``esr(e, i)``."""

    seed: Expr
    insert: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Bdcr(Expr):
    """Bounded divide and conquer recursion ``bdcr(e, f, u, b)``."""

    seed: Expr
    item: Expr
    combine: Expr
    bound: Expr


@dataclass(frozen=True, repr=False, slots=True)
class Bsri(Expr):
    """Bounded insert recursion ``bsri(e, i, b)``."""

    seed: Expr
    insert: Expr
    bound: Expr


@dataclass(frozen=True, repr=False, slots=True)
class LogLoop(Expr):
    """The logarithmic iterator ``log_loop(f) : {s} x t -> t`` (Section 7.1).

    ``set_elem_type`` is the element type ``s`` of the set whose cardinality
    controls the number of iterations; the paper leaves it implicit, but the
    combinator typing needs it spelled out.
    """

    step: Expr
    set_elem_type: Type


@dataclass(frozen=True, repr=False, slots=True)
class Loop(Expr):
    """The linear iterator ``loop(f) : {s} x t -> t``."""

    step: Expr
    set_elem_type: Type


@dataclass(frozen=True, repr=False, slots=True)
class BlogLoop(Expr):
    """The bounded logarithmic iterator ``blog_loop(f, b)``."""

    step: Expr
    bound: Expr
    set_elem_type: Type


@dataclass(frozen=True, repr=False, slots=True)
class Bloop(Expr):
    """The bounded linear iterator ``bloop(f, b)``."""

    step: Expr
    bound: Expr
    set_elem_type: Type


#: Nodes that denote one of the recursion-on-sets constructs (used by the
#: depth analysis and the sublanguage restrictions).
RECURSION_NODES = (Dcr, Sru, Sri, Esr, Bdcr, Bsri)
#: Nodes that denote one of the iterators.
ITERATOR_NODES = (LogLoop, Loop, BlogLoop, Bloop)


# ---------------------------------------------------------------------------
# Generic helpers
# ---------------------------------------------------------------------------

def subexpressions(e: Expr) -> Iterator[Expr]:
    """Yield ``e`` and all of its subexpressions, preorder."""
    yield e
    for child in e.children():
        yield from subexpressions(child)


def expr_size(e: Expr) -> int:
    """Number of AST nodes."""
    return sum(1 for _ in subexpressions(e))


def free_variables(e: Expr) -> frozenset[str]:
    """The free variables of an expression."""
    if isinstance(e, Var):
        return frozenset({e.name})
    if isinstance(e, Lambda):
        return free_variables(e.body) - {e.var}
    result: frozenset[str] = frozenset()
    for child in e.children():
        result |= free_variables(child)
    return result


def _rebuild(e: Expr, new_children: list[Expr]) -> Expr:
    """Rebuild a node with replaced Expr children (non-Expr fields preserved)."""
    kwargs = {}
    it = iter(new_children)
    for f in fields(e):  # type: ignore[arg-type]
        v = getattr(e, f.name)
        kwargs[f.name] = next(it) if isinstance(v, Expr) else v
    return type(e)(**kwargs)


def map_children(e: Expr, fn) -> Expr:
    """Apply ``fn`` to each immediate subexpression and rebuild the node."""
    new_children = [fn(c) for c in e.children()]
    if not new_children:
        return e
    return _rebuild(e, new_children)


_FRESH_COUNTER = [0]


def fresh_name(base: str = "x") -> str:
    """Generate a variable name not used before in this process."""
    _FRESH_COUNTER[0] += 1
    return f"{base}%{_FRESH_COUNTER[0]}"


def substitute(e: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution of ``replacement`` for ``Var(name)`` in ``e``."""
    if isinstance(e, Var):
        return replacement if e.name == name else e
    if isinstance(e, Lambda):
        if e.var == name:
            return e
        if e.var in free_variables(replacement):
            renamed = fresh_name(e.var.split("%")[0])
            body = substitute(e.body, e.var, Var(renamed))
            return Lambda(renamed, e.var_type, substitute(body, name, replacement))
        return Lambda(e.var, e.var_type, substitute(e.body, name, replacement))
    return map_children(e, lambda c: substitute(c, name, replacement))


def lam(var: str, var_type: Type, body: Expr) -> Lambda:
    """Convenience constructor for :class:`Lambda`."""
    return Lambda(var, var_type, body)


def lam2(x: str, x_type: Type, y: str, y_type: Type, body: Expr) -> Lambda:
    """The paper's ``\\(x, y). e`` sugar: a unary lambda over a pair.

    ``lam2(x, sx, y, sy, e)`` builds ``\\z^(sx x sy). e[pi1 z / x, pi2 z / y]``.
    """
    from ..objects.types import ProdType

    z = fresh_name("p")
    body2 = substitute(body, x, Proj1(Var(z)))
    body2 = substitute(body2, y, Proj2(Var(z)))
    return Lambda(z, ProdType(x_type, y_type), body2)
