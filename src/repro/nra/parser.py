"""A small surface syntax for NRA expressions.

The paper presents NRA as an abstract calculus; for examples, tests and
interactive exploration a concrete syntax is convenient.  The grammar accepted
here matches the output of :func:`repro.nra.pretty.pretty`::

    expr     ::= lambda | ifexpr | app
    lambda   ::= '\\' IDENT ':' type '.' expr
    ifexpr   ::= 'if' expr 'then' expr 'else' expr
    app      ::= atom ( '(' expr ')' )*
    atom     ::= 'true' | 'false' | '()' | NUMBER | IDENT
               | 'empty' '[' type ']'
               | 'union' '(' expr ',' expr ')'
               | 'pi1' '(' expr ')' | 'pi2' '(' expr ')'
               | 'eq' '(' expr ',' expr ')'
               | 'isempty' '(' expr ')'
               | 'ext' '(' expr ')'
               | '@' IDENT '(' expr ')'
               | 'dcr' '(' expr ';' expr ';' expr ')'
               | 'sru' '(' expr ';' expr ';' expr ')'
               | 'sri' '(' expr ';' expr ')' | 'esr' '(' expr ';' expr ')'
               | 'bdcr' '(' expr ';' expr ';' expr ';' expr ')'
               | 'bsri' '(' expr ';' expr ';' expr ')'
               | 'logloop' '[' type ']' '(' expr ')'
               | 'loop' '[' type ']' '(' expr ')'
               | 'blogloop' '[' type ']' '(' expr ';' expr ')'
               | 'bloop' '[' type ']' '(' expr ';' expr ')'
               | '{' expr ( ',' expr )* '}'
               | '(' expr ',' expr ')' | '(' expr ')'

Types inside ``[...]`` use the syntax of
:func:`repro.objects.types.parse_type`.  ``NUMBER`` literals denote base-type
constants.  Set literals ``{e1, ..., en}`` are sugar for unions of singletons.

``IDENT`` admits a leading ``$``: parameter slots of prepared query templates
(see :func:`repro.api.query.param_var`) are free variables in the reserved
``$`` namespace, and the network service ships templates as this concrete
syntax -- ``parse(pretty(template))`` must round-trip them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..objects.types import BASE, Type, parse_type
from ..objects.values import BaseVal
from . import ast
from .ast import Expr
from .errors import NRAParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<unit>\(\))
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_%'$]*)
  | (?P<symbol>[\\:.;,(){}\[\]@])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "true", "false", "if", "then", "else", "empty", "union", "pi1", "pi2",
    "eq", "isempty", "ext", "dcr", "sru", "sri", "esr", "bdcr", "bsri",
    "logloop", "loop", "blogloop", "bloop",
}


@dataclass
class _Token:
    kind: str  # 'number' | 'ident' | 'symbol' | 'unit'
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise NRAParseError(f"unexpected character {source[pos]!r} at position {pos}")
        pos = m.end()
        kind = m.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, m.group(), m.start()))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token utilities ----------------------------------------------------------
    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise NRAParseError("unexpected end of input")
        self.index += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise NRAParseError(
                f"expected {text!r} but found {tok.text!r} at position {tok.pos}"
            )
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> Expr:
        e = self.parse_expr()
        if self.peek() is not None:
            tok = self.peek()
            raise NRAParseError(f"trailing input at position {tok.pos}: {tok.text!r}")
        return e

    def parse_expr(self) -> Expr:
        if self.at("\\"):
            return self.parse_lambda()
        if self.at("if"):
            return self.parse_if()
        return self.parse_app()

    def parse_lambda(self) -> Expr:
        self.expect("\\")
        var = self.next()
        if var.kind != "ident":
            raise NRAParseError(f"expected a variable name at position {var.pos}")
        self.expect(":")
        var_type = self.parse_bracketless_type()
        self.expect(".")
        body = self.parse_expr()
        return ast.Lambda(var.text, var_type, body)

    def parse_if(self) -> Expr:
        self.expect("if")
        cond = self.parse_expr()
        self.expect("then")
        then = self.parse_expr()
        self.expect("else")
        orelse = self.parse_expr()
        return ast.If(cond, then, orelse)

    def parse_app(self) -> Expr:
        e = self.parse_atom()
        while self.at("("):
            self.expect("(")
            arg = self.parse_expr()
            if self.at(","):
                self.expect(",")
                snd = self.parse_expr()
                arg = ast.Pair(arg, snd)
            self.expect(")")
            e = ast.Apply(e, arg)
        return e

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok is None:
            raise NRAParseError("unexpected end of input")
        if tok.kind == "number":
            self.next()
            return ast.Const(BaseVal(int(tok.text)), BASE)
        if tok.kind == "unit":
            self.next()
            return ast.UnitConst()
        if tok.text == "true":
            self.next()
            return ast.BoolConst(True)
        if tok.text == "false":
            self.next()
            return ast.BoolConst(False)
        if tok.text == "empty":
            self.next()
            elem = self.parse_bracketed_type()
            return ast.EmptySet(elem)
        if tok.text == "union":
            args = self.parse_arguments("union", 2, ",")
            return ast.Union(args[0], args[1])
        if tok.text == "pi1":
            args = self.parse_arguments("pi1", 1)
            return ast.Proj1(args[0])
        if tok.text == "pi2":
            args = self.parse_arguments("pi2", 1)
            return ast.Proj2(args[0])
        if tok.text == "eq":
            args = self.parse_arguments("eq", 2, ",")
            return ast.Eq(args[0], args[1])
        if tok.text == "isempty":
            args = self.parse_arguments("isempty", 1)
            return ast.IsEmpty(args[0])
        if tok.text == "ext":
            args = self.parse_arguments("ext", 1)
            return ast.Ext(args[0])
        if tok.text == "@":
            self.next()
            name = self.next()
            if name.kind != "ident":
                raise NRAParseError(f"expected an external name at position {name.pos}")
            self.expect("(")
            arg = self.parse_expr()
            if self.at(","):
                self.expect(",")
                snd = self.parse_expr()
                arg = ast.Pair(arg, snd)
            self.expect(")")
            return ast.ExternalCall(name.text, arg)
        if tok.text in ("dcr", "sru"):
            args = self.parse_arguments(tok.text, 3, ";")
            cls = ast.Dcr if tok.text == "dcr" else ast.Sru
            return cls(args[0], args[1], args[2])
        if tok.text in ("sri", "esr"):
            args = self.parse_arguments(tok.text, 2, ";")
            cls = ast.Sri if tok.text == "sri" else ast.Esr
            return cls(args[0], args[1])
        if tok.text == "bdcr":
            args = self.parse_arguments("bdcr", 4, ";")
            return ast.Bdcr(args[0], args[1], args[2], args[3])
        if tok.text == "bsri":
            args = self.parse_arguments("bsri", 3, ";")
            return ast.Bsri(args[0], args[1], args[2])
        if tok.text in ("logloop", "loop"):
            self.next()
            elem = self.parse_bracketed_type()
            self.expect("(")
            step = self.parse_expr()
            self.expect(")")
            cls = ast.LogLoop if tok.text == "logloop" else ast.Loop
            return cls(step, elem)
        if tok.text in ("blogloop", "bloop"):
            self.next()
            elem = self.parse_bracketed_type()
            self.expect("(")
            step = self.parse_expr()
            self.expect(";")
            bound = self.parse_expr()
            self.expect(")")
            cls = ast.BlogLoop if tok.text == "blogloop" else ast.Bloop
            return cls(step, bound, elem)
        if tok.text == "{":
            return self.parse_set_literal()
        if tok.text == "(":
            self.next()
            first = self.parse_expr()
            if self.at(","):
                self.expect(",")
                second = self.parse_expr()
                self.expect(")")
                return ast.Pair(first, second)
            self.expect(")")
            return first
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            self.next()
            return ast.Var(tok.text)
        raise NRAParseError(f"unexpected token {tok.text!r} at position {tok.pos}")

    def parse_set_literal(self) -> Expr:
        start = self.expect("{")
        items = [self.parse_expr()]
        while self.at(","):
            self.expect(",")
            items.append(self.parse_expr())
        self.expect("}")
        expr: Expr = ast.Singleton(items[0])
        for item in items[1:]:
            expr = ast.Union(expr, ast.Singleton(item))
        del start
        return expr

    def parse_arguments(self, name: str, count: int, sep: str = ",") -> list[Expr]:
        self.expect(name)
        self.expect("(")
        args = [self.parse_expr()]
        while len(args) < count:
            self.expect(sep)
            args.append(self.parse_expr())
        self.expect(")")
        return args

    def parse_bracketed_type(self) -> Type:
        self.expect("[")
        return self._parse_type_until("]")

    def parse_bracketless_type(self) -> Type:
        """Parse a type terminated by a '.' (the body separator of a lambda)."""
        return self._parse_type_until(".", consume_terminator=False)

    def _parse_type_until(self, terminator: str, consume_terminator: bool = True) -> Type:
        pieces: list[str] = []
        nesting = 0
        while True:
            tok = self.peek()
            if tok is None:
                raise NRAParseError("unexpected end of input while reading a type")
            if tok.text == terminator and nesting == 0:
                if consume_terminator:
                    self.next()
                break
            if tok.text in "{([":
                nesting += 1
            elif tok.text in "})]":
                nesting -= 1
            pieces.append(self.next().text)
        text = " ".join(pieces)
        try:
            return parse_type(text)
        except ValueError as exc:
            raise NRAParseError(f"invalid type {text!r}: {exc}") from exc


def parse(source: str) -> Expr:
    """Parse an NRA expression from its concrete syntax."""
    return _Parser(source).parse()
