"""The reference (sequential) interpreter for NRA expressions.

Evaluation maps a closed, well-typed expression to a complex object value, or
-- for expressions of function type -- to a :class:`FunctionValue` that can be
applied to values.  Functions are second class: they can be bound to variables
by beta-reduction of an application but never stored inside complex objects,
mirroring the paper's typing.

The recursion and iteration constructs delegate to the combinators of
:mod:`repro.recursion`, so the interpreter, the work/depth cost evaluator
(:mod:`repro.nra.cost`), the circuit compiler and the PRAM programs all share
one semantics and are cross-checked against each other in the integration
tests.

The interpreter is deliberately *sequential*: its job is to define what the
right answer is.  Parallel behaviour (the whole point of ``dcr``) is measured
by the cost evaluator and by the PRAM/circuit substrates, per the substitution
note in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Union

from ..objects.values import (
    BoolVal,
    PairVal,
    SetVal,
    UnitVal,
    Value,
)
from ..recursion.bounded import ps_intersect_values
from ..recursion.forms import EvaluationTrace, dcr, esr, sri, sru
from ..recursion.iterators import iterate, log_iterations
from . import ast
from .ast import Expr
from .errors import NRAEvalError
from .externals import EMPTY_SIGMA, Signature


@dataclass
class FunctionValue:
    """The runtime denotation of an expression of function type."""

    name: str
    call: Callable[[Value], Value]

    def __call__(self, v: Value) -> Value:
        return self.call(v)

    def __repr__(self) -> str:
        return f"<function {self.name}>"


#: What evaluation can produce.
Denotation = Union[Value, FunctionValue]
#: Runtime environments bind variables to denotations.
Env = Mapping[str, Denotation]


def evaluate(
    e: Expr,
    env: Optional[dict[str, Denotation]] = None,
    sigma: Signature = EMPTY_SIGMA,
    trace: Optional[EvaluationTrace] = None,
) -> Denotation:
    """Evaluate an NRA expression.

    ``env`` supplies the values of free variables, ``sigma`` the external
    functions.  When ``trace`` is given, the recursion combinators record
    their work and combining depth into it (the full parallel cost model lives
    in :mod:`repro.nra.cost`).  Raises :class:`NRAEvalError` on runtime type
    errors, which cannot occur on expressions accepted by the type checker
    and evaluated at matching environments.
    """
    env = env or {}
    return _eval(e, dict(env), sigma, trace)


def run(
    e: Expr,
    arg: Optional[Value] = None,
    env: Optional[dict[str, Denotation]] = None,
    sigma: Signature = EMPTY_SIGMA,
    trace: Optional[EvaluationTrace] = None,
) -> Value:
    """Evaluate ``e`` and, if an argument is given, apply the result to it.

    Convenience wrapper for the common pattern "evaluate this function
    expression and run it on this input"; always returns a complex object
    value (raises if the final denotation is still a function).
    """
    d = evaluate(e, env, sigma, trace)
    if arg is not None:
        d = _apply(d, arg)
    if isinstance(d, FunctionValue):
        raise NRAEvalError("result is a function; supply an argument to run it")
    return d


def _expect_value(d: Denotation, what: str) -> Value:
    if isinstance(d, FunctionValue):
        raise NRAEvalError(f"{what}: expected a complex object value, got a function")
    return d


def _expect_set(d: Denotation, what: str) -> SetVal:
    v = _expect_value(d, what)
    if not isinstance(v, SetVal):
        raise NRAEvalError(f"{what}: expected a set, got {v!r}")
    return v


def _expect_bool(d: Denotation, what: str) -> bool:
    v = _expect_value(d, what)
    if not isinstance(v, BoolVal):
        raise NRAEvalError(f"{what}: expected a boolean, got {v!r}")
    return v.value


def _expect_pair(d: Denotation, what: str) -> PairVal:
    v = _expect_value(d, what)
    if not isinstance(v, PairVal):
        raise NRAEvalError(f"{what}: expected a pair, got {v!r}")
    return v


def _expect_function(d: Denotation, what: str) -> FunctionValue:
    if not isinstance(d, FunctionValue):
        raise NRAEvalError(f"{what}: expected a function, got {d!r}")
    return d


def _apply(f: Denotation, v: Value) -> Value:
    fn = _expect_function(f, "application")
    result = fn(v)
    if isinstance(result, FunctionValue):  # pragma: no cover - defensive
        raise NRAEvalError("functions may not return functions")
    return result


def _eval(
    e: Expr,
    env: dict[str, Denotation],
    sigma: Signature,
    trace: Optional[EvaluationTrace],
) -> Denotation:
    if isinstance(e, ast.Const):
        return e.value
    if isinstance(e, ast.EmptySet):
        return SetVal()
    if isinstance(e, ast.Singleton):
        return SetVal([_expect_value(_eval(e.item, env, sigma, trace), "singleton")])
    if isinstance(e, ast.Union):
        left = _expect_set(_eval(e.left, env, sigma, trace), "union")
        right = _expect_set(_eval(e.right, env, sigma, trace), "union")
        return left.union(right)
    if isinstance(e, ast.UnitConst):
        return UnitVal()
    if isinstance(e, ast.Pair):
        return PairVal(
            _expect_value(_eval(e.fst, env, sigma, trace), "pair"),
            _expect_value(_eval(e.snd, env, sigma, trace), "pair"),
        )
    if isinstance(e, ast.Proj1):
        return _expect_pair(_eval(e.pair, env, sigma, trace), "pi1").fst
    if isinstance(e, ast.Proj2):
        return _expect_pair(_eval(e.pair, env, sigma, trace), "pi2").snd
    if isinstance(e, ast.BoolConst):
        return BoolVal(e.value)
    if isinstance(e, ast.Eq):
        left = _expect_value(_eval(e.left, env, sigma, trace), "equality")
        right = _expect_value(_eval(e.right, env, sigma, trace), "equality")
        return BoolVal(left == right)
    if isinstance(e, ast.IsEmpty):
        return BoolVal(len(_expect_set(_eval(e.set, env, sigma, trace), "empty()")) == 0)
    if isinstance(e, ast.If):
        cond = _expect_bool(_eval(e.cond, env, sigma, trace), "if-condition")
        branch = e.then if cond else e.orelse
        return _eval(branch, env, sigma, trace)
    if isinstance(e, ast.Var):
        if e.name not in env:
            raise NRAEvalError(f"unbound variable {e.name!r}")
        return env[e.name]
    if isinstance(e, ast.Lambda):
        return _make_closure(e, env, sigma, trace)
    if isinstance(e, ast.Apply):
        fn = _eval(e.func, env, sigma, trace)
        arg = _expect_value(_eval(e.arg, env, sigma, trace), "argument")
        return _apply(fn, arg)
    if isinstance(e, ast.Ext):
        fn = _expect_function(_eval(e.func, env, sigma, trace), "ext parameter")

        def ext_fn(v: Value, fn=fn) -> Value:
            if not isinstance(v, SetVal):
                raise NRAEvalError(f"ext applied to non-set {v!r}")
            result = SetVal()
            for x in v:
                piece = fn(x)
                if not isinstance(piece, SetVal):
                    raise NRAEvalError(f"ext parameter returned non-set {piece!r}")
                result = result.union(piece)
            return result

        return FunctionValue("ext", ext_fn)
    if isinstance(e, ast.ExternalCall):
        fn = sigma[e.name]
        return fn(_expect_value(_eval(e.arg, env, sigma, trace), f"external {e.name}"))
    if isinstance(e, (ast.Dcr, ast.Sru)):
        return self_recursion_union(e, env, sigma, trace, bounded=False)
    if isinstance(e, ast.Bdcr):
        return self_recursion_union(e, env, sigma, trace, bounded=True)
    if isinstance(e, (ast.Sri, ast.Esr)):
        return self_recursion_insert(e, env, sigma, trace, bounded=False)
    if isinstance(e, ast.Bsri):
        return self_recursion_insert(e, env, sigma, trace, bounded=True)
    if isinstance(e, (ast.LogLoop, ast.Loop, ast.BlogLoop, ast.Bloop)):
        return _make_iterator(e, env, sigma, trace)
    raise NRAEvalError(f"cannot evaluate expression node {type(e).__name__}")


def _make_closure(
    e: ast.Lambda,
    env: dict[str, Denotation],
    sigma: Signature,
    trace: Optional[EvaluationTrace],
) -> FunctionValue:
    captured = dict(env)

    def call(v: Value) -> Value:
        inner = dict(captured)
        inner[e.var] = v
        result = _eval(e.body, inner, sigma, trace)
        return _expect_value(result, "lambda body")

    return FunctionValue(f"\\{e.var}", call)


def self_recursion_union(
    e: Expr,
    env: dict[str, Denotation],
    sigma: Signature,
    trace: Optional[EvaluationTrace],
    bounded: bool,
) -> FunctionValue:
    """Build the runtime function for ``dcr``/``sru``/``bdcr`` nodes."""
    seed = _expect_value(_eval(e.seed, env, sigma, trace), "recursion seed")
    item_fn = _expect_function(_eval(e.item, env, sigma, trace), "recursion item")
    comb_fn = _expect_function(_eval(e.combine, env, sigma, trace), "recursion combine")
    bound = (
        _expect_value(_eval(e.bound, env, sigma, trace), "recursion bound")
        if bounded
        else None
    )
    use_sru = isinstance(e, ast.Sru)

    def item(x: Value) -> Value:
        result = item_fn(x)
        return ps_intersect_values(result, bound) if bound is not None else result

    def combine(a: Value, b: Value) -> Value:
        result = comb_fn(PairVal(a, b))
        return ps_intersect_values(result, bound) if bound is not None else result

    effective_seed = ps_intersect_values(seed, bound) if bound is not None else seed

    def call(v: Value) -> Value:
        if not isinstance(v, SetVal):
            raise NRAEvalError(f"recursion applied to non-set {v!r}")
        combinator = sru if use_sru else dcr
        return combinator(effective_seed, item, combine, v, trace)

    name = type(e).__name__.lower()
    return FunctionValue(name, call)


def self_recursion_insert(
    e: Expr,
    env: dict[str, Denotation],
    sigma: Signature,
    trace: Optional[EvaluationTrace],
    bounded: bool,
) -> FunctionValue:
    """Build the runtime function for ``sri``/``esr``/``bsri`` nodes."""
    seed = _expect_value(_eval(e.seed, env, sigma, trace), "recursion seed")
    insert_fn = _expect_function(_eval(e.insert, env, sigma, trace), "recursion insert")
    bound = (
        _expect_value(_eval(e.bound, env, sigma, trace), "recursion bound")
        if bounded
        else None
    )
    use_esr = isinstance(e, ast.Esr)

    def insert(x: Value, acc: Value) -> Value:
        result = insert_fn(PairVal(x, acc))
        return ps_intersect_values(result, bound) if bound is not None else result

    effective_seed = ps_intersect_values(seed, bound) if bound is not None else seed

    def call(v: Value) -> Value:
        if not isinstance(v, SetVal):
            raise NRAEvalError(f"recursion applied to non-set {v!r}")
        combinator = esr if use_esr else sri
        return combinator(effective_seed, insert, v, trace)

    name = type(e).__name__.lower()
    return FunctionValue(name, call)


def _make_iterator(
    e: Expr,
    env: dict[str, Denotation],
    sigma: Signature,
    trace: Optional[EvaluationTrace],
) -> FunctionValue:
    step_fn = _expect_function(_eval(e.step, env, sigma, trace), "iterator step")
    bounded = isinstance(e, (ast.BlogLoop, ast.Bloop))
    logarithmic = isinstance(e, (ast.LogLoop, ast.BlogLoop))
    bound = (
        _expect_value(_eval(e.bound, env, sigma, trace), "iterator bound")
        if bounded
        else None
    )

    def step(v: Value) -> Value:
        result = step_fn(v)
        return ps_intersect_values(result, bound) if bound is not None else result

    def call(v: Value) -> Value:
        p = _expect_pair(v, "iterator argument")
        x, y = p.fst, p.snd
        if not isinstance(x, SetVal):
            raise NRAEvalError(f"iterator cardinality argument must be a set, got {x!r}")
        start = ps_intersect_values(y, bound) if bound is not None else y
        rounds = log_iterations(len(x)) if logarithmic else len(x)
        return iterate(step, start, rounds, trace)

    name = type(e).__name__.lower()
    return FunctionValue(name, call)
