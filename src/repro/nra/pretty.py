"""Pretty printing of NRA expressions.

The output follows the concrete syntax accepted by :mod:`repro.nra.parser`,
so ``parse(pretty(e))`` is the identity up to alpha-renaming of bound
variables; this round-trip is one of the property-based tests.
"""

from __future__ import annotations

from ..objects.types import format_type
from . import ast
from .ast import Expr


def pretty(e: Expr) -> str:
    """Render an expression as a single-line string."""
    if isinstance(e, ast.Const):
        from ..objects.types import BASE
        from ..objects.values import BaseVal

        if isinstance(e.value, BaseVal) and isinstance(e.value.value, int) and e.type == BASE:
            return str(e.value.value)
        return f"const[{e.value!r} : {format_type(e.type)}]"
    if isinstance(e, ast.EmptySet):
        return f"empty[{format_type(e.elem_type)}]"
    if isinstance(e, ast.Singleton):
        return f"{{{pretty(e.item)}}}"
    if isinstance(e, ast.Union):
        return f"union({pretty(e.left)}, {pretty(e.right)})"
    if isinstance(e, ast.UnitConst):
        return "()"
    if isinstance(e, ast.Pair):
        return f"({pretty(e.fst)}, {pretty(e.snd)})"
    if isinstance(e, ast.Proj1):
        return f"pi1({pretty(e.pair)})"
    if isinstance(e, ast.Proj2):
        return f"pi2({pretty(e.pair)})"
    if isinstance(e, ast.BoolConst):
        return "true" if e.value else "false"
    if isinstance(e, ast.Eq):
        return f"eq({pretty(e.left)}, {pretty(e.right)})"
    if isinstance(e, ast.IsEmpty):
        return f"isempty({pretty(e.set)})"
    if isinstance(e, ast.If):
        return f"if {pretty(e.cond)} then {pretty(e.then)} else {pretty(e.orelse)}"
    if isinstance(e, ast.Var):
        return e.name
    if isinstance(e, ast.Lambda):
        return f"\\{e.var}:{format_type(e.var_type)}. {pretty(e.body)}"
    if isinstance(e, ast.Apply):
        return f"({pretty(e.func)})({pretty(e.arg)})"
    if isinstance(e, ast.Ext):
        return f"ext({pretty(e.func)})"
    if isinstance(e, ast.ExternalCall):
        return f"@{e.name}({pretty(e.arg)})"
    if isinstance(e, ast.Dcr):
        return f"dcr({pretty(e.seed)}; {pretty(e.item)}; {pretty(e.combine)})"
    if isinstance(e, ast.Sru):
        return f"sru({pretty(e.seed)}; {pretty(e.item)}; {pretty(e.combine)})"
    if isinstance(e, ast.Sri):
        return f"sri({pretty(e.seed)}; {pretty(e.insert)})"
    if isinstance(e, ast.Esr):
        return f"esr({pretty(e.seed)}; {pretty(e.insert)})"
    if isinstance(e, ast.Bdcr):
        return (
            f"bdcr({pretty(e.seed)}; {pretty(e.item)}; {pretty(e.combine)}; "
            f"{pretty(e.bound)})"
        )
    if isinstance(e, ast.Bsri):
        return f"bsri({pretty(e.seed)}; {pretty(e.insert)}; {pretty(e.bound)})"
    if isinstance(e, ast.LogLoop):
        return f"logloop[{format_type(e.set_elem_type)}]({pretty(e.step)})"
    if isinstance(e, ast.Loop):
        return f"loop[{format_type(e.set_elem_type)}]({pretty(e.step)})"
    if isinstance(e, ast.BlogLoop):
        return (
            f"blogloop[{format_type(e.set_elem_type)}]({pretty(e.step)}; {pretty(e.bound)})"
        )
    if isinstance(e, ast.Bloop):
        return f"bloop[{format_type(e.set_elem_type)}]({pretty(e.step)}; {pretty(e.bound)})"
    return f"<unknown {type(e).__name__}>"


def pretty_multiline(e: Expr, indent: int = 0, width: int = 72) -> str:
    """Render an expression over multiple lines when it would overflow ``width``.

    A best-effort formatter for examples and error messages: short expressions
    stay on one line, larger ones indent their principal subexpressions.
    """
    flat = pretty(e)
    pad = " " * indent
    if len(flat) + indent <= width or not list(e.children()):
        return pad + flat
    head = type(e).__name__.lower()
    lines = [pad + head + "("]
    for child in e.children():
        lines.append(pretty_multiline(child, indent + 2, width) + ",")
    lines.append(pad + ")")
    return "\n".join(lines)
