"""The nested relational algebra NRA with recursion on sets (Section 3).

* :mod:`repro.nra.ast` -- the expression syntax (core NRA, recursions,
  iterators, external calls);
* :mod:`repro.nra.typecheck` -- type inference and the language restriction
  predicates (``NRA1`` membership, bounded-only recursion, externals used);
* :mod:`repro.nra.eval` -- the reference sequential interpreter;
* :mod:`repro.nra.cost` -- the work/depth parallel cost semantics;
* :mod:`repro.nra.depth` -- depth of recursion nesting and the AC^k level;
* :mod:`repro.nra.derived` -- the derived relational operators of Section 3;
* :mod:`repro.nra.externals` -- external function signatures (order,
  arithmetic, aggregates);
* :mod:`repro.nra.parser` / :mod:`repro.nra.pretty` -- concrete syntax.
"""

from .ast import (
    Apply,
    Bdcr,
    BlogLoop,
    Bloop,
    BoolConst,
    Bsri,
    Const,
    Dcr,
    EmptySet,
    Eq,
    Esr,
    Expr,
    Ext,
    ExternalCall,
    If,
    IsEmpty,
    Lambda,
    LogLoop,
    Loop,
    Pair,
    Proj1,
    Proj2,
    Singleton,
    Sri,
    Sru,
    Union,
    UnitConst,
    Var,
    expr_size,
    free_variables,
    lam,
    lam2,
    subexpressions,
    substitute,
)
from .typecheck import (
    FunType,
    all_types,
    externals_used,
    in_nra1,
    infer,
    recursion_free,
    uses_only_bounded_recursion,
)
from .eval import FunctionValue, evaluate, run
from .cost import Cost, cost_evaluate, cost_run
from .depth import ac_level, count_recursion_nodes, recursion_depth, within_depth
from .externals import (
    AGGREGATE_SIGMA,
    ARITH_SIGMA,
    EMPTY_SIGMA,
    ORDER_SIGMA,
    ExternalFunction,
    Signature,
)
from .parser import parse
from .pretty import pretty, pretty_multiline
from .errors import (
    NRAError,
    NRAEvalError,
    NRAParseError,
    NRATypeError,
)

__all__ = [
    # ast
    "Expr", "Const", "EmptySet", "Singleton", "Union", "UnitConst", "Pair",
    "Proj1", "Proj2", "BoolConst", "Eq", "IsEmpty", "If", "Var", "Lambda",
    "Apply", "Ext", "ExternalCall", "Dcr", "Sru", "Sri", "Esr", "Bdcr", "Bsri",
    "LogLoop", "Loop", "BlogLoop", "Bloop",
    "lam", "lam2", "substitute", "free_variables", "subexpressions", "expr_size",
    # typecheck
    "infer", "FunType", "all_types", "in_nra1", "uses_only_bounded_recursion",
    "recursion_free", "externals_used",
    # eval / cost
    "evaluate", "run", "FunctionValue", "cost_evaluate", "cost_run", "Cost",
    # depth
    "recursion_depth", "within_depth", "ac_level", "count_recursion_nodes",
    # externals
    "Signature", "ExternalFunction", "ORDER_SIGMA", "ARITH_SIGMA",
    "AGGREGATE_SIGMA", "EMPTY_SIGMA",
    # syntax
    "parse", "pretty", "pretty_multiline",
    # errors
    "NRAError", "NRATypeError", "NRAEvalError", "NRAParseError",
]
