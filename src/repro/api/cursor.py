"""Result cursors: iterate large results without materializing python lists.

Engine results are canonical :class:`~repro.objects.values.SetVal` values --
interned, shared, cheap to hold.  What is *not* cheap is eagerly converting a
quarter-million-row result to a python list of tuples when the caller wanted
the first ten rows, or wanted to stream rows into a socket.  A
:class:`Cursor` wraps the raw result value and converts **one row at a time**
on demand (`to_python` per element), DB-API style:

    cur = session.execute(query)
    first = cur.fetchone()
    for row in cur:            # streams the rest, no list is ever built
        ...

``fetchall``/``fetchmany`` exist for callers who do want lists.  The raw
value stays available as :attr:`Cursor.value` (and is what the cross-checks
compare), so taking a cursor costs nothing over the old ``Engine.run``
return.  Scalar results (booleans from ``exists()``-style queries, pairs,
atoms) are one-row cursors; :meth:`scalar` unwraps them directly.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..objects.values import SetVal, Value, to_python


class Cursor:
    """A forward-only cursor over one query result."""

    def __init__(self, value: Value, rows_hook=None) -> None:
        self._value = value
        self._pos = 0
        # Session stats callback: called with the number of rows converted.
        self._rows_hook = rows_hook
        if isinstance(value, SetVal):
            self._elements = value.elements
        else:
            self._elements = (value,)

    # -- raw access ---------------------------------------------------------------

    @property
    def value(self) -> Value:
        """The untouched result value (canonical, interned)."""
        return self._value

    def scalar(self) -> Any:
        """The python form of a single-value result (bool / atom / tuple)."""
        if isinstance(self._value, SetVal):
            raise TypeError(
                f"result is a set of {len(self._elements)} rows, not a scalar; "
                "iterate or fetch instead"
            )
        return to_python(self._value)

    # -- streaming ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def rownumber(self) -> int:
        """How many rows have been fetched so far."""
        return self._pos

    def __iter__(self) -> Iterator[Any]:
        while self._pos < len(self._elements):
            row = to_python(self._elements[self._pos])
            self._pos += 1
            if self._rows_hook is not None:
                self._rows_hook(1)
            yield row

    def fetchone(self) -> Optional[Any]:
        """The next row as python data, or ``None`` when exhausted."""
        if self._pos >= len(self._elements):
            return None
        row = to_python(self._elements[self._pos])
        self._pos += 1
        if self._rows_hook is not None:
            self._rows_hook(1)
        return row

    def fetchmany(self, size: int = 1000) -> list[Any]:
        """Up to ``size`` further rows (an empty list when exhausted)."""
        if size < 0:
            raise ValueError("fetchmany size must be >= 0")
        stop = min(self._pos + size, len(self._elements))
        rows = [to_python(e) for e in self._elements[self._pos:stop]]
        if self._rows_hook is not None and rows:
            self._rows_hook(len(rows))
        self._pos = stop
        return rows

    def fetchall(self) -> list[Any]:
        """Every remaining row as a python list (materializes; opt-in)."""
        return self.fetchmany(len(self._elements) - self._pos)

    def fetch_values(self, size: int = 1000) -> list[Value]:
        """Up to ``size`` further rows as raw :class:`Value` objects.

        The serialization path of the network service: the wire format
        encodes interned values directly (``repro.objects.encoding``), so
        converting to python tuples/frozensets first would be wasted work.
        Advances the cursor and feeds the session's ``rows_streamed`` counter
        exactly like the python-data fetches.
        """
        if size < 0:
            raise ValueError("fetch_values size must be >= 0")
        stop = min(self._pos + size, len(self._elements))
        values = list(self._elements[self._pos:stop])
        if self._rows_hook is not None and values:
            self._rows_hook(len(values))
        self._pos = stop
        return values

    def rows(self) -> frozenset:
        """All rows as a frozenset of python data (order-free comparison aid)."""
        return frozenset(to_python(e) for e in self._elements) if isinstance(
            self._value, SetVal
        ) else frozenset((to_python(self._value),))

    def __repr__(self) -> str:
        kind = "set" if isinstance(self._value, SetVal) else "scalar"
        return f"<Cursor {kind} rows={len(self._elements)} at={self._pos}>"
