"""Prepared statements: split a query into a template plus parameter slots.

The engine's plan cache keys on the whole expression, so the classic serving
anti-pattern -- re-issuing the same query with a different constant -- used to
recompile per constant: every ``Const(k)`` yields a structurally distinct
tree, a fresh rewrite, and a fresh vectorized compile.  Preparation fixes the
keying, not the cache: the query is split into

* a **template**: one expression in which every parameter position is a free
  variable in the reserved ``$`` namespace, and
* **parameter slots**: name -> declared type, bound at execute time through
  the evaluation environment (exactly how collections already flow in).

Because every binding executes the *same* template object, the rewrite is
cached by ``Engine.optimize`` and the set-at-a-time plan by the vectorized
compiler **once per template** -- N distinct bindings cost one rewrite and one
compile, then N environment lookups.  That is the cache keying documented in
DESIGN.md and asserted by ``tests/api/test_session.py``.

Queries built with :class:`~repro.api.query.Q` are born parametrized
(``Q.param`` elaborates to a slot, never a constant).  For raw AST queries,
:func:`lift_constants` performs the split mechanically: every ``Const`` leaf
is hoisted into a slot (structurally equal constants share one slot) and its
original value is kept as the slot's *default* binding, so the prepared form
is a drop-in for the original expression.
"""

from __future__ import annotations

from typing import Optional

from ..nra import ast
from ..nra.ast import Expr, Var, map_children
from ..objects.types import Type
from ..objects.values import Value
from .cursor import Cursor
from .query import param_var


def lift_constants(e: Expr) -> tuple[Expr, dict[str, Type], dict[str, Value]]:
    """Hoist every ``Const`` leaf of ``e`` into a parameter slot.

    Returns ``(template, slot_types, defaults)`` where the template reads
    each lifted constant from the free variable ``$cN`` and ``defaults`` maps
    the slot names back to the original values.  Structurally equal constants
    collapse to one slot, so the template is as general as the expression
    allows.  ``BoolConst`` / ``EmptySet`` / ``UnitConst`` leaves are *not*
    lifted: they are language syntax, not data.
    """
    slots: dict[tuple, str] = {}
    types: dict[str, Type] = {}
    defaults: dict[str, Value] = {}

    def walk(x: Expr) -> Expr:
        if isinstance(x, ast.Const):
            key = (x.value, x.type)
            name = slots.get(key)
            if name is None:
                name = f"c{len(slots)}"
                slots[key] = name
                types[name] = x.type
                defaults[name] = x.value
            return Var(param_var(name))
        return map_children(x, walk)

    return walk(e), types, defaults


class PreparedStatement:
    """A query prepared against one session: bound once, executed many times."""

    __slots__ = ("session", "template", "param_types", "defaults", "label", "backend")

    def __init__(
        self,
        session,
        template: Expr,
        param_types: dict[str, Type],
        defaults: Optional[dict[str, Value]] = None,
        label: str = "prepared",
        backend: Optional[str] = None,
    ) -> None:
        self.session = session
        self.template = template
        self.param_types = dict(param_types)
        self.defaults = dict(defaults or {})
        self.label = label
        self.backend = backend

    @property
    def param_names(self) -> list[str]:
        return sorted(self.param_types)

    def execute(self, params: Optional[dict] = None, **named) -> Cursor:
        """Run the template with these bindings; plan caches hit by design."""
        bindings = dict(params or {})
        bindings.update(named)
        return self.session._execute_prepared(self, bindings)

    def executemany(self, bindings: list) -> list[Cursor]:
        """One cursor per binding, all through the session's batch path."""
        return self.session.executemany(self, bindings)

    def __repr__(self) -> str:
        ps = ", ".join(self.param_names)
        return f"<PreparedStatement {self.label} params=[{ps}]>"
