"""The lazy fluent :class:`Query` builder: NRA without AST constructors.

A ``Query`` is a *description* of an NRA expression, built by chaining
combinators off :class:`Q`::

    from repro.api import Q, Row

    two_hop = (Q.coll("edges")
                 .join(Q.coll("edges"),
                       left_key=lambda e: e.snd,
                       right_key=lambda f: f.fst,
                       result=lambda e, f: Row.pair(e.fst, f.snd)))
    reach   = Q.coll("edges").fix()
    from_0  = reach.where(lambda e: e.fst == Q.param("src"))

Nothing is evaluated -- and no AST is even built -- until the query is
**elaborated** against a schema (collection name -> complex object type),
which a :class:`~repro.api.session.Session` does automatically against its
:class:`~repro.api.catalog.Database`.  Elaboration produces a plain
:class:`repro.nra.ast.Expr` whose free variables are the collection names and
the ``$``-prefixed parameter slots; collections and parameters are then
supplied through the evaluation environment, never spliced into the tree.
That split is what makes prepared statements cache: the elaborated
*template* is structurally identical for every parameter binding, so the
engine's rewrite cache and the vectorized compile cache key on it once (see
:mod:`repro.api.prepare`).

Elaboration is cached per schema on the ``Query`` object itself, so repeated
execution of the *same* ``Query`` value hits every engine cache.  (Two
queries built by identical chains are semantically equal but may differ in
generated bound-variable names -- reuse the value, or prepare it.)

Combinator callables receive :class:`~repro.api.expr.Row` values (typed
wrappers over element expressions) and return rows; see
:mod:`repro.api.expr`.  The shapes produced are exactly the ones the
vectorized backend's compiler pattern-matches: ``where`` builds the fused
select, ``join`` the hash equi-join nest, ``fix`` the repeated-squaring
``log_loop`` whose inflationary step runs semi-naively.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..nra import ast
from ..nra.ast import (
    Apply,
    EmptySet,
    Expr,
    If,
    IsEmpty,
    Lambda,
    LogLoop,
    Pair,
    Singleton,
    Union as UnionE,
    Var,
    fresh_name,
)
from ..nra.derived import (
    bool_not,
    ext_apply,
    field_of,
    let,
    nest as nest_expr,
    rel_proj1,
    rel_proj2,
    unnest as unnest_expr,
)
from ..nra.externals import EMPTY_SIGMA, Signature
from ..nra.typecheck import infer
from ..objects.types import BOOL, ProdType, SetType, Type
from ..objects.values import Value, from_python, infer_type
from .expr import Row, RowLike, row_var, to_row

#: Parameter slots elaborate to free variables with this prefix; the prefix
#: cannot collide with user binders (``fresh_name`` uses ``base%N``) or with
#: catalog collection names (validated on registration).
PARAM_PREFIX = "$"

#: A schema: collection / free-variable name -> complex object type.
Schema = dict


def param_var(name: str) -> str:
    """The environment key a parameter named ``name`` binds through."""
    return PARAM_PREFIX + name


class ElabContext:
    """State threaded through one elaboration: schema plus discovered params."""

    def __init__(self, schema: Optional[Schema], sigma: Signature = EMPTY_SIGMA) -> None:
        self.schema: Schema = dict(schema or {})
        self.sigma = sigma
        self.params: dict[str, Type] = {}

    def collection_type(self, name: str, declared: Optional[Type]) -> Type:
        t = self.schema.get(name, declared)
        if t is None:
            raise KeyError(
                f"collection {name!r} has no declared type and is not in the schema"
            )
        if declared is not None and name in self.schema and self.schema[name] != declared:
            raise TypeError(
                f"collection {name!r}: declared type {declared!r} conflicts with "
                f"schema type {self.schema[name]!r}"
            )
        return t

    def declare_param(self, name: str, t: Type) -> None:
        old = self.params.get(name)
        if old is not None and old != t:
            raise TypeError(f"parameter {name!r} used at two types: {old!r} and {t!r}")
        self.params[name] = t

    def type_env(self) -> dict[str, Type]:
        env = dict(self.schema)
        env.update({param_var(n): t for n, t in self.params.items()})
        return env


# Parameter placeholders surface inside user callables, which run while a
# build is in flight; the context they must register their type with is the
# innermost active elaboration.  One stack per thread (elaboration never
# crosses threads).
_ELABORATIONS = threading.local()


def _push_ctx(ctx: ElabContext) -> None:
    stack = getattr(_ELABORATIONS, "stack", None)
    if stack is None:
        stack = _ELABORATIONS.stack = []
    stack.append(ctx)


def _pop_ctx() -> None:
    _ELABORATIONS.stack.pop()


def _current_ctx() -> ElabContext:
    stack = getattr(_ELABORATIONS, "stack", None)
    if not stack:
        raise RuntimeError(
            "Q.param(...) used outside a query elaboration; parameters only "
            "make sense inside Query combinator callables"
        )
    return stack[-1]


class Elaborated:
    """One elaboration result: the template, its type, and its parameter slots."""

    __slots__ = ("expr", "type", "params")

    def __init__(self, expr: Expr, type: Type, params: dict[str, Type]) -> None:
        self.expr = expr
        self.type = type
        self.params = params


#: A combinator callable over one row.
RowFn = Callable[[Row], RowLike]
#: A combinator callable over two rows (join results).
RowFn2 = Callable[[Row, Row], RowLike]


def _elem(t: Type, what: str) -> Type:
    if not isinstance(t, SetType):
        raise TypeError(f"{what} needs a set-typed query, got {t!r}")
    return t.elem


def _edge(t: Type, what: str) -> Type:
    e = _elem(t, what)
    if not isinstance(e, ProdType):
        raise TypeError(f"{what} needs a set of pairs, got element type {e!r}")
    return e


class Query:
    """A lazy query: elaborates to an NRA expression on demand.

    Queries are immutable; every combinator returns a new ``Query``.  The
    elaboration cache is keyed on the schema, so one ``Query`` value reused
    across calls (or prepared once) maps to one template expression and hence
    one engine plan.
    """

    __slots__ = ("_build", "_label", "_elab_cache")

    def __init__(self, build: Callable[[ElabContext], tuple[Expr, Type]], label: str) -> None:
        self._build = build
        self._label = label
        self._elab_cache: dict = {}

    def __repr__(self) -> str:
        return f"<Query {self._label}>"

    @property
    def label(self) -> str:
        return self._label

    # -- elaboration --------------------------------------------------------------

    def elaborate(
        self, schema: Optional[Schema] = None, sigma: Signature = EMPTY_SIGMA
    ) -> Elaborated:
        """Build the NRA template for this query against ``schema`` (cached)."""
        key = (tuple(sorted((schema or {}).items(), key=lambda kv: kv[0])), sigma)
        found = self._elab_cache.get(key)
        if found is not None:
            return found
        ctx = ElabContext(schema, sigma)
        _push_ctx(ctx)
        try:
            expr, t = self._build(ctx)
        finally:
            _pop_ctx()
        result = Elaborated(expr, t, dict(ctx.params))
        self._elab_cache[key] = result
        return result

    def infer_type(
        self, schema: Optional[Schema] = None, sigma: Signature = EMPTY_SIGMA
    ) -> Type:
        """Type check the elaborated template via :func:`repro.nra.typecheck.infer`.

        The builder threads types itself; this re-derives the result type from
        the template alone, so it doubles as a structural validation of the
        elaboration (used by the test suite and ``Session.explain``).
        """
        el = self.elaborate(schema, sigma)
        env = dict(schema or {})
        env.update({param_var(n): t for n, t in el.params.items()})
        t = infer(el.expr, env, sigma)
        if t != el.type:
            raise TypeError(
                f"elaboration type drift: builder says {el.type!r}, "
                f"type checker says {t!r}"
            )
        return t

    # -- element-wise combinators -------------------------------------------------

    def where(self, pred: RowFn) -> "Query":
        """Keep the rows satisfying ``pred`` (the fused-select shape)."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _elem(t, "where")
            x = fresh_name("w")
            p = to_row(pred(row_var(x, et)))
            if p.type != BOOL:
                raise TypeError(f"where predicate must be boolean, got {p.type!r}")
            body = If(p.expr, Singleton(Var(x)), EmptySet(et))
            return ext_apply(Lambda(x, et, body), src), t

        return Query(build, f"{self._label}.where(...)")

    #: SQL-flavoured alias for :meth:`where`.
    select = where

    def map(self, fn: RowFn) -> "Query":
        """Transform every row (``ext`` of a singleton body: the bulk-map shape)."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _elem(t, "map")
            x = fresh_name("m")
            out = to_row(fn(row_var(x, et)))
            body = Lambda(x, et, Singleton(out.expr))
            return ext_apply(body, src), SetType(out.type)

        return Query(build, f"{self._label}.map(...)")

    def flat_map(self, fn: Callable[[Row], "Query"]) -> "Query":
        """Map every row to a *query* (a set) and union the results (``ext``)."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _elem(t, "flat_map")
            x = fresh_name("fm")
            inner = fn(row_var(x, et))
            if not isinstance(inner, Query):
                raise TypeError("flat_map callable must return a Query")
            in_expr, in_t = inner._build(ctx)
            _elem(in_t, "flat_map body")
            return ext_apply(Lambda(x, et, in_expr), src), in_t

        return Query(build, f"{self._label}.flat_map(...)")

    # -- relational combinators ---------------------------------------------------

    def project(self, component: int) -> "Query":
        """Database projection of a set of pairs onto component ``1`` or ``2``."""
        if component not in (1, 2):
            raise ValueError("project component must be 1 or 2")

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _edge(t, "project")
            if component == 1:
                return rel_proj1(src, et.fst, et.snd), SetType(et.fst)
            return rel_proj2(src, et.fst, et.snd), SetType(et.snd)

        return Query(build, f"{self._label}.project({component})")

    def union(self, other: "Query") -> "Query":
        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            le, lt = self._build(ctx)
            re, rt = other._build(ctx)
            if lt != rt:
                raise TypeError(f"union of differently-typed queries: {lt!r} vs {rt!r}")
            return UnionE(le, re), lt

        return Query(build, f"({self._label} | {other._label})")

    __or__ = union

    def difference(self, other: "Query") -> "Query":
        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            from ..nra.derived import difference as diff_expr

            le, lt = self._build(ctx)
            re, rt = other._build(ctx)
            if lt != rt:
                raise TypeError(f"difference of differently-typed queries: {lt!r} vs {rt!r}")
            return diff_expr(le, re, _elem(lt, "difference")), lt

        return Query(build, f"({self._label} - {other._label})")

    __sub__ = difference

    def intersect(self, other: "Query") -> "Query":
        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            from ..nra.derived import intersection

            le, lt = self._build(ctx)
            re, rt = other._build(ctx)
            if lt != rt:
                raise TypeError(f"intersection of differently-typed queries: {lt!r} vs {rt!r}")
            return intersection(le, re, _elem(lt, "intersect")), lt

        return Query(build, f"({self._label} & {other._label})")

    __and__ = intersect

    def cross(self, other: "Query") -> "Query":
        """Cartesian product: pairs of one row from each side."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            from ..nra.derived import cartesian

            le, lt = self._build(ctx)
            re, rt = other._build(ctx)
            a, b = _elem(lt, "cross"), _elem(rt, "cross")
            return cartesian(le, re, a, b), SetType(ProdType(a, b))

        return Query(build, f"({self._label} x {other._label})")

    def join(
        self,
        other: "Query",
        left_key: RowFn,
        right_key: RowFn,
        result: Optional[RowFn2] = None,
    ) -> "Query":
        """Equi-join on ``left_key(l) = right_key(r)``.

        Elaborates to the nested ``ext``/``if``-equality shape the vectorized
        compiler turns into a hash join; every other backend evaluates it as
        the nested loop it literally is.  ``result`` defaults to the pair of
        the matching rows.
        """
        if result is None:
            result = Row.pair

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            le, lt = self._build(ctx)
            re, rt = other._build(ctx)
            a, b = _elem(lt, "join"), _elem(rt, "join")
            p, q = fresh_name("jl"), fresh_name("jr")
            lk = to_row(left_key(row_var(p, a)))
            rk = to_row(right_key(row_var(q, b)))
            if lk.type != rk.type:
                raise TypeError(f"join keys disagree: {lk.type!r} vs {rk.type!r}")
            out = to_row(result(row_var(p, a), row_var(q, b)))
            inner_body = If(
                ast.Eq(lk.expr, rk.expr), Singleton(out.expr), EmptySet(out.type)
            )
            inner = ext_apply(Lambda(q, b, inner_body), re)
            return ext_apply(Lambda(p, a, inner), le), SetType(out.type)

        return Query(build, f"{self._label}.join({other._label})")

    def compose(self, other: "Query") -> "Query":
        """Relation composition ``self o other`` of binary relations."""
        return self.join(
            other,
            left_key=lambda e: e.snd,
            right_key=lambda f: f.fst,
            result=lambda e, f: Row.pair(e.fst, f.snd),
        )

    # -- nesting ------------------------------------------------------------------

    def nest(self) -> "Query":
        """Group a set of pairs on the first component: ``{s x t} -> {s x {t}}``."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _edge(t, "nest")
            return nest_expr(src, et.fst, et.snd), SetType(
                ProdType(et.fst, SetType(et.snd))
            )

        return Query(build, f"{self._label}.nest()")

    def unnest(self) -> "Query":
        """Flatten a grouped second column: ``{s x {t}} -> {s x t}``."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _edge(t, "unnest")
            if not isinstance(et.snd, SetType):
                raise TypeError(f"unnest needs element type s x {{t}}, got {et!r}")
            return unnest_expr(src, et.fst, et.snd.elem), SetType(
                ProdType(et.fst, et.snd.elem)
            )

        return Query(build, f"{self._label}.unnest()")

    # -- recursion ----------------------------------------------------------------

    def fix(self) -> "Query":
        """Transitive closure by repeated squaring (Example 7.1's ``log_loop``).

        The step ``rr -> rr U rr o rr`` is provably inflationary, so the
        vectorized backend runs it semi-naively; the source is ``let``-bound
        to keep the template linear in the input expression.
        """

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            et = _edge(t, "fix")
            if et.fst != et.snd:
                raise TypeError(f"fix needs a homogeneous binary relation, got {et!r}")
            base = et.fst
            from ..nra.derived import compose as compose_expr

            r = fresh_name("fx")
            step = Lambda(
                "rr", t, UnionE(Var("rr"), compose_expr(Var("rr"), Var("rr"), base))
            )
            body = Apply(LogLoop(step, base), Pair(field_of(Var(r), base, base), Var(r)))
            return let(r, t, src, body), t

        return Query(build, f"{self._label}.fix()")

    # -- scalars ------------------------------------------------------------------

    def exists(self) -> "Query":
        """``not empty(q)``: a boolean query."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            _elem(t, "exists")
            return bool_not(IsEmpty(src)), BOOL

        return Query(build, f"{self._label}.exists()")

    def is_empty(self) -> "Query":
        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            src, t = self._build(ctx)
            _elem(t, "is_empty")
            return IsEmpty(src), BOOL

        return Query(build, f"{self._label}.is_empty()")

    def contains(self, item: RowLike) -> "Query":
        """Membership test of a literal / parameter row."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            from ..nra.derived import member

            src, t = self._build(ctx)
            et = _elem(t, "contains")
            row = to_row(item)
            return member(row.expr, src, et), BOOL

        return Query(build, f"{self._label}.contains(...)")

    # -- escape hatch -------------------------------------------------------------

    def pipe(self, fn: Expr) -> "Query":
        """Apply a ready-made NRA function expression (e.g. the paper library).

        ``fn`` must be a unary function expression (a ``Lambda`` or a
        recursion combinator); its argument type is taken from the builder's
        knowledge of this query and its result type from the type checker.
        """

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            from ..nra.typecheck import FunType

            src, t = self._build(ctx)
            ft = infer(fn, ctx.type_env(), ctx.sigma)
            if not isinstance(ft, FunType):
                raise TypeError(f"pipe needs a function expression, got type {ft!r}")
            if ft.arg != t:
                raise TypeError(
                    f"pipe argument mismatch: query has type {t!r}, "
                    f"function wants {ft.arg!r}"
                )
            return Apply(fn, src), ft.result

        return Query(build, f"{self._label}.pipe(...)")


class _ParamPlaceholder:
    """``Q.param(name)``: a typed slot filled through the environment at run time.

    Usable wherever a :class:`Row` is (predicates, join keys, map bodies): it
    elaborates to the free variable ``$name``, never to a constant, which is
    what keeps prepared templates binding-independent.
    """

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: Type) -> None:
        if not name or name.startswith(PARAM_PREFIX):
            raise ValueError(f"invalid parameter name {name!r}")
        self.name = name
        self.type = type

    def __as_row__(self) -> Row:
        ctx = _current_ctx()
        ctx.declare_param(self.name, self.type)
        return Row(Var(param_var(self.name)), self.type)

    # Let placeholders sit on either side of a comparison inside predicates.
    def __eq__(self, other: object) -> Row:  # type: ignore[override]
        return self.__as_row__().eq(other)  # type: ignore[arg-type]

    def __ne__(self, other: object) -> Row:  # type: ignore[override]
        return self.__as_row__().eq(other).not_()  # type: ignore[arg-type]

    __hash__ = None  # type: ignore[assignment]

    @property
    def fst(self) -> Row:
        return self.__as_row__().fst

    @property
    def snd(self) -> Row:
        return self.__as_row__().snd

    def __repr__(self) -> str:
        return f"<param {self.name} : {self.type!r}>"


class Q:
    """The entry points of the fluent builder (a namespace, not instantiable)."""

    def __init__(self) -> None:
        raise TypeError("Q is a namespace; use its classmethods")

    @staticmethod
    def coll(name: str, type: Optional[Type] = None) -> Query:
        """A named collection, typed by the session's database schema.

        Pass ``type`` to use the query without a schema (ad-hoc runs against
        plain values through ``Session.execute(..., bind={name: value})`` or
        the engine's ``env``).
        """

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            t = ctx.collection_type(name, type)
            _elem(t, f"collection {name!r}")
            return Var(name), t

        return Query(build, f"coll({name!r})")

    @staticmethod
    def param(name: str, type: Optional[Type] = None) -> _ParamPlaceholder:
        """A named parameter slot; binds through ``execute(params={name: ...})``.

        The type defaults to the base type ``D`` (atoms); pass the complex
        object type explicitly for set- or pair-valued parameters.
        """
        from ..objects.types import BASE

        return _ParamPlaceholder(name, BASE if type is None else type)

    @staticmethod
    def const(value, type: Optional[Type] = None) -> Query:
        """A literal set query from python data or a ready value."""
        v = value if isinstance(value, Value) else from_python(value)
        t = type if type is not None else infer_type(v)
        if not isinstance(t, SetType):
            raise TypeError(f"Q.const needs set-valued data, got type {t!r}")

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            return ast.Const(v, t), t

        return Query(build, "const(...)")

    @staticmethod
    def raw(expr: Expr, type: Type) -> Query:
        """Wrap an existing NRA expression (the paper-mapping escape hatch)."""

        def build(ctx: ElabContext) -> tuple[Expr, Type]:
            return expr, type

        return Query(build, "raw(...)")
