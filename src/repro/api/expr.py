"""The row-expression DSL of the fluent query builder.

A :class:`Row` wraps one NRA expression denoting *one element* of a set being
mapped, filtered or joined, together with its complex object type.  The
callables a :class:`~repro.api.query.Query` combinator takes (``map``,
``where``, ``join`` keys, ...) receive ``Row`` values and return ``Row``
values, so callers write

    q.where(lambda e: e.fst == 0).map(lambda e: Row.pair(e.snd, e.fst))

and never see an AST constructor.  Every operator builds the core-NRA node
underneath (``Proj1``/``Proj2``, ``Eq``, ``Pair``, ``If``, ``Const``) and
threads types through, so the elaborated expression is exactly what a careful
human would have written against :mod:`repro.nra.ast` -- the engine's rewriter
and the vectorized compiler see their usual shapes.

Types are load-bearing: NRA is explicitly typed at binders and at empty sets,
so each ``Row`` carries the type the type checker would assign it.  Where a
type cannot be derived locally (``Row.lit`` of an empty python set), pass it
explicitly.
"""

from __future__ import annotations

from typing import Optional, Union

from ..nra.ast import BoolConst, Eq, Expr, If, Pair, Proj1, Proj2, Var
from ..nra import ast
from ..objects.types import BOOL, ProdType, Type
from ..objects.values import Value, from_python, infer_type


class Row:
    """One element of a set, as seen inside a query combinator's callable."""

    __slots__ = ("expr", "type")

    def __init__(self, expr: Expr, type: Type) -> None:
        self.expr = expr
        self.type = type

    # -- projections --------------------------------------------------------------

    @property
    def fst(self) -> "Row":
        """First component of a pair row (``pi1``)."""
        if not isinstance(self.type, ProdType):
            raise TypeError(f".fst needs a pair-typed row, got {self.type!r}")
        return Row(Proj1(self.expr), self.type.fst)

    @property
    def snd(self) -> "Row":
        """Second component of a pair row (``pi2``)."""
        if not isinstance(self.type, ProdType):
            raise TypeError(f".snd needs a pair-typed row, got {self.type!r}")
        return Row(Proj2(self.expr), self.type.snd)

    # -- predicates ---------------------------------------------------------------

    def eq(self, other: "RowLike") -> "Row":
        """Equality at any type (``Eq`` is primitive on canonical values)."""
        o = to_row(other)
        return Row(Eq(self.expr, o.expr), BOOL)

    def __eq__(self, other: object) -> "Row":  # type: ignore[override]
        return self.eq(other)  # type: ignore[arg-type]

    def __ne__(self, other: object) -> "Row":  # type: ignore[override]
        return self.eq(other).not_()  # type: ignore[arg-type]

    # DSL objects are ephemeral builder values, never dict keys.
    __hash__ = None  # type: ignore[assignment]

    def not_(self) -> "Row":
        if self.type != BOOL:
            raise TypeError(f".not_() needs a boolean row, got {self.type!r}")
        return Row(If(self.expr, BoolConst(False), BoolConst(True)), BOOL)

    def and_(self, other: "RowLike") -> "Row":
        o = to_row(other)
        if self.type != BOOL or o.type != BOOL:
            raise TypeError(".and_() needs boolean rows")
        return Row(If(self.expr, o.expr, BoolConst(False)), BOOL)

    def or_(self, other: "RowLike") -> "Row":
        o = to_row(other)
        if self.type != BOOL or o.type != BOOL:
            raise TypeError(".or_() needs boolean rows")
        return Row(If(self.expr, BoolConst(True), o.expr), BOOL)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def pair(fst: "RowLike", snd: "RowLike") -> "Row":
        a, b = to_row(fst), to_row(snd)
        return Row(Pair(a.expr, b.expr), ProdType(a.type, b.type))

    @staticmethod
    def lit(value, type: Optional[Type] = None) -> "Row":
        """A literal row from python data (or a ready complex object value)."""
        v = value if isinstance(value, Value) else from_python(value)
        t = type if type is not None else infer_type(v)
        return Row(ast.Const(v, t), t)

    def if_(self, then: "RowLike", orelse: "RowLike") -> "Row":
        """``if self then then else orelse`` (self must be boolean)."""
        if self.type != BOOL:
            raise TypeError(f".if_() needs a boolean condition, got {self.type!r}")
        t, e = to_row(then), to_row(orelse)
        if t.type != e.type:
            raise TypeError(f".if_() branches disagree: {t.type!r} vs {e.type!r}")
        return Row(If(self.expr, t.expr, e.expr), t.type)

    def __repr__(self) -> str:
        return f"Row({self.expr!r} : {self.type!r})"


#: What combinator callables may return / take: a Row or plain python data
#: (converted with Row.lit).
RowLike = Union[Row, Value, bool, int, str, tuple, frozenset, set]


def to_row(x: RowLike) -> Row:
    """Coerce python data to a :class:`Row` (rows pass through unchanged).

    Objects exposing ``__as_row__`` (parameter placeholders, which must
    resolve against the elaboration in progress) are asked to convert
    themselves; everything else goes through :meth:`Row.lit`.
    """
    if isinstance(x, Row):
        return x
    as_row = getattr(x, "__as_row__", None)
    if as_row is not None:
        return as_row()
    return Row.lit(x)


def row_var(name: str, type: Type) -> Row:
    """The row for a bound variable (used by the elaborator, not by callers)."""
    return Row(Var(name), type)
