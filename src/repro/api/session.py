"""Sessions: the per-client face of the query service.

A :class:`Session` ties together one :class:`~repro.api.catalog.Database`,
one :class:`~repro.engine.Engine`, and per-session bookkeeping:

* ``execute(query, params=...)`` -- elaborate a fluent
  :class:`~repro.api.query.Query` (or accept a raw :class:`Expr`) against the
  database schema, evaluate it with collections and parameters supplied
  through the environment, and hand back a streaming
  :class:`~repro.api.cursor.Cursor`;
* ``prepare(query)`` -- the prepared-statement path of
  :mod:`repro.api.prepare`: one rewrite + one vectorized compile per
  *template*, however many bindings follow;
* ``executemany(query, bindings)`` -- the batch path; single-parameter
  templates are closed into a unary function and delegated to
  ``Engine.run_many``, so the whole batch shares one compiled plan, one
  intern table and all join indexes;
* ``stats`` -- per-session counters (executes, rewrites, vectorized
  compiles, plan-cache hits, rows streamed), fed by the engine's own
  plan-cache and backend counters.

Sessions are cheap: many sessions can share one engine (pass ``engine=``) and
therefore its plan caches -- the engine serializes cache access internally
(see the concurrency note in :class:`repro.engine.Engine`) -- or own a
private engine (the default), which is the one-engine-per-worker-thread
deployment shape.  The database is always shareable; its collection values
are immutable and interned into the session engine's table on first use (and
re-interned only when the database version changes).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..engine.engine import Engine
from ..engine.incremental.view import MaterializedView
from ..engine.router import placeholder_value
from ..nra.ast import Expr, Lambda, free_variables
from ..nra.externals import EMPTY_SIGMA, Signature
from ..objects.values import Value, from_python
from ..obs.profile import QueryProfile
from .catalog import Database
from .cursor import Cursor
from .prepare import PreparedStatement, lift_constants
from .query import Query, param_var


@dataclass
class SessionStats:
    """Counters for one session's lifetime (see DESIGN.md, query-service layer)."""

    executes: int = 0
    batches: int = 0
    prepares: int = 0
    prepared_hits: int = 0
    rewrites: int = 0          # engine plan-cache misses caused by this session
    plan_hits: int = 0         # engine plan-cache hits observed by this session
    vec_compiles: int = 0      # vectorized subexpression compiles caused
    rows_streamed: int = 0     # python rows handed out by cursors
    materializes: int = 0      # views created by this session
    delta_applies: int = 0     # changesets absorbed by this session's views
    fallback_recomputes: int = 0  # view applies that fell back to recompute
    view_rows_touched: int = 0    # view result rows inserted + deleted
    dred_overdeletes: int = 0     # elements over-deleted by delete/rederive
    dred_rederives: int = 0       # over-deleted elements rederivation re-proved
    # Flat-column attribution (see repro.engine.vectorized.flat): which of
    # this session's work ran on dense-id arrays rather than objects, and --
    # for parallel engines with an "shm" pool -- how much crossed process
    # boundaries as raw id arrays.  Read from the engine's per-call stats,
    # so a shared engine attributes each run to exactly one session.
    flat_joins: int = 0           # hash joins executed on id columns
    flat_dedups: int = 0          # array-level dedup/materialization passes
    shm_ships: int = 0            # id-array payloads shipped to shm workers
    array_bytes_shipped: int = 0  # bytes of dense-id arrays shipped
    # Adaptive-router attribution (engines with backend="auto"): fresh
    # routing decisions made for this session's templates, and adaptation
    # flips after observed runtimes contradicted an estimate by >= 10x.
    routes: int = 0
    reroutes: int = 0

    def snapshot(self) -> "SessionStats":
        return SessionStats(**{f: getattr(self, f) for f in self.__dataclass_fields__})

    def as_dict(self) -> dict:
        """A plain-dict snapshot (JSON-ready; the wire service's stats frames)."""
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


#: What ``execute``/``prepare`` accept: a fluent query, a prepared statement,
#: or a raw NRA expression.
Runnable = Union[Query, PreparedStatement, Expr]


class Session:
    """One client's window onto a database and an engine."""

    def __init__(
        self,
        db: Optional[Database] = None,
        engine: Optional[Engine] = None,
        backend: str = "vectorized",
        sigma: Signature = EMPTY_SIGMA,
        rules=None,
    ) -> None:
        self.db = db
        self.engine = engine if engine is not None else Engine(
            sigma=sigma, rules=rules, backend=backend
        )
        self.stats = SessionStats()
        self.closed = False
        self._lock = threading.RLock()
        self._env: dict[str, Value] = {}
        self._env_version: Optional[int] = None
        # Keyed on (template, defaults, backend): two raw expressions whose
        # lifted constants differ share the template but not the defaults,
        # and must not share a statement.
        self._prepared: dict[tuple, PreparedStatement] = {}
        # Views this session materialized; closed (and hence unregistered
        # from the database) with the session, so short-lived sessions do
        # not leak standing maintenance work.
        self._views: list[MaterializedView] = []

    # -- context management -------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drop prepared statements and this session's views; refuse further work."""
        with self._lock:
            self._prepared.clear()
            views, self._views = self._views, []
            self.closed = True
        for v in views:
            v.close()

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("session is closed")

    # -- environment / schema plumbing --------------------------------------------

    def schema(self) -> dict:
        return self.db.schema() if self.db is not None else {}

    def _environment(self) -> dict[str, Value]:
        """The database's collections, interned into the engine's table (cached)."""
        if self.db is None:
            return {}
        with self._lock:
            if self._env_version != self.db.version:
                # Read the version BEFORE snapshotting: if a registration
                # lands in between, we stamp the old version and re-intern on
                # the next call, instead of stamping a fresh version onto a
                # stale snapshot.  Engine.intern (not interner.intern):
                # interning must happen under the engine lock to stay
                # interned-exactly-once when sessions share an engine across
                # threads.
                version = self.db.version
                intern = self.engine.intern
                self._env = {
                    name: intern(v) for name, v in self.db.environment().items()
                }
                self._env_version = version
            return self._env

    def _template_of(self, query: Runnable) -> tuple[Expr, dict, dict, str]:
        """(template, param types, default bindings, label) for any runnable."""
        if isinstance(query, PreparedStatement):
            return query.template, query.param_types, query.defaults, query.label
        if isinstance(query, Query):
            el = query.elaborate(self.schema(), self.engine.sigma)
            return el.expr, el.params, {}, query.label
        if isinstance(query, Expr):
            return query, {}, {}, "expr"
        raise TypeError(f"cannot execute {query!r}; expected Query, prepared or Expr")

    def _bind(self, param_types: dict, defaults: dict, params: Optional[dict]) -> dict:
        """Parameter bindings -> ``$``-namespaced, interned environment entries."""
        given = dict(params or {})
        unknown = [k for k in given if k not in param_types]
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {sorted(unknown)}; "
                f"this query declares {sorted(param_types)}"
            )
        env: dict[str, Value] = {}
        intern = self.engine.intern
        for name in param_types:
            if name in given:
                v = given[name]
                value = v if isinstance(v, Value) else from_python(v)
            elif name in defaults:
                value = defaults[name]
            else:
                raise KeyError(f"parameter {name!r} is unbound and has no default")
            env[param_var(name)] = intern(value)
        return env

    # -- execution ----------------------------------------------------------------

    def execute(
        self,
        query: Runnable,
        params: Optional[dict] = None,
        backend: Optional[str] = None,
        optimize: bool = True,
    ) -> Cursor:
        """Elaborate, optimize (cached), evaluate; returns a streaming cursor."""
        self._check_open()
        if isinstance(query, PreparedStatement):
            backend = backend if backend is not None else query.backend
        template, ptypes, defaults, _ = self._template_of(query)
        env = dict(self._environment())
        env.update(self._bind(ptypes, defaults, params))
        value = self._run(template, env, backend, optimize)
        return self._cursor(value)

    def _execute_prepared(self, ps: PreparedStatement, params: dict) -> Cursor:
        return self.execute(ps, params=params)

    def explain_analyze(
        self,
        query: Runnable,
        params: Optional[dict] = None,
        optimize: bool = True,
    ) -> QueryProfile:
        """Execute once with per-plan-node instrumentation (explain analyze).

        Runs the query through :meth:`repro.engine.Engine.profile`: a
        throwaway instrumented vectorized evaluator measures actual time,
        rows, and call counts per plan node, rendered beside the
        work/depth cost-semantics prediction -- ``print(profile)`` shows
        the annotated tree.  Counts as one execute in the session stats
        (profiled runs never touch the engine's steady-state compile
        caches); the result is available as ``profile.result``.
        """
        self._check_open()
        template, ptypes, defaults, _ = self._template_of(query)
        env = dict(self._environment())
        env.update(self._bind(ptypes, defaults, params))
        with self.engine.lock:
            before_misses = self.engine.plan_misses
            before_hits = self.engine.plan_hits
            profile = self.engine.profile(template, env=env, optimize=optimize)
            misses = self.engine.plan_misses - before_misses
            hits = self.engine.plan_hits - before_hits
        with self._lock:
            self.stats.executes += 1
            self.stats.rewrites += misses
            self.stats.plan_hits += hits
        return profile

    def executemany(
        self,
        query: Runnable,
        bindings: Iterable,
        backend: Optional[str] = None,
    ) -> list[Cursor]:
        """Run one query over many parameter bindings, caches shared batch-wide.

        ``bindings`` is an iterable of parameter dicts (or, for single-
        parameter queries, bare values).  Single-parameter templates are
        closed into a unary function over the slot and delegated to
        ``Engine.run_many`` -- one compiled plan, one intern table and all
        join indexes serve the whole batch.  Multi-parameter templates fall
        back to per-binding execution, which still hits every template-keyed
        cache.
        """
        self._check_open()
        template, ptypes, defaults, _ = self._template_of(query)
        bindings = list(bindings)
        with self._lock:
            self.stats.batches += 1
        if backend is None and isinstance(query, PreparedStatement):
            backend = query.backend
        if len(ptypes) == 1:
            (name, ptype), = ptypes.items()
            values = []
            for b in bindings:
                if isinstance(b, dict):
                    bound = self._bind(ptypes, defaults, b)
                    values.append(bound[param_var(name)])
                else:
                    v = b if isinstance(b, Value) else from_python(b)
                    values.append(self.engine.intern(v))
            closed = Lambda(param_var(name), ptype, template)
            env = self._environment()
            results = self._run_many(closed, values, env, backend)
            return [self._cursor(v) for v in results]
        out = []
        for b in bindings:
            if not isinstance(b, dict):
                raise TypeError(
                    "multi-parameter executemany needs dict bindings, "
                    f"got {b!r} for parameters {sorted(ptypes)}"
                )
            out.append(self.execute(query, params=b, backend=backend))
        return out

    def prepare(self, query: Runnable, backend: Optional[str] = None) -> PreparedStatement:
        """Split into template + slots and warm the template's caches.

        Raw expressions are parametrized by :func:`~repro.api.prepare.lift_constants`
        (every ``Const`` becomes a slot with its original value as default);
        fluent queries are already templates.  Preparing the same template
        twice returns the cached statement.
        """
        self._check_open()
        if isinstance(query, PreparedStatement):
            return query
        if isinstance(query, Expr):
            template, ptypes, defaults = lift_constants(query)
            label = "prepared-expr"
        else:
            template, ptypes, defaults, label = self._template_of(query)
        return self.prepare_template(template, ptypes, defaults, label, backend)

    def prepare_template(
        self,
        template: Expr,
        param_types: dict,
        defaults: dict,
        label: str = "prepared",
        backend: Optional[str] = None,
    ) -> PreparedStatement:
        """Prepare an already-split template (the wire service's entry point).

        ``prepare`` computes the template/slot split from a runnable and
        delegates here; remote callers (:mod:`repro.service`) ship the split
        explicitly -- template text, parameter types, default bindings -- and
        this method gives them the same cache-and-warm behaviour without
        re-deriving slots from a tree whose parameters are already free
        variables.
        """
        self._check_open()
        ptypes, defaults = dict(param_types), dict(defaults)
        cache_key = (template, tuple(sorted(defaults.items())), backend)
        with self._lock:
            found = self._prepared.get(cache_key)
            if found is not None:
                self.stats.prepared_hits += 1
                return found
        # Warm the rewrite and (for the vectorized backend) the compiled plan
        # now, so the first execute is as cheap as the hundredth.  Counter
        # deltas are taken under the engine lock for exact attribution.
        chosen = backend if backend is not None else self.engine.backend
        with self.engine.lock:
            before_misses = self.engine.plan_misses
            before_hits = self.engine.plan_hits
            before_compiles = self.engine.vectorized_compiles()
            before_routes, before_reroutes = self.engine.router_counters()
            self.engine.optimize(template)
            if chosen == "auto":
                # Route from catalog statistics (counts + samples) before any
                # execution, then warm the *routed* backend's plan -- the
                # explain trace compiles through the decision.
                self._route_template(template, ptypes, defaults)
                self.engine.explain_plan(template, backend="auto")
            elif chosen in ("vectorized", "parallel"):
                # Warming the parallel view also runs the shard analysis and
                # compiles the shard-local template through the driver.
                self.engine.explain_plan(template, backend=chosen)
            misses = self.engine.plan_misses - before_misses
            hits = self.engine.plan_hits - before_hits
            compiles = self.engine.vectorized_compiles() - before_compiles
            after_routes, after_reroutes = self.engine.router_counters()
        ps = PreparedStatement(self, template, ptypes, defaults, label, backend)
        with self._lock:
            self.stats.prepares += 1
            self.stats.rewrites += misses
            # The warm-up's second look at the plan cache is a hit; count it
            # here so engine totals always equal the per-session sums (the
            # invariant the concurrency stress suite asserts).
            self.stats.plan_hits += hits
            self.stats.vec_compiles += compiles
            self.stats.routes += after_routes - before_routes
            self.stats.reroutes += after_reroutes - before_reroutes
            self._prepared[cache_key] = ps
        return ps

    def _route_template(self, template: Expr, ptypes: dict, defaults: dict):
        """Feed catalog statistics through the engine's router (prepare path).

        Collections referenced by the template contribute their catalog
        *samples* as estimation inputs and their exact counts for
        extrapolation; parameters contribute their default values, or typed
        placeholders when unbound -- routing happens before any binding
        exists.
        """
        names = free_variables(template)
        env: dict[str, Value] = {}
        counts: dict[str, int] = {}
        if self.db is not None:
            for name, st in self.db.stats().items():
                if name in names:
                    env[name] = st.sample
                    counts[name] = st.count
        for pname, ptype in ptypes.items():
            var = param_var(pname)
            if var not in names:
                continue
            if pname in defaults:
                env[var] = defaults[pname]
            else:
                env[var] = placeholder_value(ptype)
        return self.engine.route(template, env=env, counts=counts)

    # -- materialized views --------------------------------------------------------

    def materialize(
        self,
        query: Runnable,
        name: Optional[str] = None,
        params: Optional[dict] = None,
    ) -> MaterializedView:
        """Create a :class:`MaterializedView` maintained under database updates.

        The query is elaborated, its result computed once, and a maintenance
        plan compiled (delta rules where they are syntactic theorems,
        recompute fallbacks elsewhere -- ``view.maintenance_plan()`` shows
        which).  The view is registered with the session's database: every
        subsequent ``insert``/``delete``/``apply`` commit refreshes it before
        returning, and the session's stats aggregate the maintenance work
        (``delta_applies``, ``fallback_recomputes``, ``view_rows_touched``,
        and the delete/rederive counters ``dred_overdeletes`` /
        ``dred_rederives``).

        Parameters are bound *now* (views are standing queries, not
        templates); the result must be set-valued.  Works without a database
        too, in which case there is nothing to maintain and the view is just
        a cached result.  Views live until closed -- ``view.close()``
        unregisters from the database, and closing the session closes every
        view it materialized.
        """
        self._check_open()
        template, ptypes, defaults, label = self._template_of(query)

        def build() -> MaterializedView:
            env = dict(self._environment())
            env.update(self._bind(ptypes, defaults, params))
            collections = set(self.db) if self.db is not None else set()
            bases = frozenset(free_variables(template) & collections)
            with self.engine.lock:
                before_misses = self.engine.plan_misses
                before_hits = self.engine.plan_hits
                before_compiles = self.engine.vectorized_compiles()
                view = MaterializedView(
                    self.engine,
                    template,
                    env,
                    bases,
                    name=name if name is not None else label,
                    on_apply=self._view_applied,
                )
                misses = self.engine.plan_misses - before_misses
                hits = self.engine.plan_hits - before_hits
                compiles = self.engine.vectorized_compiles() - before_compiles
            with self._lock:
                self.stats.materializes += 1
                self.stats.rewrites += misses
                self.stats.plan_hits += hits
                self.stats.vec_compiles += compiles
            return view

        if self.db is not None:
            # Snapshot + build + register under the commit lock, so no commit
            # can land between the snapshot the view is built from and the
            # point it starts receiving changesets.
            with self.db._commit_lock:
                view = build()
                self.db.add_view(view)
                view.bind_registry(self.db)
        else:
            view = build()
        with self._lock:
            self._views.append(view)
        return view

    def _view_applied(self, view, delta, fallback: bool) -> None:
        with self._lock:
            self.stats.delta_applies += 1
            if fallback:
                self.stats.fallback_recomputes += 1
            self.stats.view_rows_touched += len(delta.inserted) + len(delta.deleted)
            self.stats.dred_overdeletes += delta.dred_overdeleted
            self.stats.dred_rederives += delta.dred_rederived

    # -- explain ------------------------------------------------------------------

    def explain(self, query: Runnable):
        """The engine's rewrite plan for the query's template."""
        template, _, _, _ = self._template_of(query)
        return self.engine.explain(template)

    def explain_plan(
        self, query: Runnable, optimize: bool = True, backend: Optional[str] = None
    ):
        """The operator tree for the query's template.

        By default the vectorized (or sharded) execution plan;
        ``backend="incremental"`` returns the maintenance-plan tree a
        materialized view of this query would use.
        """
        template, _, _, _ = self._template_of(query)
        return self.engine.explain_plan(template, optimize=optimize, backend=backend)

    # -- engine call-throughs with stats accounting --------------------------------

    def _run(self, template, env, backend, optimize) -> Value:
        # The engine lock (reentrant) is held across the counter snapshot,
        # the run and the delta reads, so with a shared engine each call's
        # rewrites/compiles are attributed to exactly one session.
        with self.engine.lock:
            before_misses = self.engine.plan_misses
            before_hits = self.engine.plan_hits
            before_compiles = self.engine.vectorized_compiles()
            before_routes, before_reroutes = self.engine.router_counters()
            result = self.engine.run(
                template, db=None, env=env, optimize=optimize, backend=backend
            )
            misses = self.engine.plan_misses - before_misses
            hits = self.engine.plan_hits - before_hits
            # Counter delta, not last_stats: uniform over backends (the
            # parallel backend compiles through the same driver evaluator).
            compiles = self.engine.vectorized_compiles() - before_compiles
            after_routes, after_reroutes = self.engine.router_counters()
            last = self.engine.last_stats
        with self._lock:
            self.stats.executes += 1
            self.stats.rewrites += misses
            self.stats.plan_hits += hits
            self.stats.vec_compiles += compiles
            self.stats.routes += after_routes - before_routes
            self.stats.reroutes += after_reroutes - before_reroutes
            self._absorb_flat(last)
        return result

    def _run_many(self, closed, values, env, backend) -> list[Value]:
        with self.engine.lock:
            before_misses = self.engine.plan_misses
            before_hits = self.engine.plan_hits
            before_compiles = self.engine.vectorized_compiles()
            before_routes, before_reroutes = self.engine.router_counters()
            results = self.engine.run_many(closed, values, env=env, backend=backend)
            misses = self.engine.plan_misses - before_misses
            hits = self.engine.plan_hits - before_hits
            compiles = self.engine.vectorized_compiles() - before_compiles
            after_routes, after_reroutes = self.engine.router_counters()
            last = self.engine.last_stats
        with self._lock:
            self.stats.executes += len(values)
            self.stats.rewrites += misses
            self.stats.plan_hits += hits
            self.stats.vec_compiles += compiles
            self.stats.routes += after_routes - before_routes
            self.stats.reroutes += after_reroutes - before_reroutes
            self._absorb_flat(last)
        return results

    def _absorb_flat(self, last) -> None:
        """Fold a per-call backend stats view into the session counters.

        ``last_stats`` is already the delta of the one run this session just
        made (taken under the engine lock), so addition is exact whatever
        backend produced it; counters a backend does not track read as 0.
        """
        for f in ("flat_joins", "flat_dedups", "shm_ships", "array_bytes_shipped"):
            setattr(self.stats, f, getattr(self.stats, f) + getattr(last, f, 0))

    def _cursor(self, value: Value) -> Cursor:
        def count_rows(n: int) -> None:
            with self._lock:
                self.stats.rows_streamed += n

        return Cursor(value, rows_hook=count_rows)

    def __repr__(self) -> str:
        dbname = self.db.name if self.db is not None else None
        return (
            f"<Session db={dbname!r} backend={self.engine.backend!r} "
            f"executes={self.stats.executes}>"
        )


def connect(
    db: Optional[Database] = None,
    backend: str = "vectorized",
    **kwargs,
) -> Session:
    """Open a session -- the one-liner front door of the query service."""
    return Session(db, backend=backend, **kwargs)
