"""The query-service API: catalogs, sessions, fluent queries, prepared plans.

This package is the public client surface the ROADMAP's serving ambitions
build on.  Underneath sits the optimizing engine of :mod:`repro.engine`
unchanged; what this layer adds is everything a *caller* needs so that nobody
hand-builds AST nodes or re-derives plumbing per query:

* :class:`Database` / :class:`Catalog` (:mod:`repro.api.catalog`) -- named
  collections with type-checked schemas, registered once and served to any
  number of sessions;
* :class:`Q` / :class:`Query` (:mod:`repro.api.query`) -- the lazy fluent
  builder that elaborates to NRA expression templates;
* :class:`Row` (:mod:`repro.api.expr`) -- the typed row DSL inside
  combinator callables;
* :class:`Session` (:mod:`repro.api.session`) -- execution, per-session
  stats, ``executemany`` batching over ``Engine.run_many``;
* :class:`PreparedStatement` / :func:`lift_constants`
  (:mod:`repro.api.prepare`) -- template/slot splitting so parametrized
  queries cost one rewrite and one compile total;
* :class:`Cursor` (:mod:`repro.api.cursor`) -- streaming results row by row;
* :class:`MaterializedView` / :class:`Changeset`
  (:mod:`repro.engine.incremental`) -- standing queries registered with
  ``Session.materialize`` and kept consistent by delta propagation as
  mutable databases absorb ``insert``/``delete``/``apply`` commits.

Quick start::

    from repro.api import Database, Q, connect
    from repro.workloads.graphs import path_graph

    db = Database.of("graphs", edges=path_graph(32))
    with connect(db) as session:
        reach = session.prepare(
            Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))
        )
        for src in (0, 7, 13):
            print(src, reach.execute(src=src).fetchmany(5))

See README.md for the full tour and DESIGN.md for how the layer composes
with the engine's caches.
"""

from ..engine.incremental import Changeset, MaterializedView, ViewDelta, ViewStats
from .catalog import Catalog, Database
from .cursor import Cursor
from .expr import Row
from .prepare import PreparedStatement, lift_constants
from .query import Q, Query, param_var
from .session import Session, SessionStats, connect

__all__ = [
    "Catalog",
    "Changeset",
    "Database",
    "Cursor",
    "MaterializedView",
    "ViewDelta",
    "ViewStats",
    "Row",
    "PreparedStatement",
    "lift_constants",
    "Q",
    "Query",
    "param_var",
    "Session",
    "SessionStats",
    "connect",
]
