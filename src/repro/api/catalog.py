"""Named databases and catalogs: the data half of the query-service API.

A :class:`Database` is a set of **named collections** -- complex object
values registered once under a name, each with a schema type.  The schema is
*inferred and validated through the type checker*: the registered value is
wrapped as an NRA constant and pushed through :func:`repro.nra.typecheck.infer`,
which re-checks the value against the inferred type (``Const`` nodes are
verified with :func:`repro.objects.values.check_type`).  Queries built with
:class:`~repro.api.query.Q` reference collections by name; at execution time
a :class:`~repro.api.session.Session` elaborates the query against this
schema and supplies the collection values through the evaluation
environment.

Registration accepts :class:`~repro.relational.relation.Relation` instances,
whole :class:`~repro.relational.database.OrderedDatabase` contents, ready
:class:`~repro.objects.values.Value` objects, or plain python data (converted
with :func:`~repro.objects.values.from_python`).

A :class:`Catalog` is one level up: named databases, so one process can serve
many datasets and ``catalog.connect("graphs")`` hands out sessions.  Both
classes are safe to share between sessions.

Mutation.  A database is **mutable** by default: :meth:`Database.insert`,
:meth:`Database.delete` and :meth:`Database.apply` change the *contents* of a
registered collection (its schema type never changes) and return the
normalized :class:`~repro.engine.incremental.changeset.Changeset` -- net
effect only, validated element-by-element against the schema.  Every commit
bumps the database *version* (so attached sessions refresh their interned
environments) and is delivered, in commit order, to the
:class:`~repro.engine.incremental.view.MaterializedView` objects registered
by ``Session.materialize`` -- views absorb the delta (or fall back to
recompute) before the mutating call returns.  Pass ``mutable=False`` for a
frozen snapshot (the PR-3 behaviour) whose collections only change via
:meth:`Database.drop` + re-register; dropping a collection marks dependent
views *stale* rather than silently recomputing them against a new schema.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Iterator, Optional

from ..engine.incremental.changeset import Changeset, CollectionDelta
from ..engine.router import CollectionStats, collection_stats
from ..nra.ast import Const
from ..nra.typecheck import infer
from ..objects.types import SetType, Type
from ..objects.values import (
    SetVal,
    Value,
    canonical_set,
    check_type,
    from_python,
    infer_type,
    sort_key,
)
from ..relational.database import OrderedDatabase
from ..relational.relation import Relation
from .query import PARAM_PREFIX, Schema


class Database:
    """A named database of typed collections, served by sessions."""

    def __init__(self, name: str = "db", mutable: bool = True) -> None:
        self.name = name
        self.mutable = mutable
        self._collections: dict[str, Value] = {}
        self._schema: Schema = {}
        # Router statistics, maintained incrementally with the contents:
        # collection values are canonical sorted tuples, so count and sample
        # are O(1) per commit (see repro.engine.router.collection_stats).
        self._stats: dict[str, CollectionStats] = {}
        # Guards registration against concurrent sessions reading the schema.
        self._lock = threading.Lock()
        # Serializes commits *and* view registration, so every view observes
        # every changeset exactly once and in commit order.  Lock order: the
        # commit lock is taken before the state lock and before any engine
        # lock (views acquire their engine's lock inside ``apply``); nothing
        # acquires the commit lock while holding either.
        self._commit_lock = threading.RLock()
        self._views: list = []
        #: Bumped on every mutation; sessions compare it to re-intern lazily.
        self.version = 0

    # -- registration -------------------------------------------------------------

    def register(self, name: str, data, type: Optional[Type] = None) -> "Database":
        """Register collection ``name``; returns ``self`` for chaining.

        ``data`` may be a ``Relation``, a complex object ``Value``, or plain
        python data.  The schema entry is ``type`` if given, else inferred;
        either way the pair is validated through the type checker.
        """
        if name.startswith(PARAM_PREFIX):
            raise ValueError(
                f"collection name {name!r} collides with the parameter namespace"
            )
        if isinstance(data, Relation):
            value = data.value()
            t = type if type is not None else data.type
        else:
            value = data if isinstance(data, Value) else from_python(data)
            # An explicit type wins; inference cannot see through empty sets
            # (and nested data with empty inner sets *needs* the declaration).
            t = type if type is not None else infer_type(value)
        # Schema inference *via the type checker*: a Const node carrying the
        # value and candidate type only types if the value inhabits the type.
        inferred = infer(Const(value, t))
        with self._lock:
            if name in self._collections:
                raise ValueError(f"collection {name!r} already registered")
            self._collections[name] = value
            self._schema[name] = inferred
            self._stats[name] = collection_stats(value)
            self.version += 1
        return self

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._collections:
                raise KeyError(f"no collection {name!r}")
            del self._collections[name]
            del self._schema[name]
            self._stats.pop(name, None)
            self.version += 1
            views = list(self._views)
        # The collection's schema entry is gone: dependent views can no
        # longer be maintained *or* recomputed meaningfully -- mark them
        # stale instead of serving a value over a vanished base.
        for v in views:
            if v.depends_on(name):
                v.mark_stale()

    # -- mutation -------------------------------------------------------------

    def insert(self, name: str, rows) -> Changeset:
        """Insert rows into a collection; returns the net changeset.

        ``rows`` is an iterable of elements (``Value`` or plain python data).
        Rows already present are dropped from the changeset (net effect),
        every genuinely new row is validated against the collection's element
        type, and registered views absorb the delta before this returns.
        """
        return self.apply(Changeset.of(**{name: (list(rows), [])}))

    def delete(self, name: str, rows) -> Changeset:
        """Delete rows from a collection; returns the net changeset.

        Rows not present are dropped from the changeset (net effect).
        """
        return self.apply(Changeset.of(**{name: ([], list(rows))}))

    def apply(self, changeset: Changeset) -> Changeset:
        """Commit a (possibly multi-collection) changeset atomically.

        The changeset is normalized against the live contents -- inserts of
        present rows and deletes of absent rows become no-ops -- and the
        normalized form is returned and delivered to every registered view
        in registration order.  Raises ``TypeError`` if an inserted row does
        not inhabit the collection's element type, ``KeyError`` for unknown
        collections, and ``RuntimeError`` on a frozen (``mutable=False``)
        database; a failed commit changes nothing.
        """
        if not self.mutable:
            raise RuntimeError(
                f"database {self.name!r} is frozen (mutable=False); "
                "rebuild it with mutable=True to accept updates"
            )
        with self._commit_lock:
            with self._lock:
                normalized, updates = self._normalize(changeset)
                if updates:
                    self._collections.update(updates)
                    for name, value in updates.items():
                        old = self._stats.get(name)
                        self._stats[name] = collection_stats(
                            value, updates=(old.updates + 1) if old else 1
                        )
                    self.version += 1
                views = list(self._views)
            if normalized:
                for v in views:
                    v._on_commit(normalized)
            return normalized

    def _normalize(self, changeset: Changeset) -> tuple[Changeset, dict[str, Value]]:
        """Validate + net a changeset against live contents (under the lock)."""
        deltas: dict[str, CollectionDelta] = {}
        updates: dict[str, Value] = {}
        for name in changeset:
            if name not in self._collections:
                raise KeyError(f"no collection {name!r}")
            current = self._collections[name]
            if not isinstance(current, SetVal):
                raise TypeError(f"collection {name!r} is not a set; cannot mutate")
            t = self._schema[name]
            elem_t = t.elem if isinstance(t, SetType) else None
            d = changeset[name]
            present = set(current.elements)
            dels = []
            for v in d.deletes:
                if v in present:
                    dels.append(v)
                    present.discard(v)
            ins = []
            for v in d.inserts:
                if v in present:
                    continue
                if elem_t is not None and not check_type(v, elem_t):
                    raise TypeError(
                        f"insert into {name!r}: {v!r} does not have element "
                        f"type {elem_t!r}"
                    )
                ins.append(v)
                present.add(v)
            dels_set = set(dels)
            both = {v for v in ins if v in dels_set}
            if both:
                # Deleted and re-inserted in one commit: a no-op, and keeping
                # the pair would break the changeset's disjointness invariant.
                ins = [v for v in ins if v not in both]
                dels = [v for v in dels if v not in both]
                dels_set -= both
            if ins or dels:
                deltas[name] = CollectionDelta(ins, dels)
                # The live contents tuple is canonical, a filtered subsequence
                # of it stays canonical, and each (netted, so genuinely new)
                # insert lands at its sort position -- no O(n) re-sort of the
                # whole collection per commit.
                kept = [e for e in current.elements if e not in dels_set]
                if ins:
                    for v in sorted(ins, key=sort_key):
                        insort(kept, v, key=sort_key)
                updates[name] = canonical_set(tuple(kept))
        return Changeset(deltas), updates

    # -- materialized views ---------------------------------------------------

    def add_view(self, view) -> None:
        """Register a materialized view for commit notifications."""
        with self._lock:
            self._views.append(view)

    def remove_view(self, view) -> None:
        with self._lock:
            if view in self._views:
                self._views.remove(view)

    def views(self) -> list:
        """The registered views, in notification (registration) order."""
        with self._lock:
            return list(self._views)

    @classmethod
    def of(cls, name: str = "db", **collections) -> "Database":
        """``Database.of(name, edges=relation, bits={...})`` convenience."""
        db = cls(name)
        for coll, data in collections.items():
            db.register(coll, data)
        return db

    @classmethod
    def from_relations(cls, *relations: Relation, name: str = "db") -> "Database":
        """One collection per relation, under the relation's own name."""
        db = cls(name)
        for r in relations:
            db.register(r.name, r)
        return db

    @classmethod
    def from_ordered(cls, odb: OrderedDatabase, name: str = "db") -> "Database":
        """Adopt the contents of a Section-5 :class:`OrderedDatabase`."""
        return cls.from_relations(*odb, name=name)

    # -- views --------------------------------------------------------------------

    def schema(self) -> Schema:
        """Collection name -> complex object type (a copy; safe to mutate)."""
        with self._lock:
            return dict(self._schema)

    def environment(self) -> dict[str, Value]:
        """Collection name -> value, as an NRA evaluation environment."""
        with self._lock:
            return dict(self._collections)

    def stats(self) -> dict[str, CollectionStats]:
        """Collection name -> incremental statistics (count, sample, updates).

        What the adaptive router consumes: exact cardinalities plus small
        canonical samples, current as of the latest commit (a copy; safe to
        hold across commits, stale by design).
        """
        with self._lock:
            return dict(self._stats)

    def __getitem__(self, name: str) -> Value:
        return self._collections[name]

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._collections))

    def __len__(self) -> int:
        return len(self._collections)

    def __repr__(self) -> str:
        cols = ", ".join(sorted(self._collections))
        return f"Database({self.name!r}: {cols})"

    # -- sessions -----------------------------------------------------------------

    def connect(self, **session_kwargs) -> "Session":
        """Open a :class:`~repro.api.session.Session` serving this database."""
        from .session import Session

        return Session(self, **session_kwargs)


class Catalog:
    """Named databases; the top of the serving hierarchy."""

    def __init__(self) -> None:
        self._databases: dict[str, Database] = {}
        self._lock = threading.Lock()

    def create(self, name: str) -> Database:
        """Create and register an empty database."""
        return self.register(Database(name))

    def register(self, db: Database) -> Database:
        with self._lock:
            if db.name in self._databases:
                raise ValueError(f"database {db.name!r} already in the catalog")
            self._databases[db.name] = db
        return db

    def drop(self, name: str) -> None:
        with self._lock:
            del self._databases[name]

    def __getitem__(self, name: str) -> Database:
        return self._databases[name]

    def __contains__(self, name: str) -> bool:
        return name in self._databases

    def __iter__(self) -> Iterator[Database]:
        return iter(list(self._databases.values()))

    def names(self) -> list[str]:
        return sorted(self._databases)

    def connect(self, name: str, **session_kwargs) -> "Session":
        """Open a session against the named database."""
        return self[name].connect(**session_kwargs)

    def __repr__(self) -> str:
        return f"Catalog({', '.join(self.names())})"
