"""repro -- a reproduction of "A Query Language for NC" (Suciu & Breazu-Tannen, 1994).

The package implements, end to end, the systems the paper describes:

* :mod:`repro.objects` -- complex object types, values, the lifted order and
  the Section 5 string encodings;
* :mod:`repro.recursion` -- divide-and-conquer and element-by-element
  recursion on sets (``dcr``, ``sru``, ``sri``, ``esr``), their bounded
  versions, the iterators of Section 7.1, and the constructive translations of
  Propositions 2.1, 2.2 and 7.3;
* :mod:`repro.nra` -- the nested relational algebra: AST, type checker,
  reference interpreter, work/depth parallel cost semantics, derived
  operators, external-function signatures and a concrete syntax;
* :mod:`repro.relational` -- flat relations, ordered databases, the imperative
  baseline algebra, and the paper's query library (parity and transitive
  closure in dcr / log-loop / sri styles);
* :mod:`repro.circuits` -- unbounded fan-in circuits, AC^k families, the
  Lemma 7.4-7.6 string circuits, the flat-query compiler of Proposition 7.7
  and DLOGSPACE-DCL uniformity checking;
* :mod:`repro.machines` -- the CRCW PRAM simulator and the space-accounted
  Turing machine;
* :mod:`repro.complexity` -- syntactic classification (AC^k from nesting
  depth), growth-curve fitting, and the separation/blow-up demonstrations;
* :mod:`repro.workloads` -- graph and nested-data generators used by the
  examples, tests and benchmarks;
* :mod:`repro.engine` -- the optimizing evaluation engine: algebraic rewrite
  rules (ext fusion, short-circuits, the Proposition 2.1 ``sri`` -> ``dcr``
  preference), hash-consed values, a memoizing evaluator and the vectorized
  set-at-a-time backend, cross-checked against the reference interpreter and
  the cost model;
* :mod:`repro.api` -- the query-service layer over the engine: named
  :class:`~repro.api.catalog.Database` collections with type-checked
  schemas, the fluent :class:`~repro.api.query.Q` builder, sessions with
  prepared statements, batched ``executemany`` and streaming cursors.

Quick start (the query-service API)::

    from repro.api import Database, Q
    from repro.workloads.graphs import path_graph

    session = Database.of("g", edges=path_graph(16)).connect()
    reach = session.prepare(
        Q.coll("edges").fix().where(lambda e: e.fst == Q.param("src"))
    )
    print(reach.execute(src=0).fetchmany(5))

or, one level down, the paper's own surface -- hand-built NRA expressions::

    from repro.relational import transitive_closure_dcr, run_tc, Relation
    edges = Relation.from_pairs("r", [(0, 1), (1, 2), (2, 3)])
    print(sorted(run_tc(transitive_closure_dcr(), edges)))
"""

__version__ = "1.0.0"

from . import (
    api,
    circuits,
    complexity,
    engine,
    machines,
    nra,
    objects,
    recursion,
    relational,
    workloads,
)

__all__ = [
    "objects",
    "recursion",
    "nra",
    "relational",
    "circuits",
    "machines",
    "complexity",
    "workloads",
    "engine",
    "api",
    "__version__",
]
