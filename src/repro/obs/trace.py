"""Hierarchical query tracing.

A :class:`Tracer` produces trees of :class:`Span`\\ s -- query, rewrite,
compile, plan-node execution, fixpoint rounds, shard waves, IVM delta
applies -- with monotonic (``perf_counter``) timings and free-form
attributes (cardinalities, backend, route reason).  The current span is
carried in a ``contextvars.ContextVar`` so concurrent sessions on
different threads, asyncio service handlers, and executor offloads each
see their own ancestry: a span opened on one logical flow of control
never adopts children from another.

Tracing is **off by default** and the disabled path is a single
attribute check returning a shared no-op context manager -- hot loops
additionally capture ``TRACER.enabled`` once per invocation so the
steady-state engine pays (almost) nothing.  Worker threads inside the
parallel pool do not open spans at all; shard waves are timed on the
driver thread, which blocks on the wave, so worker activity is folded
into the driver-side ``shard-wave`` span rather than misparented.
Process/shm workers are invisible by construction (explicitly dropped).
"""

from __future__ import annotations

import contextvars
import threading
from collections import deque
from time import perf_counter
from typing import Any, Iterator, Optional

__all__ = ["Span", "Tracer", "TRACER"]


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "attrs", "seconds", "children", "_t0")

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.seconds: float = 0.0
        self.children: list[Span] = []
        self._t0: float = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """Pre-order walk of this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (pre-order, incl. self) with the given name."""
        for sp in self.walk():
            if sp.name == name:
                return sp
        return None

    def hottest(self, k: int = 3) -> list["Span"]:
        """The ``k`` longest strict descendants, hottest first."""
        below = [sp for sp in self.walk() if sp is not self]
        below.sort(key=lambda sp: sp.seconds, reverse=True)
        return below[:k]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    def render(self, depth: int = 0) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = "  " * depth + f"{self.name}  {self.seconds * 1e3:.3f}ms"
        if attrs:
            line += f"  [{attrs}]"
        return "\n".join(
            [line] + [c.render(depth + 1) for c in self.children]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, {len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing context manager: the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpan()


class _SpanCtx:
    """Context manager that opens a span and parents it on exit."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(name, attrs)
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        sp = self._span
        self._token = self._tracer._current.set(sp)
        sp._t0 = perf_counter()
        return sp

    def __exit__(self, *exc: object) -> bool:
        sp = self._span
        sp.seconds = perf_counter() - sp._t0
        tracer = self._tracer
        if self._token is not None:
            tracer._current.reset(self._token)
        parent = tracer._current.get()
        if parent is not None:
            # Appended by the thread that owns the parent's flow of
            # control (the driver blocks on offloaded work), so no lock.
            parent.children.append(sp)
        else:
            tracer._record_root(sp)
        return False


class Tracer:
    """Process-wide span factory; ``enabled`` gates every hot-path check."""

    def __init__(self, keep: int = 64):
        self.enabled = False
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=keep)

    # -- span lifecycle -----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context manager for a child of the current span (no-op if disabled)."""
        if not self.enabled:
            return _NULL
        return _SpanCtx(self, name, attrs)

    def event(self, name: str, seconds: float = 0.0, **attrs: Any) -> Optional[Span]:
        """Record a completed child span on the current span (e.g. one
        fixpoint round timed by the caller).  Dropped when no span is open."""
        parent = self._current.get()
        if parent is None:
            return None
        sp = Span(name, attrs)
        sp.seconds = seconds
        parent.children.append(sp)
        return sp

    def current(self) -> Optional[Span]:
        return self._current.get()

    # -- control and inspection ---------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _record_root(self, sp: Span) -> None:
        with self._lock:
            self._roots.append(sp)

    def recent(self) -> list[Span]:
        """Recently completed root spans, oldest first (bounded buffer)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


#: The process-wide tracer.  Engine, views, parallel executor, and the
#: network service all record against this instance; ``contextvars``
#: keeps concurrent flows separate.
TRACER = Tracer()
