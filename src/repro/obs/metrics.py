"""Process-wide metrics registry.

Counters, gauges, and fixed-bucket histograms behind one
:class:`MetricsRegistry`, with Prometheus-text and JSON exposition.

The registry *absorbs* the engine's pre-existing per-subsystem counter
bags (``VecStats``, ``ParStats``, ``ServerStats``, router counters)
without moving them: those objects stay the in-process source of truth
(compatibility shims -- every existing ``stats``/``since`` API keeps
working), and their owners register scrape-time *collectors* that fold
the current counter values into the exposition under stable
``repro_``-prefixed names.  Collectors are held by weak reference so a
closed engine or server drops out of the scrape instead of pinning the
object alive; two live owners emitting the same name are summed.

Direct metrics (the ``repro_queries_total`` counter and the
``repro_query_seconds`` histogram) are updated inline by the engine and
gated on ``METRICS.enabled`` -- on by default, and cheap enough (a dict
hit and two float adds) that the gated ``obs-overhead`` benchmark row
holds the fully-disabled path within 3% of the default path.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Fixed histogram buckets for query latencies (seconds); chosen to span
#: sub-millisecond vectorized lookups through multi-second fixpoints.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _sane(name: str) -> str:
    """Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    out = "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)
    return out if out and not out[0].isdigit() else "_" + out


class Counter:
    """A monotonically increasing float."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative on exposition, like Prometheus)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Iterable[float], help: str = ""):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        i = bisect_left(self.buckets, v)
        with self._lock:
            self._counts[i] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper-bound, cumulative count) pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        acc = 0
        with self._lock:
            counts = list(self._counts)
        for bound, n in zip(self.buckets, counts):
            acc += n
            out.append((bound, acc))
        out.append((float("inf"), acc + counts[-1]))
        return out


class MetricsRegistry:
    """Name-keyed counters/gauges/histograms plus weakly-held collectors."""

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Each entry resolves to a zero-arg callable returning a flat
        # {name: number} dict, or to None once its owner is collected.
        self._collectors: list[Callable[[], Optional[Callable[[], dict]]]] = []

    # -- instrument creation (get-or-create, idempotent) --------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, help)
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, help)
            return g

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS, help
                )
            return h

    # -- collectors (the compatibility shims) -------------------------------------

    def register_collector(self, fn: Callable[[], dict]) -> None:
        """Register a scrape-time callable returning ``{name: number}``.

        Bound methods are held via ``weakref.WeakMethod`` so registering
        a collector never keeps its owner (an Engine, a server) alive.
        """
        ref: Callable[[], Optional[Callable[[], dict]]]
        if hasattr(fn, "__self__"):
            ref = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        else:
            ref = lambda: fn  # noqa: E731 - plain function: strong ref is fine
        with self._lock:
            self._collectors.append(ref)

    def scraped(self) -> dict[str, float]:
        """Current collector output, same-name values summed across owners."""
        with self._lock:
            refs = list(self._collectors)
        out: dict[str, float] = {}
        dead: list = []
        for ref in refs:
            fn = ref()
            if fn is None:
                dead.append(ref)
                continue
            try:
                sample = fn()
            except Exception:  # pragma: no cover - a dying owner mid-scrape
                continue
            for name, value in sample.items():
                out[name] = out.get(name, 0.0) + float(value)
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors if r not in dead]
        return out

    # -- exposition ---------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON exposition: direct instruments plus scraped collector values."""
        counters = {c.name: c.value for c in self._counters.values()}
        counters.update(self.scraped())
        return {
            "counters": counters,
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {
                h.name: {
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": {
                        ("+Inf" if b == float("inf") else repr(b)): n
                        for b, n in h.cumulative()
                    },
                }
                for h in self._histograms.values()
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for c in sorted(self._counters.values(), key=lambda c: c.name):
            name = _sane(c.name)
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {c.value}")
        for name, value in sorted(self.scraped().items()):
            name = _sane(name)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        for g in sorted(self._gauges.values(), key=lambda g: g.name):
            name = _sane(g.name)
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {g.value}")
        for h in sorted(self._histograms.values(), key=lambda h: h.name):
            name = _sane(h.name)
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} histogram")
            for bound, n in h.cumulative():
                le = "+Inf" if bound == float("inf") else repr(bound)
                lines.append(f'{name}_bucket{{le="{le}"}} {n}')
            lines.append(f"{name}_sum {h.sum}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + "\n"

    # -- test support -------------------------------------------------------------

    def clear(self) -> None:
        """Drop every instrument and collector (test isolation only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()


#: The process-wide registry; engines and servers register collectors here.
METRICS = MetricsRegistry()
