"""Unified observability: tracing, metrics, and plan profiling.

Three pieces, one import surface:

- :data:`TRACER` -- the process-wide hierarchical span tracer
  (:mod:`repro.obs.trace`); off by default, enabled explicitly or by the
  service's slow-query log / ``trace`` op.
- :data:`METRICS` -- the process-wide metrics registry
  (:mod:`repro.obs.metrics`); counters/gauges/histograms with
  Prometheus-text and JSON exposition, absorbing the per-subsystem stats
  bags through weakly-held scrape collectors.
- :class:`PlanProfiler` / :class:`QueryProfile`
  (:mod:`repro.obs.profile`) -- per-plan-node actual time + rows beside
  the work/depth cost-semantics prediction, surfaced as
  ``Engine.profile`` and ``Session.explain_analyze``.
"""

from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .profile import NodeProfile, PlanProfiler, QueryProfile
from .trace import TRACER, Span, Tracer

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TRACER",
    "Tracer",
    "Span",
    "PlanProfiler",
    "NodeProfile",
    "QueryProfile",
]
