"""Cost-vs-actual plan profiling.

The vectorized compiler caches one :class:`Compiled` closure per
sub-expression; when its :class:`BatchContext` carries a
:class:`PlanProfiler`, every cached closure is wrapped to accumulate
wall time, call count, and result cardinality against the *plan node* it
implements.  ``Engine.profile`` builds a **fresh** instrumented
evaluator per call (sharing the engine's intern table, under the engine
lock), so instrumented closures never enter the engine's steady-state
compile caches and un-profiled queries pay nothing.

Timings are **inclusive**: a node's seconds include its children's,
because the compiled closures nest (the hash-join closure calls the
closures of its inputs).  Rows are the cardinality of the node's last
result when the result is a set (functions and scalars show ``-``).

:class:`QueryProfile` is what ``Session.explain_analyze`` returns: the
executed plan tree annotated per node with actual time + rows, next to
the work/depth cost-semantics prediction for the whole query.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["NodeProfile", "PlanProfiler", "QueryProfile"]


class NodeProfile:
    """Accumulated actuals for one plan node."""

    __slots__ = ("calls", "seconds", "rows")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.rows: Optional[int] = None

    def as_dict(self) -> dict:
        return {"calls": self.calls, "seconds": self.seconds, "rows": self.rows}


def _cardinality(v: Any) -> Optional[int]:
    """Set results report their size; functions/scalars report nothing.

    Duck-typed on ``elements`` so this module needs no import from the
    value layer (and keeps working for both object and interned sets).
    """
    els = getattr(v, "elements", None)
    if isinstance(els, (frozenset, set, tuple, list)):
        return len(els)
    return None


class PlanProfiler:
    """Per-plan-node actuals, keyed by plan-node *identity*.

    Identity, not equality: ``PlanNode`` is a frozen dataclass with
    structural equality, and two different sub-expressions can compile
    to equal plan trees that must not share measurements.
    """

    def __init__(self) -> None:
        # id(plan) -> (plan, profile); the plan reference keeps the id stable.
        self._records: dict[int, tuple[Any, NodeProfile]] = {}

    def wrap(self, plan: Any, fn: Callable) -> Callable:
        rec = self._records.get(id(plan))
        if rec is None:
            rec = (plan, NodeProfile())
            self._records[id(plan)] = rec
        prof = rec[1]

        def profiled(*args: Any, **kwargs: Any) -> Any:
            t0 = perf_counter()
            out = fn(*args, **kwargs)
            prof.seconds += perf_counter() - t0
            prof.calls += 1
            rows = _cardinality(out)
            if rows is not None:
                prof.rows = rows
            return out

        return profiled

    def lookup(self, plan: Any) -> Optional[NodeProfile]:
        rec = self._records.get(id(plan))
        return rec[1] if rec is not None else None

    def profiled_nodes(self) -> int:
        return len(self._records)


def _node_lines(node: Any, depth: int, profiler: PlanProfiler) -> list[str]:
    label = node.op
    if node.detail:
        label += f" [{node.detail}]"
    if node.annotations:
        label += " (" + ", ".join(node.annotations) + ")"
    rec = profiler.lookup(node)
    if rec is not None:
        rows = "-" if rec.rows is None else str(rec.rows)
        label += (
            f"  -- actual {rec.seconds * 1e3:.3f}ms"
            f" rows={rows} calls={rec.calls}"
        )
    lines = ["  " * depth + label]
    for child in node.children:
        lines.extend(_node_lines(child, depth + 1, profiler))
    return lines


@dataclass
class QueryProfile:
    """An executed plan tree with per-node actuals beside the prediction."""

    plan: Any  # PlanNode
    result: Any  # the query's denotation (a Value)
    seconds: float  # total wall time of the profiled execution
    rows: Optional[int]
    estimate: Optional[Any]  # CostEstimate from the work/depth semantics
    predicted_s: Optional[float]  # estimate.work * calibrated seconds-per-work
    profiler: PlanProfiler

    def render(self) -> str:
        rows = "-" if self.rows is None else str(self.rows)
        lines = [
            f"actual: {self.seconds * 1e3:.3f}ms total, {rows} rows",
        ]
        if self.estimate is not None:
            pred = (
                f"~{self.predicted_s * 1e3:.3f}ms"
                if self.predicted_s is not None
                else "uncalibrated"
            )
            lines.append(
                f"predicted: work={self.estimate.work:.0f}"
                f" depth={self.estimate.depth:.0f} ({pred})"
            )
            if self.predicted_s:
                lines.append(
                    f"accuracy: predicted/actual ="
                    f" {self.predicted_s / max(self.seconds, 1e-12):.2f}x"
                )
        else:
            lines.append("predicted: unavailable (cost estimation failed)")
        lines.append("")
        lines.extend(_node_lines(self.plan, 0, self.profiler))
        return "\n".join(lines)

    __str__ = render

    def as_dict(self) -> dict:
        def node_dict(node: Any) -> dict:
            rec = self.profiler.lookup(node)
            return {
                "op": node.op,
                "detail": node.detail,
                "annotations": list(node.annotations),
                "actual": rec.as_dict() if rec is not None else None,
                "children": [node_dict(c) for c in node.children],
            }

        return {
            "seconds": self.seconds,
            "rows": self.rows,
            "predicted_s": self.predicted_s,
            "estimate": (
                {"work": self.estimate.work, "depth": self.estimate.depth}
                if self.estimate is not None
                else None
            ),
            "plan": node_dict(self.plan),
        }
