"""Machine substrates: the DLOGSPACE Turing machine and the CRCW PRAM."""

from .turing import (
    BLANK,
    LogSpaceChecker,
    TMRun,
    TMTransition,
    TuringMachine,
    binary_counting_machine,
    unary_length_parity_machine,
)
from .pram import (
    PRAM,
    PRAMError,
    PRAMProgram,
    PRAMResult,
    ParallelStep,
    WritePolicy,
    WriteRequest,
)
from .pram_programs import (
    add_op,
    decode_tc_memory,
    max_op,
    or_op,
    or_program,
    reduction_tree_program,
    sequential_fold_program,
    tc_squaring_program,
    xor_op,
)

__all__ = [
    "TuringMachine", "TMTransition", "TMRun", "BLANK", "LogSpaceChecker",
    "unary_length_parity_machine", "binary_counting_machine",
    "PRAM", "PRAMProgram", "PRAMResult", "ParallelStep", "WritePolicy",
    "WriteRequest", "PRAMError",
    "reduction_tree_program", "sequential_fold_program", "or_program",
    "tc_squaring_program", "decode_tc_memory",
    "xor_op", "max_op", "add_op", "or_op",
]
