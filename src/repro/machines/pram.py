"""A CRCW PRAM simulator with step and processor accounting (Section 4).

NC is "polylogarithmic time with polynomially many processors on a parallel
random access machine"; by Stockmeyer-Vishkin this coincides with uniform
circuit families of polylog depth.  The simulator here makes the PRAM side of
that equation executable:

* shared memory is a dictionary of integer cells;
* computation proceeds in synchronous **steps**; in each step every active
  processor reads any cells it likes, computes locally, and issues write
  requests;
* reads all happen before writes (concurrent reads are free);
* concurrent writes to the same cell are resolved by the selected CRCW policy:
  ``COMMON`` (all written values must agree), ``ARBITRARY`` (an arbitrary,
  here the lowest-numbered, processor wins) or ``PRIORITY`` (same as
  arbitrary, made explicit).

A :class:`PRAMProgram` is a list of :class:`ParallelStep`; each step names the
processors it activates and the per-processor work.  The simulator reports the
two quantities the paper's complexity claims are about: the number of steps
(parallel time) and the maximum number of processors active in any step,
together with total work.  Ready-made programs (combining trees, transitive
closure by repeated matrix squaring) live in
:mod:`repro.machines.pram_programs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Mapping, Sequence


class WritePolicy(Enum):
    """Concurrent-write resolution policies of the CRCW PRAM."""

    COMMON = "common"
    ARBITRARY = "arbitrary"
    PRIORITY = "priority"


class PRAMError(RuntimeError):
    """Raised on write conflicts under the COMMON policy or malformed programs."""


@dataclass(frozen=True)
class WriteRequest:
    """One write issued by a processor during a step."""

    address: int
    value: int


#: Per-processor step body: receives the processor id and a *read-only* view of
#: shared memory, returns the writes it wants to perform.
StepBody = Callable[[int, Mapping[int, int]], Sequence[WriteRequest]]


@dataclass
class ParallelStep:
    """One synchronous step: which processors run, and what each does."""

    processors: Sequence[int]
    body: StepBody
    label: str = ""


@dataclass
class PRAMProgram:
    """A straight-line sequence of parallel steps (loops are unrolled by builders)."""

    steps: list[ParallelStep] = field(default_factory=list)
    name: str = ""

    def add_step(self, processors: Iterable[int], body: StepBody, label: str = "") -> None:
        self.steps.append(ParallelStep(list(processors), body, label))


@dataclass
class PRAMResult:
    """Outcome of a PRAM run: the complexity measures plus the final memory."""

    steps: int
    max_processors: int
    total_work: int
    memory: dict[int, int]

    def read(self, address: int, default: int = 0) -> int:
        return self.memory.get(address, default)


class PRAM:
    """The CRCW PRAM simulator."""

    def __init__(self, policy: WritePolicy = WritePolicy.ARBITRARY) -> None:
        self.policy = policy

    def run(
        self,
        program: PRAMProgram,
        initial_memory: Mapping[int, int] | None = None,
    ) -> PRAMResult:
        """Execute a program from the given initial shared memory."""
        memory: dict[int, int] = dict(initial_memory or {})
        max_procs = 0
        total_work = 0
        for step in program.steps:
            procs = list(step.processors)
            max_procs = max(max_procs, len(procs))
            total_work += len(procs)
            snapshot = dict(memory)  # reads see the state before any write
            pending: dict[int, tuple[int, int]] = {}  # address -> (proc, value)
            for proc in procs:
                for req in step.body(proc, snapshot):
                    if req.address in pending:
                        winner_proc, winner_value = pending[req.address]
                        if self.policy is WritePolicy.COMMON:
                            if winner_value != req.value:
                                raise PRAMError(
                                    f"COMMON write conflict at address {req.address}: "
                                    f"{winner_value} vs {req.value} "
                                    f"(step {step.label or program.steps.index(step)})"
                                )
                        elif proc < winner_proc:
                            pending[req.address] = (proc, req.value)
                    else:
                        pending[req.address] = (proc, req.value)
            for address, (_, value) in pending.items():
                memory[address] = value
        return PRAMResult(
            steps=len(program.steps),
            max_processors=max_procs,
            total_work=total_work,
            memory=memory,
        )
