"""PRAM programs for the paper's running examples.

These builders unroll the divide-and-conquer evaluations of Section 1 into
straight-line CRCW PRAM programs whose step counts realise the complexity
claims:

* :func:`reduction_tree_program` -- the generic ``dcr`` combining tree: ``n``
  values are reduced with a binary operation in ``ceil(log2 n)`` steps using
  ``n/2`` processors (parity, maximum, boolean OR...);
* :func:`sequential_fold_program` -- the ``sri`` counterpart: the same
  reduction done element by element in ``n`` steps with a single processor
  (the PTIME baseline measured against the tree in experiment E7);
* :func:`tc_squaring_program` -- transitive closure by repeated boolean matrix
  squaring: ``ceil(log2 n)`` rounds, each a constant number of steps with
  ``n^3`` processors (the classic CRCW one-step and/or matrix product);
* :func:`or_program` -- the one-step CRCW OR of ``n`` bits, the textbook
  example of what concurrent writes buy.

Memory layout conventions are documented per builder; every builder returns
the program plus the address at which the result will be found.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .pram import PRAMProgram, WriteRequest

#: A binary operation on integers used by the reduction programs.
BinOp = Callable[[int, int], int]


def xor_op(a: int, b: int) -> int:
    return a ^ b


def max_op(a: int, b: int) -> int:
    return a if a >= b else b


def add_op(a: int, b: int) -> int:
    return a + b


def or_op(a: int, b: int) -> int:
    return 1 if (a or b) else 0


# ---------------------------------------------------------------------------
# Reduction: the dcr combining tree vs the sri sequential fold
# ---------------------------------------------------------------------------

def reduction_tree_program(
    values: Sequence[int], op: BinOp, identity: int = 0
) -> tuple[PRAMProgram, int, dict[int, int]]:
    """The balanced combining tree over ``values``.

    Memory layout: cell ``i`` holds ``values[i]`` initially; the reduction is
    performed in place with stride doubling, so after ``ceil(log2 n)`` steps
    cell ``0`` holds the result.  Step ``t`` activates one processor per pair
    at stride ``2^t`` -- at most ``n/2`` processors, each doing one ``op``.

    Returns ``(program, result_address, initial_memory)``.
    """
    n = len(values)
    program = PRAMProgram(name=f"reduction-tree[{n}]")
    memory = {i: v for i, v in enumerate(values)}
    if n == 0:
        memory[0] = identity
        return program, 0, memory
    stride = 1
    while stride < n:
        pairs = [
            (i, i + stride)
            for i in range(0, n, 2 * stride)
            if i + stride < n
        ]

        def body(proc: int, mem, pairs=pairs, op=op) -> list[WriteRequest]:
            left, right = pairs[proc]
            return [WriteRequest(left, op(mem.get(left, identity), mem.get(right, identity)))]

        program.add_step(range(len(pairs)), body, label=f"stride {stride}")
        stride *= 2
    return program, 0, memory


def sequential_fold_program(
    values: Sequence[int], op: BinOp, identity: int = 0
) -> tuple[PRAMProgram, int, dict[int, int]]:
    """The element-by-element fold of the same values: ``n`` dependent steps.

    Memory layout: cell ``i`` holds ``values[i]``; the accumulator lives at
    cell ``n``; after ``n`` steps it holds the result.  Exactly one processor
    is ever active -- this is what ``sri`` evaluation looks like on a PRAM,
    and the contrast with :func:`reduction_tree_program` is experiment E7.
    """
    n = len(values)
    program = PRAMProgram(name=f"sequential-fold[{n}]")
    memory = {i: v for i, v in enumerate(values)}
    acc = n
    memory[acc] = identity
    for i in range(n):

        def body(proc: int, mem, i=i, op=op) -> list[WriteRequest]:
            return [WriteRequest(acc, op(mem.get(acc, identity), mem.get(i, identity)))]

        program.add_step([0], body, label=f"fold {i}")
    return program, acc, memory


def or_program(num_bits: int) -> tuple[PRAMProgram, int, dict[int, int]]:
    """The one-step CRCW OR: every processor holding a 1 writes to the result cell.

    Bits live at cells ``0..n-1``; the result cell is ``n`` (initialised to
    0).  A single step with ``n`` processors suffices under ARBITRARY (or
    COMMON, since every written value is 1) -- constant parallel time, which
    is why ``ext`` can be a single parallel step in the paper's reading.
    """
    program = PRAMProgram(name=f"crcw-or[{num_bits}]")
    result = num_bits

    def body(proc: int, mem) -> list[WriteRequest]:
        if mem.get(proc, 0):
            return [WriteRequest(result, 1)]
        return []

    program.add_step(range(num_bits), body, label="or")
    memory = {result: 0}
    return program, result, memory


# ---------------------------------------------------------------------------
# Transitive closure by repeated squaring
# ---------------------------------------------------------------------------

def _matrix_cell(n: int, i: int, j: int) -> int:
    return i * n + j


def tc_squaring_program(
    n: int, edges: Sequence[tuple[int, int]]
) -> tuple[PRAMProgram, dict[int, int]]:
    """Transitive closure of an ``n``-node graph by ``ceil(log2 n)`` squarings.

    Memory layout: the adjacency matrix occupies cells ``0 .. n*n-1`` (cell
    ``i*n + j`` is 1 iff the edge ``(i, j)`` is known); a scratch matrix for
    the freshly discovered pairs occupies cells ``n*n .. 2*n*n - 1``.  Each
    squaring round is two steps:

    1. ``n^3`` processors: processor ``(i, j, k)`` writes 1 into scratch cell
       ``(i, j)`` when both ``(i, k)`` and ``(k, j)`` are present (an
       ARBITRARY concurrent write -- this is the constant-time CRCW and/or
       product);
    2. ``n^2`` processors: merge the scratch matrix into the main one and
       clear the scratch.

    Total: ``2 * ceil(log2 n)`` steps, max ``n^3`` processors, matching the
    NC^1-ish shape the paper assigns to transitive closure via ``dcr``.
    """
    program = PRAMProgram(name=f"tc-squaring[{n}]")
    memory: dict[int, int] = {}
    for i, j in edges:
        memory[_matrix_cell(n, i, j)] = 1
    scratch_base = n * n
    rounds = max(1, (n).bit_length())
    for round_index in range(rounds):

        def square_body(proc: int, mem, n=n, scratch_base=scratch_base) -> list[WriteRequest]:
            i, rest = divmod(proc, n * n)
            j, k = divmod(rest, n)
            if mem.get(_matrix_cell(n, i, k), 0) and mem.get(_matrix_cell(n, k, j), 0):
                return [WriteRequest(scratch_base + _matrix_cell(n, i, j), 1)]
            return []

        program.add_step(range(n * n * n), square_body, label=f"square {round_index}")

        def merge_body(proc: int, mem, n=n, scratch_base=scratch_base) -> list[WriteRequest]:
            new_bit = mem.get(scratch_base + proc, 0)
            writes = [WriteRequest(scratch_base + proc, 0)]
            if new_bit or mem.get(proc, 0):
                writes.append(WriteRequest(proc, 1))
            return writes

        program.add_step(range(n * n), merge_body, label=f"merge {round_index}")
    return program, memory


def decode_tc_memory(n: int, memory: dict[int, int]) -> frozenset:
    """Read the closure matrix back out of a finished run's memory."""
    return frozenset(
        (i, j)
        for i in range(n)
        for j in range(n)
        if memory.get(_matrix_cell(n, i, j), 0)
    )
