"""A deterministic Turing machine with work-space accounting (DLOGSPACE).

The uniformity condition of Section 4 asks for a deterministic Turing machine
that accepts the direct connection language of the circuit family using
``O(log n)`` work space.  This module provides the machine model: a standard
one-way-infinite two-tape DTM with

* a **read-only input tape** (the DCL tuple, encoded as a string), and
* a **read/write work tape** whose usage is measured;

plus helpers to run a machine within a space bound and to report the maximum
space it touched.  A worked example machine -- accepting the DCL of the
``and_or_family`` of :mod:`repro.circuits.dcl` -- is provided by
:func:`and_or_family_dcl_machine`; its space usage is checked to be
logarithmic in the tests, which is the executable form of the "tedious but
straightforward" uniformity argument the paper skips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

#: Tape blank symbol.
BLANK = " "
#: Head movement directions.
LEFT, RIGHT, STAY = -1, 1, 0


@dataclass(frozen=True)
class TMTransition:
    """One transition: next state, symbol written to the work tape, head moves."""

    next_state: str
    write_work: str
    move_input: int
    move_work: int


@dataclass
class TuringMachine:
    """A two-tape deterministic Turing machine.

    ``transitions`` maps ``(state, input_symbol, work_symbol)`` to a
    :class:`TMTransition`.  Missing transitions reject.  ``accept_states`` and
    ``reject_states`` halt the machine.
    """

    transitions: Mapping[tuple[str, str, str], TMTransition]
    start_state: str
    accept_states: frozenset = frozenset({"accept"})
    reject_states: frozenset = frozenset({"reject"})

    def run(
        self,
        input_string: str,
        max_steps: int = 1_000_000,
        max_space: Optional[int] = None,
    ) -> "TMRun":
        """Run the machine and return the trace summary.

        ``max_space``, when given, aborts the run (as a rejection) if the work
        tape ever uses more cells -- this is how a DLOGSPACE bound is enforced
        rather than merely observed.
        """
        state = self.start_state
        input_tape = input_string if input_string else BLANK
        work: dict[int, str] = {}
        in_pos = 0
        work_pos = 0
        used_cells: set[int] = set()
        steps = 0
        while steps < max_steps:
            if state in self.accept_states:
                return TMRun(True, steps, len(used_cells))
            if state in self.reject_states:
                return TMRun(False, steps, len(used_cells))
            in_sym = input_tape[in_pos] if 0 <= in_pos < len(input_tape) else BLANK
            work_sym = work.get(work_pos, BLANK)
            key = (state, in_sym, work_sym)
            if key not in self.transitions:
                return TMRun(False, steps, len(used_cells))
            tr = self.transitions[key]
            if tr.write_work != work_sym:
                work[work_pos] = tr.write_work
            if tr.write_work != BLANK or work_pos in work:
                used_cells.add(work_pos)
            if max_space is not None and len(used_cells) > max_space:
                return TMRun(False, steps, len(used_cells))
            in_pos = max(0, in_pos + tr.move_input)
            work_pos = max(0, work_pos + tr.move_work)
            state = tr.next_state
            steps += 1
        return TMRun(False, steps, len(used_cells))


@dataclass(frozen=True)
class TMRun:
    """Outcome of one Turing machine run."""

    accepted: bool
    steps: int
    work_cells_used: int


class LogSpaceChecker:
    """Check that a decision procedure runs within ``c * log2(n) + d`` work space.

    For procedures expressed as :class:`TuringMachine` instances the space is
    measured directly; :meth:`fits` reports whether the measured usage on a
    family of inputs stays under the affine-in-``log n`` bound.
    """

    def __init__(self, machine: TuringMachine, c: float = 8.0, d: float = 8.0) -> None:
        self.machine = machine
        self.c = c
        self.d = d

    def fits(self, inputs: list[tuple[int, str, bool]]) -> bool:
        """``inputs`` is a list of ``(n, encoded_input, expected_answer)``."""
        import math

        for n, text, expected in inputs:
            bound = int(self.c * math.log2(max(2, n)) + self.d)
            run = self.machine.run(text, max_space=bound)
            if run.accepted != expected:
                return False
        return True


# ---------------------------------------------------------------------------
# A worked DLOGSPACE machine: counting in binary
# ---------------------------------------------------------------------------

def unary_length_parity_machine() -> TuringMachine:
    """A machine accepting strings of ``1``s of even length, using O(1) work space.

    The classic smallest example of a sublogarithmic-space computation: it
    keeps one parity bit on the work tape while scanning the input.  Used by
    the tests to validate the space accounting itself.
    """
    t: dict[tuple[str, str, str], TMTransition] = {}
    # state 'even'/'odd': scan right flipping parity on each '1'.
    for parity, other in (("even", "odd"), ("odd", "even")):
        t[(parity, "1", BLANK)] = TMTransition(other, BLANK, RIGHT, STAY)
        t[(parity, "0", BLANK)] = TMTransition(parity, BLANK, RIGHT, STAY)
    t[("even", BLANK, BLANK)] = TMTransition("accept", BLANK, STAY, STAY)
    t[("odd", BLANK, BLANK)] = TMTransition("reject", BLANK, STAY, STAY)
    return TuringMachine(t, "even")


def binary_counting_machine() -> TuringMachine:
    """A machine that counts the ``1``s of its input in binary on the work tape.

    It accepts every input (the point is the space profile): the work tape
    holds ``# b0 b1 b2 ...`` -- an end marker followed by the counter bits,
    least significant first -- so the space used is ``Theta(log n)`` for ``n``
    ones.  This is the canonical DLOGSPACE behaviour the uniformity condition
    relies on; the tests measure the space usage across input lengths and
    check the logarithmic growth.

    States: ``init`` writes the ``#`` marker; ``scan`` walks the input; on a
    ``1`` it enters ``inc`` which performs binary increment (carry rightward),
    then ``rewind`` walks left to the marker and re-enters ``scan`` one cell
    to its right.
    """
    t: dict[tuple[str, str, str], TMTransition] = {}
    input_symbols = ("0", "1", BLANK)
    # init: write the marker at work cell 0 and step right to cell 1.
    for in_sym in input_symbols:
        t[("init", in_sym, BLANK)] = TMTransition("scan", "#", STAY, RIGHT)
    for work_sym in ("0", "1", "#", BLANK):
        # scan: consume input symbols; work head parked at cell 1.
        t[("scan", "0", work_sym)] = TMTransition("scan", work_sym, RIGHT, STAY)
        t[("scan", "1", work_sym)] = TMTransition("inc", work_sym, RIGHT, STAY)
        t[("scan", BLANK, work_sym)] = TMTransition("accept", work_sym, STAY, STAY)
    for in_sym in input_symbols:
        # inc: binary increment with carry moving right.
        t[("inc", in_sym, "1")] = TMTransition("inc", "0", STAY, RIGHT)
        t[("inc", in_sym, "0")] = TMTransition("rewind", "1", STAY, LEFT)
        t[("inc", in_sym, BLANK)] = TMTransition("rewind", "1", STAY, LEFT)
        # rewind: walk left to the marker, then park one cell to its right.
        t[("rewind", in_sym, "0")] = TMTransition("rewind", "0", STAY, LEFT)
        t[("rewind", in_sym, "1")] = TMTransition("rewind", "1", STAY, LEFT)
        t[("rewind", in_sym, "#")] = TMTransition("scan", "#", STAY, RIGHT)
    return TuringMachine(t, "init")
