"""Circuits over string encodings of complex objects (Lemmas 7.4 - 7.6).

Section 7.2 builds its circuits over the Section 5 string encodings: every
position of the encoding is a symbol from the eight-letter alphabet, carried
on three wires.  The lemmas used throughout the compilation are:

* **Lemma 7.4** -- identify matching parenthesis pairs.  The nesting depth of
  any encoding of a fixed type is bounded by a constant ``d_t``, so a circuit
  of depth ``O(d_t)`` suffices.  :func:`paren_depth_wires` computes, for every
  position and every level ``<= d_t``, a wire saying "this position is at
  nesting depth exactly level" -- which is all the later constructions need
  (they never chase an unbounded stack).
* **Lemma 7.5** -- mark the first position of every top-level element of a
  set encoding: :func:`element_start_wires` (a comma at depth 1, or the
  opening brace, followed by the next non-blank position).
* **Lemma 7.6** -- equality of two encoded objects of the same type.  For the
  *minimal* encodings our compiler feeds circuits (no blanks, atoms numbered
  canonically), equality of objects is equality of strings, so
  :func:`encoding_equality_circuit` is an AND of per-position XNORs --
  constant depth, as the lemma requires.  (For non-minimal encodings the
  normalisation is exactly the duplicate-elimination + blank-compaction
  pipeline measured in experiment E6.)

Each builder works on a fixed encoding length ``m`` (circuits are per-length,
as families always are) and takes/returns wire ids in an existing
:class:`Circuit`.  The reference semantics they are tested against is
:mod:`repro.objects.encoding`.
"""

from __future__ import annotations

from typing import Sequence

from ..objects.encoding import ALPHABET, SYMBOL_TO_BITS
from .builders import and_tree, equality_block, or_tree
from .circuit import Circuit

#: Number of wires per encoded symbol.
BITS_PER_SYMBOL = 3


def symbol_wires(position: int) -> tuple[int, int, int]:
    """The three input wire ids carrying the symbol at the given 0-based position."""
    base = position * BITS_PER_SYMBOL
    return (base + 1, base + 2, base + 3)


def symbol_equals(c: Circuit, position_wires: Sequence[int], symbol: str) -> int:
    """A wire that is 1 iff the three position wires spell the given symbol."""
    bits = SYMBOL_TO_BITS[symbol]
    literals = []
    for wire, bit in zip(position_wires, bits):
        literals.append(wire if bit == "1" else c.add_not(wire))
    return c.add_and(literals)


def symbol_in(c: Circuit, position_wires: Sequence[int], symbols: str) -> int:
    """A wire that is 1 iff the position carries one of the given symbols."""
    return c.add_or([symbol_equals(c, position_wires, s) for s in symbols])


def new_encoding_circuit(length: int) -> Circuit:
    """A circuit whose inputs are the 3-bit codes of ``length`` symbols."""
    return Circuit(length * BITS_PER_SYMBOL)


def encoding_to_bits(encoding: str) -> str:
    """Input bit string for a symbol string (3 bits per symbol)."""
    return "".join(SYMBOL_TO_BITS[ch] for ch in encoding)


# ---------------------------------------------------------------------------
# Lemma 7.4: nesting depth, with the constant type-bounded depth
# ---------------------------------------------------------------------------

def paren_depth_wires(c: Circuit, length: int, max_depth: int) -> list[list[int]]:
    """Wires ``d[pos][level]``: position ``pos`` is at nesting depth exactly ``level``.

    The depth of a position is (number of opening brackets at or before it)
    minus (number of closing brackets strictly before it, plus closing at it
    counting itself)... operationally we replicate the reference semantics of
    :func:`repro.objects.encoding.match_parentheses`: an opener or closer is at
    the depth it opens/closes, other symbols at the depth of the enclosing
    bracket.  Because ``max_depth`` is a constant of the *type*, the circuit
    enumerates, for every position and level, all the ways the prefix counts
    can realise that level -- unbounded fan-in makes each level a two-layer
    circuit, so the whole block has depth ``O(1)`` for fixed ``max_depth``.

    The construction here trades gate count for clarity: for every position it
    builds, level by level, a running "depth so far" in unary, using one OR/AND
    layer per level (hence depth ``O(max_depth)``, still constant for a fixed
    type, exactly as Lemma 7.4 states).
    """
    opener = [symbol_in(c, symbol_wires(p), "{(") for p in range(length)]
    closer = [symbol_in(c, symbol_wires(p), "})") for p in range(length)]

    # at_least[p][k]: after reading positions 0..p (inclusive of an opener at p,
    # exclusive of a closer's effect until after p), the depth is >= k.
    # We build it iteratively position by position; the per-position update is
    # constant depth, and unrolling over positions does not add *logical*
    # depth beyond max_depth levels because each level's wires only feed the
    # next level's at the same or later positions.
    depth_exact: list[list[int]] = []
    prev_at_least: list[int] = [c.add_const(True)] + [
        c.add_const(False) for _ in range(max_depth)
    ]
    for p in range(length):
        neither = c.add_and([c.add_not(opener[p]), c.add_not(closer[p])])
        at_least: list[int] = [c.add_const(True)]
        for k in range(1, max_depth + 1):
            # depth >= k after p  iff  opener at p and it was >= k-1,
            #                      or  closer at p and it was >= k+1,
            #                      or  a plain symbol and it was >= k.
            rise = c.add_and([opener[p], prev_at_least[k - 1]])
            above_before = prev_at_least[k + 1] if k + 1 <= max_depth else c.add_const(False)
            fall = c.add_and([closer[p], above_before])
            stay = c.add_and([neither, prev_at_least[k]])
            at_least.append(c.add_or([rise, fall, stay]))
        # The *position's* depth is the depth it opens/closes: an opener sits at
        # the depth reached after it, a closer at the depth held before it, and
        # any other symbol at the (unchanged) surrounding depth.  So "position
        # at depth >= k" is the disjunction of before and after.
        position_at_least = [c.add_const(True)] + [
            c.add_or([prev_at_least[k], at_least[k]]) for k in range(1, max_depth + 1)
        ]
        exact: list[int] = []
        for k in range(max_depth + 1):
            above = (
                position_at_least[k + 1] if k + 1 <= max_depth else c.add_const(False)
            )
            exact.append(c.add_and([position_at_least[k], c.add_not(above)]))
        depth_exact.append(exact)
        prev_at_least = at_least
    return depth_exact


# ---------------------------------------------------------------------------
# Lemma 7.5: element start marks
# ---------------------------------------------------------------------------

def element_start_wires(c: Circuit, length: int, max_depth: int) -> list[int]:
    """One wire per position: 1 iff a top-level element of the set starts there.

    A top-level element starts at the first non-blank position following the
    opening brace or an outermost comma (a comma at nesting depth 1); the
    closing brace never starts an element.  Matches
    :func:`repro.objects.encoding.element_starts` on blank-free encodings (and
    on encodings whose blanks do not precede the first symbol of an element,
    which minimal encodings never have).
    """
    depth_exact = paren_depth_wires(c, length, max_depth)
    marks: list[int] = []
    for p in range(length):
        if p == 0:
            marks.append(c.add_const(False))
            continue
        wires_prev = symbol_wires(p - 1)
        boundary_before = c.add_or([
            c.add_and([symbol_equals(c, wires_prev, ","), depth_exact[p - 1][1]])
            if max_depth >= 1 else c.add_const(False),
            c.add_and([symbol_equals(c, wires_prev, "{"), depth_exact[p - 1][1]])
            if max_depth >= 1 else c.add_const(False),
        ])
        not_closing_here = c.add_not(symbol_in(c, symbol_wires(p), "})"))
        not_blank_here = c.add_not(symbol_equals(c, symbol_wires(p), "_"))
        marks.append(c.add_and([boundary_before, not_closing_here, not_blank_here]))
    return marks


# ---------------------------------------------------------------------------
# Lemma 7.6: equality of encoded objects
# ---------------------------------------------------------------------------

def encoding_equality_circuit(length: int) -> Circuit:
    """Equality of two minimal encodings of the same length, constant depth.

    The circuit has ``2 * length`` symbols of input (first string followed by
    the second) and a single output: 1 iff the two symbol strings are equal.
    On minimal encodings string equality coincides with object equality
    (canonical sets, no blanks, canonical atom numbering), which is how the
    compiled queries use it.
    """
    c = Circuit(2 * length * BITS_PER_SYMBOL)
    first = list(range(1, length * BITS_PER_SYMBOL + 1))
    second = list(range(length * BITS_PER_SYMBOL + 1, 2 * length * BITS_PER_SYMBOL + 1))
    out = equality_block(c, first, second)
    c.set_outputs([out])
    return c


# ---------------------------------------------------------------------------
# Section 5: duplicate elimination over encoded elements
# ---------------------------------------------------------------------------

def duplicate_elimination_circuit(num_elements: int, element_length: int) -> Circuit:
    """Keep-masks for a sequence of equal-length encoded elements, constant depth.

    Inputs: ``num_elements`` blocks of ``element_length`` symbols each.
    Outputs: one bit per element, 1 iff no earlier element is symbol-for-symbol
    equal -- the parallel comparison pass the paper uses to remove duplicates
    from set encodings before blank compaction.
    """
    c = Circuit(num_elements * element_length * BITS_PER_SYMBOL)
    blocks: list[list[int]] = []
    for i in range(num_elements):
        start = i * element_length * BITS_PER_SYMBOL
        blocks.append(list(range(start + 1, start + element_length * BITS_PER_SYMBOL + 1)))
    from .builders import duplicate_mask_block

    masks = duplicate_mask_block(c, blocks)
    c.set_outputs(masks)
    return c
