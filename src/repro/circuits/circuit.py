"""Unbounded fan-in Boolean circuits (Section 4).

The AC^k classes are defined with circuits "made up of input gates, NOT gates,
unbounded AND and OR gates", of polynomial size and depth ``O(log^k n)``.
:class:`Circuit` is a straightforward DAG of such gates:

* gates are numbered consecutively; gate 1..n are the inputs (the paper gives
  the input gates "the special assigned numbers 1..n");
* AND/OR gates have arbitrarily many children, NOT has one, constants none;
* any gate may be designated an output (outputs are ordered);
* :meth:`Circuit.evaluate` computes all gate values for a given input string;
* :meth:`Circuit.depth` and :meth:`Circuit.size` are the complexity measures
  the AC^k definition constrains (size = number of gates, depth = longest
  path from an input/constant to an output).

Construction is append-only: a gate may only reference gates created before
it, so the DAG is topologically ordered by construction and evaluation is a
single forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence


class GateType(Enum):
    """The gate kinds of the AC^k circuit model."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    NOT = "not"
    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class Gate:
    """One gate: its type and the ids of its children (inputs to the gate)."""

    gid: int
    type: GateType
    children: tuple[int, ...] = ()


class CircuitError(ValueError):
    """Raised on malformed circuit constructions."""


class Circuit:
    """A Boolean circuit with unbounded fan-in AND/OR gates.

    ``Circuit(n)`` starts with ``n`` input gates numbered ``1..n``.  Gates are
    added with :meth:`add_not`, :meth:`add_and`, :meth:`add_or`,
    :meth:`add_const`; outputs are declared with :meth:`set_outputs`.
    """

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 0:
            raise CircuitError("number of inputs must be non-negative")
        self.num_inputs = num_inputs
        self._gates: list[Gate] = [
            Gate(i + 1, GateType.INPUT) for i in range(num_inputs)
        ]
        self._outputs: list[int] = []

    # -- construction -------------------------------------------------------------
    def _add(self, gtype: GateType, children: Iterable[int]) -> int:
        kids = tuple(children)
        next_id = len(self._gates) + 1
        for c in kids:
            if not 1 <= c < next_id:
                raise CircuitError(
                    f"gate {next_id} of type {gtype.value} references unknown gate {c}"
                )
        gate = Gate(next_id, gtype, kids)
        self._gates.append(gate)
        return next_id

    def add_const(self, value: bool) -> int:
        """Add a constant gate and return its id."""
        return self._add(GateType.CONST1 if value else GateType.CONST0, ())

    def add_not(self, child: int) -> int:
        """Add a NOT gate over one child."""
        return self._add(GateType.NOT, (child,))

    def add_and(self, children: Iterable[int]) -> int:
        """Add an unbounded fan-in AND gate (empty AND is the constant 1)."""
        kids = tuple(children)
        if not kids:
            return self.add_const(True)
        if len(kids) == 1:
            return kids[0]
        return self._add(GateType.AND, kids)

    def add_or(self, children: Iterable[int]) -> int:
        """Add an unbounded fan-in OR gate (empty OR is the constant 0)."""
        kids = tuple(children)
        if not kids:
            return self.add_const(False)
        if len(kids) == 1:
            return kids[0]
        return self._add(GateType.OR, kids)

    def add_xor2(self, a: int, b: int) -> int:
        """Binary XOR as the usual two-level AND/OR/NOT combination."""
        return self.add_or([
            self.add_and([a, self.add_not(b)]),
            self.add_and([self.add_not(a), b]),
        ])

    def add_xnor2(self, a: int, b: int) -> int:
        """Binary equivalence (XNOR)."""
        return self.add_not(self.add_xor2(a, b))

    def set_outputs(self, gate_ids: Sequence[int]) -> None:
        """Declare the ordered list of output gates."""
        for g in gate_ids:
            if not 1 <= g <= len(self._gates):
                raise CircuitError(f"output references unknown gate {g}")
        self._outputs = list(gate_ids)

    # -- inspection ---------------------------------------------------------------
    @property
    def gates(self) -> list[Gate]:
        return list(self._gates)

    @property
    def outputs(self) -> list[int]:
        return list(self._outputs)

    def gate(self, gid: int) -> Gate:
        return self._gates[gid - 1]

    def size(self) -> int:
        """Number of gates (the AC^k size measure)."""
        return len(self._gates)

    def num_wires(self) -> int:
        """Total fan-in over all gates (a finer size measure, reported in benches)."""
        return sum(len(g.children) for g in self._gates)

    def depth(self) -> int:
        """Longest path from an input or constant to any output gate."""
        depths = [0] * (len(self._gates) + 1)
        for g in self._gates:
            if g.type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                depths[g.gid] = 0
            else:
                depths[g.gid] = 1 + max((depths[c] for c in g.children), default=0)
        if not self._outputs:
            return max(depths, default=0)
        return max(depths[o] for o in self._outputs)

    # -- evaluation ---------------------------------------------------------------
    def evaluate(self, inputs: Sequence[bool] | str) -> list[bool]:
        """Evaluate the circuit on an input assignment, returning the outputs.

        ``inputs`` may be a sequence of booleans or a string of ``0``/``1``
        characters of length ``num_inputs``.
        """
        bits = _coerce_bits(inputs)
        if len(bits) != self.num_inputs:
            raise CircuitError(
                f"expected {self.num_inputs} input bits, got {len(bits)}"
            )
        values = [False] * (len(self._gates) + 1)
        for g in self._gates:
            if g.type is GateType.INPUT:
                values[g.gid] = bits[g.gid - 1]
            elif g.type is GateType.CONST0:
                values[g.gid] = False
            elif g.type is GateType.CONST1:
                values[g.gid] = True
            elif g.type is GateType.NOT:
                values[g.gid] = not values[g.children[0]]
            elif g.type is GateType.AND:
                values[g.gid] = all(values[c] for c in g.children)
            elif g.type is GateType.OR:
                values[g.gid] = any(values[c] for c in g.children)
            else:  # pragma: no cover - exhaustive
                raise CircuitError(f"unknown gate type {g.type}")
        return [values[o] for o in self._outputs]

    def evaluate_to_string(self, inputs: Sequence[bool] | str) -> str:
        """Evaluate and render the outputs as a 0/1 string."""
        return "".join("1" if b else "0" for b in self.evaluate(inputs))

    def __repr__(self) -> str:
        return (
            f"Circuit(inputs={self.num_inputs}, size={self.size()}, "
            f"depth={self.depth()}, outputs={len(self._outputs)})"
        )


def _coerce_bits(inputs: Sequence[bool] | str) -> list[bool]:
    if isinstance(inputs, str):
        if any(ch not in "01" for ch in inputs):
            raise CircuitError(f"input string must be over 0/1, got {inputs!r}")
        return [ch == "1" for ch in inputs]
    return [bool(b) for b in inputs]
