"""Reusable circuit building blocks (Lemmas 7.4 - 7.6 and friends).

These are the gadgets the Proposition 7.7 compilation keeps reaching for:

* :func:`equality_block` -- Lemma 7.6: equality of two bit blocks in constant
  depth (an AND of XNORs);
* :func:`duplicate_mask_block` -- the duplicate-elimination step of Section 5:
  each element compares itself against every earlier element in parallel and
  is masked out when an equal one exists; constant depth;
* :func:`leq_block` -- unsigned comparison of two bit blocks in constant
  depth, used wherever the simulations need the order;
* :func:`parity_tree` -- XOR of ``n`` bits as a balanced tree of binary XORs,
  depth ``Theta(log n)``: parity is *not* in AC^0, so logarithmic depth is
  unavoidable, and this block is the circuit-level shadow of the parity-by-dcr
  query;
* :func:`or_tree` / :func:`and_tree` -- single unbounded fan-in gates (depth
  1), provided for symmetry with the bounded fan-in variants;
* :func:`mux_block` -- a 2-way multiplexer, the circuit form of ``if``.

Every builder *appends* gates to an existing :class:`Circuit` and returns the
ids of the result wires, so larger constructions compose them freely.
"""

from __future__ import annotations

from typing import Sequence

from .circuit import Circuit


def equality_block(c: Circuit, a: Sequence[int], b: Sequence[int]) -> int:
    """One wire that is 1 iff the two equal-length wire blocks carry equal bits."""
    if len(a) != len(b):
        raise ValueError("equality_block requires blocks of equal length")
    if not a:
        return c.add_const(True)
    agreements = [c.add_xnor2(x, y) for x, y in zip(a, b)]
    return c.add_and(agreements)


def inequality_block(c: Circuit, a: Sequence[int], b: Sequence[int]) -> int:
    """One wire that is 1 iff the blocks differ somewhere."""
    return c.add_not(equality_block(c, a, b))


def leq_block(c: Circuit, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a <= b`` on two equal-length big-endian bit blocks, constant depth.

    ``a <= b`` iff for no position ``i``: ``a_i > b_i`` while all higher
    positions agree.  Each such condition is a single AND; their OR, negated,
    gives the result -- three levels of unbounded fan-in gates.
    """
    if len(a) != len(b):
        raise ValueError("leq_block requires blocks of equal length")
    greater_witnesses = []
    for i in range(len(a)):
        higher_agree = [c.add_xnor2(a[j], b[j]) for j in range(i)]
        strictly_greater_here = c.add_and([a[i], c.add_not(b[i])])
        greater_witnesses.append(c.add_and(higher_agree + [strictly_greater_here]))
    a_greater = c.add_or(greater_witnesses)
    return c.add_not(a_greater)


def duplicate_mask_block(
    c: Circuit, elements: Sequence[Sequence[int]]
) -> list[int]:
    """Keep-masks for duplicate elimination over equal-width element blocks.

    Output wire ``i`` is 1 iff element ``i`` is *not* equal to any earlier
    element -- exactly the parallel comparison pass the paper uses to remove
    duplicates from set encodings (Section 5).  Constant depth: every
    comparison is independent.
    """
    masks: list[int] = []
    for i, elem in enumerate(elements):
        earlier_equal = [equality_block(c, elem, elements[j]) for j in range(i)]
        if earlier_equal:
            masks.append(c.add_not(c.add_or(earlier_equal)))
        else:
            masks.append(c.add_const(True))
    return masks


def membership_block(
    c: Circuit, needle: Sequence[int], haystack: Sequence[Sequence[int]]
) -> int:
    """One wire that is 1 iff the needle block equals some haystack block."""
    if not haystack:
        return c.add_const(False)
    return c.add_or([equality_block(c, needle, h) for h in haystack])


def or_tree(c: Circuit, wires: Sequence[int]) -> int:
    """OR of many wires; with unbounded fan-in this is a single gate."""
    return c.add_or(list(wires))


def and_tree(c: Circuit, wires: Sequence[int]) -> int:
    """AND of many wires; with unbounded fan-in this is a single gate."""
    return c.add_and(list(wires))


def parity_tree(c: Circuit, wires: Sequence[int]) -> int:
    """XOR of many wires as a balanced binary tree, depth ``Theta(log n)``.

    Parity is the canonical function outside AC^0 (with unbounded fan-in but
    constant depth), so unlike :func:`or_tree` this block genuinely needs
    logarithmic depth -- matching the single level of ``dcr`` nesting the
    parity query uses.
    """
    if not wires:
        return c.add_const(False)
    level = list(wires)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(c.add_xor2(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def mux_block(c: Circuit, sel: int, when_true: int, when_false: int) -> int:
    """2-way multiplexer: ``sel ? when_true : when_false`` (the circuit ``if``)."""
    return c.add_or([
        c.add_and([sel, when_true]),
        c.add_and([c.add_not(sel), when_false]),
    ])


def constant_block(c: Circuit, bits: str) -> list[int]:
    """A block of constant wires carrying the given 0/1 string."""
    return [c.add_const(ch == "1") for ch in bits]
