"""Unbounded fan-in circuits, AC^k families and the flat-query compiler.

* :mod:`repro.circuits.circuit` -- the circuit model of Section 4;
* :mod:`repro.circuits.builders` -- reusable blocks (equality, comparison,
  duplicate masks, parity trees, multiplexers);
* :mod:`repro.circuits.string_ops` -- circuits over Section 5 encodings
  (Lemmas 7.4-7.6);
* :mod:`repro.circuits.compile_flat` -- the flat-query IR and its compilation
  to circuit families (the measurable face of Proposition 7.7);
* :mod:`repro.circuits.families` -- size/depth measurement and empirical AC^k
  membership;
* :mod:`repro.circuits.dcl` -- the direct connection language and
  DLOGSPACE-uniformity checking.
"""

from .circuit import Circuit, CircuitError, Gate, GateType
from .builders import (
    and_tree,
    duplicate_mask_block,
    equality_block,
    inequality_block,
    leq_block,
    membership_block,
    mux_block,
    or_tree,
    parity_tree,
)
from .compile_flat import (
    ComposeQ,
    CompiledQuery,
    ConverseQ,
    DiffQ,
    EmptyQ,
    FlatQuery,
    FullQ,
    IdentityQ,
    InputRel,
    IntersectQ,
    LogLoopQ,
    LoopVar,
    NonEmptyQ,
    ParityQ,
    UnionQ,
    compile_query,
    connectivity_query,
    decode_relation,
    encode_relations,
    evaluate_query,
    nested_loop_query,
    parity_query,
    tc_squaring_query,
)
from .families import (
    CircuitFamily,
    FamilyMeasurement,
    looks_like_ack,
    polylog_depth_bound,
    polynomial_size_bound,
)
from .dcl import (
    UniformityWitness,
    and_or_family,
    and_or_family_witness,
    check_uniformity,
    direct_connection_language,
    encode_dcl_tuple,
)
from .string_ops import (
    duplicate_elimination_circuit,
    element_start_wires,
    encoding_equality_circuit,
    encoding_to_bits,
    new_encoding_circuit,
    paren_depth_wires,
    symbol_equals,
    symbol_in,
    symbol_wires,
)

__all__ = [
    "Circuit", "CircuitError", "Gate", "GateType",
    "equality_block", "inequality_block", "leq_block", "duplicate_mask_block",
    "membership_block", "or_tree", "and_tree", "parity_tree", "mux_block",
    "FlatQuery", "InputRel", "LoopVar", "UnionQ", "IntersectQ", "DiffQ",
    "ComposeQ", "ConverseQ", "IdentityQ", "EmptyQ", "FullQ", "LogLoopQ",
    "NonEmptyQ", "ParityQ", "CompiledQuery", "compile_query", "evaluate_query",
    "encode_relations", "decode_relation", "tc_squaring_query", "parity_query",
    "connectivity_query", "nested_loop_query",
    "CircuitFamily", "FamilyMeasurement", "looks_like_ack",
    "polylog_depth_bound", "polynomial_size_bound",
    "direct_connection_language", "encode_dcl_tuple", "UniformityWitness",
    "check_uniformity", "and_or_family", "and_or_family_witness",
    "new_encoding_circuit", "encoding_to_bits", "symbol_wires", "symbol_equals",
    "symbol_in", "paren_depth_wires", "element_start_wires",
    "encoding_equality_circuit", "duplicate_elimination_circuit",
]
