"""Compiling flat queries to circuit families (Proposition 7.7, flat case).

Proposition 7.7 compiles every ``NRA(blog_loop^(k))`` expression into a
DLOGSPACE-uniform circuit family of depth ``O(log^k n)`` and polynomial size.
This module carries that construction out, executably, for the **flat**
fragment the benchmarks measure: queries over binary relations on an ordered
domain of ``n`` elements.

Encoding.  A binary relation over ``n`` nodes is presented to the circuit as
an ``n x n`` bit matrix (one input gate per potential edge).  This is
Immerman's encoding of flat relations [22]; the paper notes (Section 5) that
for flat relations it is inter-translatable with its own string encoding
within AC^1, so measuring depth/size against it preserves the AC^k claims for
k >= 1.

The source language is a tiny *flat query IR* mirroring the relational core of
NRA plus the iterators:

* ``InputRel(name)`` -- an input relation;
* ``LoopVar(name)`` -- the variable bound by an enclosing loop;
* ``UnionQ``, ``IntersectQ``, ``DiffQ`` -- boolean combinations (depth O(1));
* ``ComposeQ`` -- relation composition, one existential quantification:
  an OR over ``n`` AND gates per output position (depth O(1), size O(n^3));
* ``ConverseQ``, ``IdentityQ``, ``EmptyQ``, ``FullQ`` -- trivial shapes;
* ``LogLoopQ(var, body, init)`` -- iterate ``body`` (which may mention
  ``LoopVar(var)``) ``ceil(log2(n+1))`` times starting from ``init``: the
  circuit is ``ceil(log2(n+1))`` stacked copies of the body circuit, exactly
  the ``blog_loop`` case of the Proposition 7.7 proof;
* ``NonEmptyQ``, ``ParityQ`` -- bit-valued outputs (a single OR; a
  logarithmic-depth XOR tree).

:func:`compile_query` turns an IR term into a :class:`Circuit` for a given
``n``; :func:`evaluate_query` is the reference semantics on plain Python
relations, used by the tests to check the circuits gate-for-gate; and the
ready-made families at the bottom (:func:`tc_squaring_family`,
:func:`parity_family`, :func:`nested_loop_family`) are what experiment E5
measures: depth grows as ``Theta(log^k n)`` while size stays polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..recursion.iterators import log_iterations
from .builders import parity_tree
from .circuit import Circuit

#: A relation signal: an n x n matrix of wire ids, row-major.
Signal = list


class FlatQuery:
    """Base class of flat query IR terms."""

    __slots__ = ()


@dataclass(frozen=True)
class InputRel(FlatQuery):
    """An input relation, fed to the circuit as an n x n bit matrix."""

    name: str


@dataclass(frozen=True)
class LoopVar(FlatQuery):
    """The relation variable bound by an enclosing :class:`LogLoopQ`."""

    name: str


@dataclass(frozen=True)
class UnionQ(FlatQuery):
    left: FlatQuery
    right: FlatQuery


@dataclass(frozen=True)
class IntersectQ(FlatQuery):
    left: FlatQuery
    right: FlatQuery


@dataclass(frozen=True)
class DiffQ(FlatQuery):
    left: FlatQuery
    right: FlatQuery


@dataclass(frozen=True)
class ComposeQ(FlatQuery):
    """Relation composition ``left o right``."""

    left: FlatQuery
    right: FlatQuery


@dataclass(frozen=True)
class ConverseQ(FlatQuery):
    arg: FlatQuery


@dataclass(frozen=True)
class IdentityQ(FlatQuery):
    """The identity relation ``{(i, i)}``."""


@dataclass(frozen=True)
class EmptyQ(FlatQuery):
    """The empty relation."""


@dataclass(frozen=True)
class FullQ(FlatQuery):
    """The full relation ``[n] x [n]``."""


@dataclass(frozen=True)
class LogLoopQ(FlatQuery):
    """Iterate ``body`` ``ceil(log2(n+1))`` times, starting from ``init``.

    Inside ``body`` the term ``LoopVar(var)`` refers to the previous iterate.
    This is the circuit-level ``blog_loop``: the bound is implicit (the full
    n x n matrix), so intermediate relations stay polynomial by construction.
    """

    var: str
    body: FlatQuery
    init: FlatQuery


@dataclass(frozen=True)
class NonEmptyQ(FlatQuery):
    """A single output bit: is the relation non-empty?  (one OR gate)."""

    arg: FlatQuery


@dataclass(frozen=True)
class ParityQ(FlatQuery):
    """A single output bit: the parity of the number of pairs in the relation.

    Parity is not in AC^0, so this output necessarily contributes a
    ``Theta(log n)`` depth XOR tree -- the circuit shadow of the parity query.
    """

    arg: FlatQuery


# ---------------------------------------------------------------------------
# Compilation to circuits
# ---------------------------------------------------------------------------

@dataclass
class CompiledQuery:
    """A compiled query: the circuit plus the input layout.

    ``input_layout`` maps each input relation name to the offset of its
    ``n*n`` block inside the circuit's input string.
    """

    circuit: Circuit
    n: int
    input_names: tuple[str, ...]
    relation_output: bool

    def input_bits(self, relations: Mapping[str, frozenset]) -> str:
        """Encode Python relations as the circuit's input bit string."""
        return encode_relations(self.n, self.input_names, relations)

    def run(self, relations: Mapping[str, frozenset]) -> "frozenset | bool":
        """Evaluate the circuit on the given relations and decode the output."""
        out = self.circuit.evaluate(self.input_bits(relations))
        if self.relation_output:
            return decode_relation(self.n, out)
        return out[0]


def input_names_of(q: FlatQuery) -> tuple[str, ...]:
    """The input relation names mentioned by a query, in first-use order."""
    names: list[str] = []

    def walk(t: FlatQuery) -> None:
        if isinstance(t, InputRel) and t.name not in names:
            names.append(t.name)
        for f in getattr(t, "__dataclass_fields__", {}):
            v = getattr(t, f)
            if isinstance(v, FlatQuery):
                walk(v)

    walk(q)
    return tuple(names)


def compile_query(q: FlatQuery, n: int) -> CompiledQuery:
    """Compile a flat query over an ``n``-element domain into a circuit."""
    if n < 1:
        raise ValueError("domain size must be >= 1")
    names = input_names_of(q)
    circuit = Circuit(n * n * len(names))
    env: dict[str, Signal] = {}
    for idx, name in enumerate(names):
        base = idx * n * n
        env[name] = [base + k + 1 for k in range(n * n)]
    signal_or_bit = _compile(q, circuit, n, env, {})
    if isinstance(signal_or_bit, int):
        circuit.set_outputs([signal_or_bit])
        return CompiledQuery(circuit, n, names, relation_output=False)
    circuit.set_outputs(signal_or_bit)
    return CompiledQuery(circuit, n, names, relation_output=True)


def _compile(
    q: FlatQuery,
    c: Circuit,
    n: int,
    inputs: Mapping[str, Signal],
    loops: Mapping[str, Signal],
):
    if isinstance(q, InputRel):
        return list(inputs[q.name])
    if isinstance(q, LoopVar):
        if q.name not in loops:
            raise ValueError(f"loop variable {q.name!r} used outside its loop")
        return list(loops[q.name])
    if isinstance(q, UnionQ):
        a = _compile(q.left, c, n, inputs, loops)
        b = _compile(q.right, c, n, inputs, loops)
        return [c.add_or([x, y]) for x, y in zip(a, b)]
    if isinstance(q, IntersectQ):
        a = _compile(q.left, c, n, inputs, loops)
        b = _compile(q.right, c, n, inputs, loops)
        return [c.add_and([x, y]) for x, y in zip(a, b)]
    if isinstance(q, DiffQ):
        a = _compile(q.left, c, n, inputs, loops)
        b = _compile(q.right, c, n, inputs, loops)
        return [c.add_and([x, c.add_not(y)]) for x, y in zip(a, b)]
    if isinstance(q, ComposeQ):
        a = _compile(q.left, c, n, inputs, loops)
        b = _compile(q.right, c, n, inputs, loops)
        out: Signal = []
        for i in range(n):
            for j in range(n):
                witnesses = [
                    c.add_and([a[i * n + k], b[k * n + j]]) for k in range(n)
                ]
                out.append(c.add_or(witnesses))
        return out
    if isinstance(q, ConverseQ):
        a = _compile(q.arg, c, n, inputs, loops)
        return [a[j * n + i] for i in range(n) for j in range(n)]
    if isinstance(q, IdentityQ):
        return [c.add_const(i == j) for i in range(n) for j in range(n)]
    if isinstance(q, EmptyQ):
        return [c.add_const(False) for _ in range(n * n)]
    if isinstance(q, FullQ):
        return [c.add_const(True) for _ in range(n * n)]
    if isinstance(q, LogLoopQ):
        current = _compile(q.init, c, n, inputs, loops)
        rounds = log_iterations(n)
        for _ in range(rounds):
            inner_loops = dict(loops)
            inner_loops[q.var] = current
            current = _compile(q.body, c, n, inputs, inner_loops)
        return current
    if isinstance(q, NonEmptyQ):
        a = _compile(q.arg, c, n, inputs, loops)
        return c.add_or(a)
    if isinstance(q, ParityQ):
        a = _compile(q.arg, c, n, inputs, loops)
        return parity_tree(c, a)
    raise TypeError(f"unknown flat query node {type(q).__name__}")


# ---------------------------------------------------------------------------
# Reference semantics (oracle for the circuits)
# ---------------------------------------------------------------------------

def evaluate_query(
    q: FlatQuery, n: int, relations: Mapping[str, frozenset]
) -> "frozenset | bool":
    """Evaluate a flat query directly on Python relations over ``{0..n-1}``."""
    full = frozenset((i, j) for i in range(n) for j in range(n))

    def ev(t: FlatQuery, loops: Mapping[str, frozenset]) -> "frozenset | bool":
        if isinstance(t, InputRel):
            return frozenset(relations[t.name])
        if isinstance(t, LoopVar):
            return loops[t.name]
        if isinstance(t, UnionQ):
            return ev(t.left, loops) | ev(t.right, loops)  # type: ignore[operator]
        if isinstance(t, IntersectQ):
            return ev(t.left, loops) & ev(t.right, loops)  # type: ignore[operator]
        if isinstance(t, DiffQ):
            return ev(t.left, loops) - ev(t.right, loops)  # type: ignore[operator]
        if isinstance(t, ComposeQ):
            a = ev(t.left, loops)
            b = ev(t.right, loops)
            assert isinstance(a, frozenset) and isinstance(b, frozenset)
            return frozenset(
                (i, j) for i, k1 in a for k2, j in b if k1 == k2
            )
        if isinstance(t, ConverseQ):
            a = ev(t.arg, loops)
            assert isinstance(a, frozenset)
            return frozenset((j, i) for i, j in a)
        if isinstance(t, IdentityQ):
            return frozenset((i, i) for i in range(n))
        if isinstance(t, EmptyQ):
            return frozenset()
        if isinstance(t, FullQ):
            return full
        if isinstance(t, LogLoopQ):
            current = ev(t.init, loops)
            for _ in range(log_iterations(n)):
                inner = dict(loops)
                inner[t.var] = current  # type: ignore[assignment]
                current = ev(t.body, inner)
            return current
        if isinstance(t, NonEmptyQ):
            a = ev(t.arg, loops)
            assert isinstance(a, frozenset)
            return len(a) > 0
        if isinstance(t, ParityQ):
            a = ev(t.arg, loops)
            assert isinstance(a, frozenset)
            return len(a) % 2 == 1
        raise TypeError(f"unknown flat query node {type(t).__name__}")

    return ev(q, {})


def encode_relations(
    n: int, names: Sequence[str], relations: Mapping[str, frozenset]
) -> str:
    """Encode relations over ``{0..n-1}`` as the circuit input bit string."""
    bits: list[str] = []
    for name in names:
        rel = relations.get(name, frozenset())
        for i in range(n):
            for j in range(n):
                bits.append("1" if (i, j) in rel else "0")
    return "".join(bits)


def decode_relation(n: int, bits: Sequence[bool]) -> frozenset:
    """Decode an ``n*n`` output bit vector back into a relation."""
    return frozenset(
        (i, j) for i in range(n) for j in range(n) if bits[i * n + j]
    )


# ---------------------------------------------------------------------------
# The measured query families (experiment E5)
# ---------------------------------------------------------------------------

def tc_squaring_query() -> FlatQuery:
    """Transitive closure by repeated squaring: nesting depth 1, AC^1 shape."""
    return LogLoopQ("T", UnionQ(LoopVar("T"), ComposeQ(LoopVar("T"), LoopVar("T"))), InputRel("r"))


def parity_query() -> FlatQuery:
    """Parity of the number of edges: the canonical not-in-AC^0 output."""
    return ParityQ(InputRel("r"))


def connectivity_query() -> FlatQuery:
    """Is every ordered pair connected by a directed path?  (strong connectivity)."""
    closure = UnionQ(IdentityQ(), tc_squaring_query())
    return NonEmptyQ(DiffQ(FullQ(), closure))


def nested_loop_query(k: int) -> FlatQuery:
    """A depth-``k`` nest of ``LogLoopQ``: the Example 7.2 ``log^k n`` iterator.

    Level 1 is the squaring loop; level ``j > 1`` iterates the whole
    level-``j-1`` nest ``ceil(log2(n+1))`` times, so in total the squaring
    step runs ``(log n)^k`` times.  Semantically the result equals the
    transitive closure for every ``k >= 1`` (squaring converges and is then
    idempotent), but the compiled circuit's depth grows as ``Theta(log^k n)``
    -- exactly the nesting-depth / AC^k correspondence of the main theorems.
    """
    if k < 1:
        raise ValueError("nesting depth must be >= 1")

    def build(level: int, init: FlatQuery) -> FlatQuery:
        var = f"T{level}"
        if level == 1:
            body: FlatQuery = UnionQ(LoopVar(var), ComposeQ(LoopVar(var), LoopVar(var)))
            return LogLoopQ(var, body, init)
        return LogLoopQ(var, build(level - 1, LoopVar(var)), init)

    return build(k, InputRel("r"))
