"""The Direct Connection Language and DLOGSPACE uniformity (Section 4).

The paper adopts Cook's DLOGSPACE-DCL uniformity: the *direct connection
language* of a circuit family ``{alpha_n}`` is the set of quadruples
``(n, g, g', t)`` such that gate ``g`` is a child of gate ``g'`` in
``alpha_n`` and ``g'`` has type ``t`` (NOT, AND, OR, or the output label
``y_i``); the family is uniform when some deterministic ``O(log n)``-space
Turing machine accepts this language.

This module provides:

* :func:`direct_connection_language` -- extract the DCL tuples of one circuit
  (the paper's inputs get the reserved numbers ``1..n``, which our
  :class:`repro.circuits.circuit.Circuit` already follows);
* :func:`encode_dcl_tuple` -- the string form fed to a Turing machine;
* :class:`UniformityWitness` -- a claimed decision procedure for the DCL of a
  family (a predicate over tuples), together with
  :func:`check_uniformity`, which verifies the claim against the actually
  constructed circuits for a range of ``n``.  The space bound of the witness
  is attested by running it on the :class:`repro.machines.turing.TuringMachine`
  substrate where such a machine is provided (see
  ``repro.machines.turing.and_family_dcl_machine`` for a worked example), or
  by inspection of the predicate for the generated families, whose gate
  numbering is an arithmetic function of ``(n, g)``.

The paper itself waves the uniformity proof through as "tedious but
straightforward"; mechanically checking the DCL of the generated families for
small ``n`` is the honest executable counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .circuit import Circuit, GateType

#: A DCL tuple ``(n, child, parent, parent_type)``; outputs are additionally
#: reported as ``(n, gate, 0, "y_i")``.
DCLTuple = tuple


def direct_connection_language(circuit: Circuit, n: int) -> frozenset:
    """The DCL tuples of one circuit, tagged with the family parameter ``n``."""
    tuples: set[DCLTuple] = set()
    for gate in circuit.gates:
        if gate.type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        for child in gate.children:
            tuples.add((n, child, gate.gid, gate.type.value.upper()))
    for position, out_gate in enumerate(circuit.outputs, start=1):
        tuples.add((n, out_gate, 0, f"y{position}"))
    return frozenset(tuples)


def encode_dcl_tuple(t: DCLTuple) -> str:
    """Encode a DCL tuple as the string a Turing machine would read.

    Numbers are written in binary, fields separated by ``#`` -- a standard
    log-space-readable layout.
    """
    n, child, parent, gate_type = t
    return f"{n:b}#{child:b}#{parent:b}#{gate_type}"


@dataclass
class UniformityWitness:
    """A claimed DCL decision procedure for a circuit family.

    ``predicate(n, child, parent, gate_type)`` must return True exactly on the
    DCL of the family.  ``space_note`` documents why the predicate is
    computable in O(log n) space (typically: it only does arithmetic and
    comparisons on the binary representations of ``n``, ``child`` and
    ``parent``).
    """

    name: str
    predicate: Callable[[int, int, int, str], bool]
    space_note: str = ""


def check_uniformity(
    build: Callable[[int], Circuit],
    witness: UniformityWitness,
    sizes: Iterable[int],
) -> bool:
    """Does the witness decide exactly the DCL of the constructed circuits?

    For every ``n`` in ``sizes`` the circuit is built, its DCL extracted, and
    the witness is evaluated on every tuple over the circuit's gate universe.
    Quadratic in the circuit size, so intended for the small ``n`` the tests
    and benchmarks use.
    """
    for n in sizes:
        circuit = build(n)
        actual = direct_connection_language(circuit, n)
        universe = range(0, circuit.size() + 1)
        gate_types = {"NOT", "AND", "OR"} | {f"y{i+1}" for i in range(len(circuit.outputs))}
        for child in universe:
            for parent in universe:
                for gate_type in gate_types:
                    claimed = witness.predicate(n, child, parent, gate_type)
                    present = (n, child, parent, gate_type) in actual
                    if claimed != present:
                        return False
    return True


def and_or_family(n: int) -> Circuit:
    """A deliberately simple family used to exercise the uniformity machinery.

    Circuit ``alpha_n``: inputs ``1..n``; gate ``n+1`` is the AND of all
    inputs, gate ``n+2`` is the OR of all inputs, gate ``n+3`` (the single
    output ``y1``) is the OR of gates ``n+1`` and ``n+2`` -- i.e. the function
    "some input is 1".  Its DCL is an arithmetic predicate on ``(n, g, g')``,
    decidable in logarithmic space, and the witness below is checked against
    the built circuits in the tests.
    """
    c = Circuit(n)
    and_gate = c.add_and(range(1, n + 1))
    or_gate = c.add_or(range(1, n + 1))
    top = c.add_or([and_gate, or_gate])
    c.set_outputs([top])
    return c


def and_or_family_witness() -> UniformityWitness:
    """The log-space DCL predicate of :func:`and_or_family`."""

    def predicate(n: int, child: int, parent: int, gate_type: str) -> bool:
        and_gate, or_gate, top = n + 1, n + 2, n + 3
        if gate_type == "AND":
            return parent == and_gate and 1 <= child <= n
        if gate_type == "OR":
            if parent == or_gate:
                return 1 <= child <= n
            if parent == top:
                return child in (and_gate, or_gate)
            return False
        if gate_type == "y1":
            return parent == 0 and child == top
        return False

    return UniformityWitness(
        "and_or_family",
        predicate,
        "only compares child/parent against n+1, n+2, n+3: O(log n) space",
    )
