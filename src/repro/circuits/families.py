"""Circuit families and empirical AC^k membership (Section 4).

A function is in AC^k when it is computed by a *family* of circuits
``{alpha_n}`` of polynomial size and ``O(log^k n)`` depth (plus uniformity,
handled in :mod:`repro.circuits.dcl`).  A :class:`CircuitFamily` packages a
builder ``n -> Circuit`` with caching and measurement helpers; the membership
checks are necessarily empirical -- they fit the measured size/depth curves
over a range of ``n`` -- which is exactly what experiment E5 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .circuit import Circuit


@dataclass
class FamilyMeasurement:
    """Size/depth of one member of a circuit family."""

    n: int
    size: int
    depth: int
    wires: int


@dataclass
class CircuitFamily:
    """A uniform-by-construction family of circuits, one per input parameter ``n``.

    ``parameter`` is the natural size parameter of the family (number of graph
    nodes, number of bits, ...); ``builder(n)`` constructs the ``n``-th
    circuit.  The same Python function builds every member, which is the
    practical reading of uniformity; the formal DCL check lives in
    :mod:`repro.circuits.dcl`.
    """

    name: str
    builder: Callable[[int], Circuit]
    description: str = ""
    _cache: dict = field(default_factory=dict, repr=False)

    def circuit(self, n: int) -> Circuit:
        if n not in self._cache:
            self._cache[n] = self.builder(n)
        return self._cache[n]

    def measure(self, sizes: Iterable[int]) -> list[FamilyMeasurement]:
        out = []
        for n in sizes:
            c = self.circuit(n)
            out.append(FamilyMeasurement(n, c.size(), c.depth(), c.num_wires()))
        return out

    def depth_profile(self, sizes: Iterable[int]) -> list[tuple[int, int]]:
        return [(m.n, m.depth) for m in self.measure(sizes)]

    def size_profile(self, sizes: Iterable[int]) -> list[tuple[int, int]]:
        return [(m.n, m.size) for m in self.measure(sizes)]


def polylog_depth_bound(
    measurements: Sequence[FamilyMeasurement], k: int
) -> tuple[float, bool]:
    """Fit ``depth <= c * log2(n+1)^k`` and report (c, all points satisfy it).

    Returns the smallest constant ``c`` making the bound hold on the measured
    points, and whether the *ratio* ``depth / log^k n`` is non-increasing in
    the tail (a practical signature of genuinely polylogarithmic growth rather
    than a polynomial hiding behind a generous constant).
    """
    ratios = []
    for m in measurements:
        denom = math.log2(m.n + 1) ** k
        ratios.append(m.depth / denom if denom > 0 else float(m.depth))
    c = max(ratios) if ratios else 0.0
    tail = ratios[len(ratios) // 2 :]
    non_increasing_tail = all(tail[i + 1] <= tail[i] * 1.10 for i in range(len(tail) - 1))
    return c, non_increasing_tail


def polynomial_size_bound(
    measurements: Sequence[FamilyMeasurement], degree: int
) -> tuple[float, bool]:
    """Fit ``size <= c * n^degree`` analogously to :func:`polylog_depth_bound`."""
    ratios = [m.size / (m.n ** degree) for m in measurements if m.n > 0]
    c = max(ratios) if ratios else 0.0
    tail = ratios[len(ratios) // 2 :]
    bounded_tail = all(tail[i + 1] <= tail[i] * 1.10 for i in range(len(tail) - 1))
    return c, bounded_tail


def looks_like_ack(
    family: CircuitFamily,
    k: int,
    sizes: Sequence[int],
    size_degree: int = 4,
) -> dict:
    """Empirical AC^k membership report for a circuit family.

    Returns a dictionary with the measurements, the fitted constants and the
    two verdicts (depth polylogarithmic of exponent ``k``; size polynomial of
    degree at most ``size_degree``).  This is the summary printed by the
    experiment E5 benchmark.
    """
    ms = family.measure(sizes)
    depth_c, depth_ok = polylog_depth_bound(ms, k)
    size_c, size_ok = polynomial_size_bound(ms, size_degree)
    return {
        "family": family.name,
        "k": k,
        "measurements": [(m.n, m.size, m.depth) for m in ms],
        "depth_constant": depth_c,
        "depth_polylog_ok": depth_ok,
        "size_constant": size_c,
        "size_polynomial_ok": size_ok,
    }
