"""The asyncio query server: sessions, cursors and views over the wire.

:class:`QueryServer` puts a TCP front on the in-process API layer
(:mod:`repro.api`) without re-implementing any of it: every wire session is
a real :class:`~repro.api.session.Session`, every wire cursor a real
:class:`~repro.api.cursor.Cursor`, every standing query a real
:class:`~repro.engine.incremental.view.MaterializedView`.  All sessions
share the server's one :class:`~repro.engine.Engine`, so the plan caches,
intern table and join indexes amortize across *clients*, exactly as they
amortize across threads in-process -- the point the `service-queries-per-sec`
benchmark measures.

Architecture (one connection):

* a **frame reader** coroutine pulls length-prefixed JSON frames
  (:mod:`repro.service.protocol`) and spawns one task per request, so slow
  queries never block fast ones on the same connection;
* a **writer queue** serializes every outbound frame (responses *and*
  notification pushes) through a single drain task -- the only place that
  touches the asyncio writer;
* engine work runs in a bounded thread pool via ``run_in_executor``; the
  event loop itself never evaluates a query, so handshakes, status probes
  and cancellations stay responsive under load.

Sessions are **multiplexed**: one connection opens any number of logical
sessions (``open_session``), each with its own stats attribution and its own
cursor/statement/view registries.  View subscriptions push ``notify`` frames
when commits change a materialized result; the listener fires on whatever
thread committed, and hops onto the event loop with
``call_soon_threadsafe`` -- the one cross-thread entry point asyncio
guarantees.

Admission control is three independent gates, all answering with the typed
``SERVER_BUSY`` error rather than queueing unboundedly or hanging:

* ``max_sessions`` -- server-wide cap on open logical sessions;
* ``max_inflight`` -- per-session cap on concurrently executing requests;
* ``max_queue_depth`` -- server-wide cap on engine work queued or running
  in the thread pool.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

from ..api.catalog import Database
from ..api.cursor import Cursor
from ..api.prepare import PreparedStatement
from ..api.session import Session
from ..engine.engine import Engine
from ..nra.externals import EMPTY_SIGMA, Signature
from ..nra.parser import parse
from ..objects.encoding import from_jsonable, to_jsonable
from ..objects.types import format_type, parse_type
from ..objects.values import SetVal
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServerBusy,
    ServiceError,
    error_payload,
    negotiate,
    read_frame_async,
    write_frame_async,
)

SERVER_NAME = "repro-service/1"


@dataclass
class ServerConfig:
    """Tunables for one :class:`QueryServer`; defaults suit tests and demos."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read QueryServer.port after start
    max_sessions: int = 32
    max_inflight: int = 4
    max_queue_depth: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    chunk_rows: int = 512
    workers: int = 4
    #: Slow-query log threshold (seconds).  ``None`` disables the log and
    #: its per-query span entirely; setting it enables the process tracer
    #: so logged entries carry the route decision and hottest plan nodes.
    slow_query_s: Optional[float] = None


@dataclass
class ServerStats:
    """Server-wide counters; mutate only under the server lock."""

    connections_opened: int = 0
    connections_closed: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    queries: int = 0
    rows_streamed: int = 0
    notifications: int = 0
    busy_rejections: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


@dataclass
class _SessionState:
    """One logical session: the api Session plus its wire-handle registries."""

    sid: str
    session: Session
    conn: "_Connection"
    backend: Optional[str]
    inflight: int = 0
    next_handle: int = 0
    cursors: dict = field(default_factory=dict)
    statements: dict = field(default_factory=dict)
    views: dict = field(default_factory=dict)  # vid -> (view, listener|None)
    closed: bool = False

    def handle(self, prefix: str) -> str:
        self.next_handle += 1
        return f"{prefix}{self.next_handle}"


class _Connection:
    """Per-connection state: the writer queue and the sessions it opened."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.out: asyncio.Queue = asyncio.Queue()
        self.sessions: dict[str, _SessionState] = {}
        self.tasks: set = set()
        self.closing = False

    def push(self, frame: dict) -> None:
        """Enqueue a frame for the drain task (event-loop thread only)."""
        if not self.closing:
            self.out.put_nowait(frame)


class QueryServer:
    """A network front end over one engine and (optionally) one database."""

    def __init__(
        self,
        db: Optional[Database] = None,
        backend: str = "vectorized",
        sigma: Signature = EMPTY_SIGMA,
        rules=None,
        engine: Optional[Engine] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.db = db
        self.config = config if config is not None else ServerConfig()
        self.engine = engine if engine is not None else Engine(
            sigma=sigma, rules=rules, backend=backend
        )
        self.stats = ServerStats()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: Bounded slow-query log (newest last); served by the ``metrics``
        #: op.  Armed by ``ServerConfig.slow_query_s``, which also turns
        #: the process tracer on so entries carry real span trees.
        self.slow_queries: deque = deque(maxlen=64)
        if self.config.slow_query_s is not None:
            TRACER.enable()
        METRICS.register_collector(self._metrics_sample)
        self._lock = threading.Lock()
        self._sessions: dict[str, _SessionState] = {}
        self._next_sid = 0
        self._queue_depth = 0
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-service"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------------

    async def serve(self) -> None:
        """Bind, accept and serve until :meth:`stop` (or task cancellation)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        addr = server.sockets[0].getsockname()
        self.host, self.port = addr[0], addr[1]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._shutdown_sessions()
            self._executor.shutdown(wait=False)

    def start_in_thread(self) -> tuple[str, int]:
        """Run the server on a daemon thread; returns the bound (host, port).

        The shape tests, benchmarks and the in-process demo use: the caller
        keeps its thread, the server keeps its event loop, and :meth:`stop`
        joins cleanly.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")

        def run() -> None:
            try:
                asyncio.run(self.serve())
            except BaseException as exc:  # surface bind errors to the caller
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if self.port is None:
            raise RuntimeError("server did not become ready within 10s")
        return self.host, self.port

    def stop(self, timeout: float = 10.0) -> None:
        """Signal shutdown and (for threaded servers) join the loop thread."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop in time")
            self._thread = None

    def _shutdown_sessions(self) -> None:
        with self._lock:
            states = list(self._sessions.values())
            self._sessions.clear()
        for st in states:
            self._close_session_state(st)

    def _close_session_state(self, st: _SessionState) -> None:
        with self._lock:
            if st.closed:
                return  # shutdown and connection teardown can both get here
            st.closed = True
        for view, listener in list(st.views.values()):
            if listener is not None:
                view.remove_listener(listener)
        st.views.clear()
        st.cursors.clear()
        st.statements.clear()
        st.session.close()
        with self._lock:
            self.stats.sessions_closed += 1

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        with self._lock:
            self.stats.connections_opened += 1
        drain = asyncio.create_task(self._drain_writer(conn))
        try:
            if not await self._handshake(conn, reader):
                return
            while True:
                try:
                    frame = await read_frame_async(
                        reader, self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # The stream cannot be resynchronized after a framing
                    # error; report and hang up.
                    conn.push({"id": None, "ok": False, "error": error_payload(exc)})
                    break
                if frame is None:
                    break
                task = asyncio.create_task(self._serve_request(conn, frame))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        except asyncio.CancelledError:
            pass  # server shutdown; fall through to cleanup, end uncancelled
        finally:
            for task in list(conn.tasks):
                task.cancel()
            for sid in list(conn.sessions):
                st = conn.sessions.pop(sid)
                with self._lock:
                    self._sessions.pop(sid, None)
                self._close_session_state(st)
            conn.closing = True
            conn.out.put_nowait(None)  # unblock + stop the drain task
            try:
                await drain
            except asyncio.CancelledError:
                drain.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            with self._lock:
                self.stats.connections_closed += 1

    async def _drain_writer(self, conn: _Connection) -> None:
        while True:
            frame = await conn.out.get()
            if frame is None:
                return
            try:
                await write_frame_async(
                    conn.writer, frame, self.config.max_frame_bytes
                )
            except (ConnectionError, OSError):
                conn.closing = True
                return

    async def _handshake(self, conn: _Connection, reader) -> bool:
        try:
            frame = await read_frame_async(reader, self.config.max_frame_bytes)
        except ProtocolError as exc:
            conn.push({"id": None, "ok": False, "error": error_payload(exc)})
            return False
        if frame is None:
            return False
        rid = frame.get("id")
        try:
            if frame.get("op") != "hello":
                raise ProtocolError(
                    f"first frame must be op 'hello', got {frame.get('op')!r}"
                )
            version = negotiate(frame.get("protocol"))
        except ProtocolError as exc:
            conn.push({"id": rid, "ok": False, "error": error_payload(exc)})
            return False
        conn.push({
            "id": rid,
            "ok": True,
            "protocol": list(version),
            "server": SERVER_NAME,
            "db": self.db.name if self.db is not None else None,
            "schema": self._schema_payload(),
            "backend": self.engine.backend,
            "max_frame_bytes": self.config.max_frame_bytes,
        })
        return True

    def _schema_payload(self) -> dict:
        if self.db is None:
            return {}
        return {name: format_type(t) for name, t in self.db.schema().items()}

    # -- request dispatch ---------------------------------------------------------

    async def _serve_request(self, conn: _Connection, frame: dict) -> None:
        rid = frame.get("id")
        op = frame.get("op")
        handler = self._HANDLERS.get(op)
        try:
            if handler is None:
                raise ServiceError(f"unknown op {op!r}")
            result = await handler(self, conn, frame)
            response = {"id": rid, "ok": True}
            response.update(result)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            with self._lock:
                if isinstance(exc, ServerBusy):
                    self.stats.busy_rejections += 1
                else:
                    self.stats.errors += 1
            payload = error_payload(exc)
            if handler is None:
                payload["code"] = "UNKNOWN_OP"
            response = {"id": rid, "ok": False, "error": payload}
        conn.push(response)

    def _state(self, conn: _Connection, frame: dict) -> _SessionState:
        sid = frame.get("session")
        st = conn.sessions.get(sid)
        if st is None:
            raise KeyError(f"unknown session {sid!r}")
        return st

    async def _offload(self, fn):
        """Run engine-bound work on the pool, gated by queue depth."""
        with self._lock:
            if self._queue_depth >= self.config.max_queue_depth:
                raise ServerBusy(
                    f"work queue is full ({self.config.max_queue_depth} deep); "
                    "retry later"
                )
            self._queue_depth += 1
        try:
            # Run under a copy of the calling task's context so tracer
            # spans opened around the await parent spans opened inside
            # the executor thread (contextvars do not cross threads).
            ctx = contextvars.copy_context()
            return await self._loop.run_in_executor(self._executor, ctx.run, fn)
        finally:
            with self._lock:
                self._queue_depth -= 1

    async def _offload_query(self, st: _SessionState, label: str, fn):
        """Offload a query, feeding the slow-query log when armed."""
        threshold = self.config.slow_query_s
        if threshold is None:
            return await self._offload(fn)
        with TRACER.span("request", query=label, session=st.sid) as span:
            t0 = perf_counter()
            result = await self._offload(fn)
            seconds = perf_counter() - t0
        if seconds >= threshold:
            self._record_slow(st, label, seconds, span)
        return result

    def _record_slow(self, st, label: str, seconds: float, span) -> None:
        entry = {
            "query": label,
            "session": st.sid,
            "seconds": seconds,
        }
        query_span = span.find("query") if hasattr(span, "find") else None
        if query_span is not None:
            entry["route"] = {
                k: query_span.attrs[k]
                for k in ("backend", "route", "shards")
                if k in query_span.attrs
            }
        if hasattr(span, "hottest"):
            entry["hot_nodes"] = [
                {"name": s.name, "seconds": s.seconds, "attrs": dict(s.attrs)}
                for s in span.hottest(3)
            ]
        with self._lock:
            self.slow_queries.append(entry)

    def _metrics_sample(self) -> dict:
        """Scrape-time collector: server counters as prometheus names."""
        return {
            f"repro_service_{f}_total": getattr(self.stats, f)
            for f in self.stats.__dataclass_fields__
        }

    def _admit(self, st: _SessionState) -> None:
        with self._lock:
            if st.inflight >= self.config.max_inflight:
                raise ServerBusy(
                    f"session {st.sid} already has {st.inflight} queries in "
                    f"flight (cap {self.config.max_inflight}); retry later"
                )
            st.inflight += 1

    def _release(self, st: _SessionState) -> None:
        with self._lock:
            st.inflight -= 1

    # -- ops: sessions ------------------------------------------------------------

    async def _op_ping(self, conn, frame) -> dict:
        return {}

    async def _op_open_session(self, conn, frame) -> dict:
        backend = frame.get("backend")
        with self._lock:
            if len(self._sessions) >= self.config.max_sessions:
                raise ServerBusy(
                    f"session cap reached ({self.config.max_sessions}); "
                    "close a session or retry later"
                )
            self._next_sid += 1
            sid = f"s{self._next_sid}"
            self.stats.sessions_opened += 1
        session = Session(db=self.db, engine=self.engine)
        st = _SessionState(sid=sid, session=session, conn=conn, backend=backend)
        with self._lock:
            self._sessions[sid] = st
        conn.sessions[sid] = st
        return {"session": sid, "backend": backend or self.engine.backend}

    async def _op_close_session(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        conn.sessions.pop(st.sid, None)
        with self._lock:
            self._sessions.pop(st.sid, None)
        self._close_session_state(st)
        return {"closed": st.sid}

    # -- ops: queries and cursors -------------------------------------------------

    def _decode_params(self, frame: dict) -> dict:
        return {
            name: from_jsonable(obj)
            for name, obj in (frame.get("params") or {}).items()
        }

    def _prepare_from_frame(self, st: _SessionState, frame: dict) -> PreparedStatement:
        template = parse(frame["query"])
        param_types = {
            name: parse_type(text)
            for name, text in (frame.get("param_types") or {}).items()
        }
        defaults = {
            name: from_jsonable(obj)
            for name, obj in (frame.get("defaults") or {}).items()
        }
        return st.session.prepare_template(
            template,
            param_types,
            defaults,
            label=frame.get("label", "remote"),
            backend=frame.get("backend", st.backend),
        )

    def _cursor_reply(self, st: _SessionState, cursor: Cursor, chunk: int) -> dict:
        values = cursor.fetch_values(chunk)
        done = cursor.rownumber >= len(cursor)
        reply = {
            "total": len(cursor),
            "scalar": not isinstance(cursor.value, SetVal),
            "rows": [to_jsonable(v) for v in values],
            "done": done,
        }
        with self._lock:
            self.stats.queries += 1
            self.stats.rows_streamed += len(values)
        if not done:
            cid = st.handle("c")
            st.cursors[cid] = cursor
            reply["cursor"] = cid
        return reply

    async def _op_execute(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        chunk = int(frame.get("chunk", self.config.chunk_rows))
        params = self._decode_params(frame)
        self._admit(st)
        try:
            def work() -> Cursor:
                if frame.get("param_types"):
                    ps = self._prepare_from_frame(st, frame)
                    return ps.execute(params=params)
                template = parse(frame["query"])
                return st.session.execute(
                    template, params=params,
                    backend=frame.get("backend", st.backend),
                )

            cursor = await self._offload_query(
                st, frame.get("query", "execute"), work)
        finally:
            self._release(st)
        return self._cursor_reply(st, cursor, chunk)

    async def _op_prepare(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        self._admit(st)
        try:
            ps = await self._offload(lambda: self._prepare_from_frame(st, frame))
        finally:
            self._release(st)
        pid = st.handle("p")
        st.statements[pid] = ps
        return {
            "statement": pid,
            "params": {n: format_type(t) for n, t in ps.param_types.items()},
            "label": ps.label,
        }

    async def _op_execute_statement(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        ps = st.statements.get(frame.get("statement"))
        if ps is None:
            raise KeyError(f"unknown statement {frame.get('statement')!r}")
        chunk = int(frame.get("chunk", self.config.chunk_rows))
        params = self._decode_params(frame)
        self._admit(st)
        try:
            cursor = await self._offload_query(
                st, ps.label, lambda: ps.execute(params=params))
        finally:
            self._release(st)
        return self._cursor_reply(st, cursor, chunk)

    async def _op_close_statement(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        st.statements.pop(frame.get("statement"), None)
        return {}

    async def _op_fetch(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        cid = frame.get("cursor")
        cursor = st.cursors.get(cid)
        if cursor is None:
            raise KeyError(f"unknown cursor {cid!r}")
        size = int(frame.get("size", self.config.chunk_rows))
        values = cursor.fetch_values(size)
        done = cursor.rownumber >= len(cursor)
        if done:
            st.cursors.pop(cid, None)
        with self._lock:
            self.stats.rows_streamed += len(values)
        return {"rows": [to_jsonable(v) for v in values], "done": done}

    async def _op_close_cursor(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        st.cursors.pop(frame.get("cursor"), None)
        return {}

    # -- ops: materialized views and updates --------------------------------------

    async def _op_materialize(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        params = self._decode_params(frame)
        name = frame.get("name")
        subscribe = bool(frame.get("subscribe", True))
        self._admit(st)
        try:
            def work():
                if frame.get("param_types"):
                    runnable = self._prepare_from_frame(st, frame)
                else:
                    runnable = parse(frame["query"])
                return st.session.materialize(runnable, name=name, params=params)

            view = await self._offload(work)
        finally:
            self._release(st)
        vid = st.handle("v")
        listener = None
        if subscribe:
            listener = self._make_listener(conn, st.sid, vid)
            view.add_listener(listener)
        st.views[vid] = (view, listener)
        return {
            "view": vid,
            "name": view.name,
            "rows": len(view.value.elements),
            "plan": str(view.maintenance_plan()),
        }

    def _make_listener(self, conn: _Connection, sid: str, vid: str):
        loop = self._loop

        def listener(view, delta, fallback: bool) -> None:
            # Fires on the committing thread; encode there, enqueue on the
            # loop.  Transport errors must not fail the commit.
            frame = {
                "push": "notify",
                "session": sid,
                "view": vid,
                "name": view.name,
                "inserted": [to_jsonable(v) for v in delta.inserted],
                "deleted": [to_jsonable(v) for v in delta.deleted],
                "fallback": fallback,
                "size": len(view.value.elements),
            }
            with self._lock:
                self.stats.notifications += 1
            try:
                loop.call_soon_threadsafe(conn.push, frame)
            except RuntimeError:
                pass  # loop shut down while a commit was in flight

        return listener

    def _view_of(self, st: _SessionState, frame: dict):
        vid = frame.get("view")
        entry = st.views.get(vid)
        if entry is None:
            raise KeyError(f"unknown view {vid!r}")
        return vid, entry

    async def _op_view_rows(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        _, (view, _) = self._view_of(st, frame)
        values = view.value.elements
        with self._lock:
            self.stats.rows_streamed += len(values)
        return {
            "name": view.name,
            "rows": [to_jsonable(v) for v in values],
        }

    async def _op_close_view(self, conn, frame) -> dict:
        st = self._state(conn, frame)
        vid, (view, listener) = self._view_of(st, frame)
        if listener is not None:
            view.remove_listener(listener)
        st.views.pop(vid, None)
        view.close()
        return {"closed": vid}

    async def _op_insert(self, conn, frame) -> dict:
        return await self._mutate(conn, frame, "insert")

    async def _op_delete(self, conn, frame) -> dict:
        return await self._mutate(conn, frame, "delete")

    async def _mutate(self, conn, frame, how: str) -> dict:
        st = self._state(conn, frame)
        if self.db is None:
            raise RuntimeError("server has no database to mutate")
        collection = frame.get("collection")
        rows = [from_jsonable(obj) for obj in frame.get("rows", [])]
        self._admit(st)
        try:
            def work():
                mutate = self.db.insert if how == "insert" else self.db.delete
                changeset = mutate(collection, rows)
                return len(changeset[collection].inserts) if collection in changeset \
                    else 0, self.db.version

            applied, version = await self._offload(work)
        finally:
            self._release(st)
        return {"applied": applied, "version": version}

    # -- ops: introspection -------------------------------------------------------

    async def _op_status(self, conn, frame) -> dict:
        with self._lock:
            stats = self.stats.as_dict()
            sessions = len(self._sessions)
            queue_depth = self._queue_depth
            inflight = sum(s.inflight for s in self._sessions.values())
        return {
            "server": SERVER_NAME,
            "protocol": list(PROTOCOL_VERSION),
            "db": self.db.name if self.db is not None else None,
            "db_version": self.db.version if self.db is not None else None,
            "backend": self.engine.backend,
            "sessions": sessions,
            "max_sessions": self.config.max_sessions,
            "inflight": inflight,
            "max_inflight": self.config.max_inflight,
            "queue_depth": queue_depth,
            "max_queue_depth": self.config.max_queue_depth,
            "stats": stats,
            # Adaptive-routing telemetry; null unless the engine has routed
            # (backend="auto" somewhere) since its plans were last cleared.
            "router": self.engine.router_stats(),
        }

    async def _op_sessions(self, conn, frame) -> dict:
        with self._lock:
            states = list(self._sessions.values())
        rows = []
        for st in states:
            rows.append({
                "session": st.sid,
                "backend": st.backend or self.engine.backend,
                "inflight": st.inflight,
                "cursors": len(st.cursors),
                "statements": len(st.statements),
                "views": len(st.views),
                "stats": st.session.stats.as_dict(),
            })
        return {"sessions": rows}

    async def _op_views(self, conn, frame) -> dict:
        with self._lock:
            states = list(self._sessions.values())
        rows = []
        for st in states:
            for vid, (view, listener) in list(st.views.items()):
                rows.append({
                    "view": vid,
                    "session": st.sid,
                    "name": view.name,
                    "rows": len(view.value.elements),
                    "subscribed": listener is not None,
                })
        return {"views": rows}

    async def _op_schema(self, conn, frame) -> dict:
        return {"schema": self._schema_payload()}

    async def _op_metrics(self, conn, frame) -> dict:
        reply: dict = {"metrics": METRICS.as_dict()}
        if frame.get("format") == "prometheus":
            reply["prometheus"] = METRICS.render_prometheus()
        with self._lock:
            reply["slow_queries"] = list(self.slow_queries)
        reply["slow_query_s"] = self.config.slow_query_s
        return reply

    async def _op_trace(self, conn, frame) -> dict:
        """Execute one query with tracing forced on; reply carries the tree."""
        st = self._state(conn, frame)
        chunk = int(frame.get("chunk", self.config.chunk_rows))
        params = self._decode_params(frame)
        self._admit(st)
        prev = TRACER.enabled
        TRACER.enable()
        try:
            def work() -> Cursor:
                template = parse(frame["query"])
                return st.session.execute(
                    template, params=params,
                    backend=frame.get("backend", st.backend),
                )

            with TRACER.span(
                "request", query=frame.get("query"), session=st.sid,
            ) as span:
                cursor = await self._offload(work)
        finally:
            # Restore the steady state: on only if the slow-query log (or
            # someone else before us) had armed the tracer.
            if not (prev or self.config.slow_query_s is not None):
                TRACER.disable()
            self._release(st)
        reply = self._cursor_reply(st, cursor, chunk)
        reply["trace"] = span.as_dict()
        reply["rendered"] = span.render()
        return reply

    _HANDLERS = {
        "ping": _op_ping,
        "open_session": _op_open_session,
        "close_session": _op_close_session,
        "execute": _op_execute,
        "prepare": _op_prepare,
        "execute_statement": _op_execute_statement,
        "close_statement": _op_close_statement,
        "fetch": _op_fetch,
        "close_cursor": _op_close_cursor,
        "materialize": _op_materialize,
        "view_rows": _op_view_rows,
        "close_view": _op_close_view,
        "insert": _op_insert,
        "delete": _op_delete,
        "status": _op_status,
        "sessions": _op_sessions,
        "views": _op_views,
        "schema": _op_schema,
        "metrics": _op_metrics,
        "trace": _op_trace,
    }
