"""The wire protocol: length-prefixed JSON frames plus the error taxonomy.

One frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  Both directions speak the same framing; what differs is the
payload shape:

* client -> server: **requests** ``{"id": n, "op": "...", ...}``.  ``id`` is
  a client-chosen correlation number, echoed verbatim in the response so one
  connection can have many requests in flight.
* server -> client: **responses** ``{"id": n, "ok": true, ...}`` or
  ``{"id": n, "ok": false, "error": {...}}``, and unsolicited **push
  frames** ``{"push": "notify", ...}`` carrying materialized-view deltas.

Observability rides on the same request/response shapes -- ``op:
"metrics"`` returns the metrics-registry snapshot plus the slow-query
log, and ``op: "trace"`` executes one query with tracing forced on and
replies with the span tree beside the usual cursor fields -- so neither
needed a framing or version change.

The first exchange is the handshake: the client sends ``op: "hello"`` with
its ``protocol`` pair and the server either accepts (echoing the negotiated
version, the database schema, and its frame-size limit) or rejects with
``PROTOCOL_MISMATCH``.  Version negotiation is major-exact / minor-min:
the major versions must match, and the connection runs at the smaller of the
two minor versions.

Errors travel as ``{"code", "error_class", "message"}`` dictionaries.
``code`` is the coarse machine-readable taxonomy below (``SERVER_BUSY`` is
the one admission control emits; clients retry on it and on nothing else);
``error_class`` is the Python exception class name on the server, which
:func:`exception_from_error` maps back to the *same* class on the client
when it is one of the registered engine/API types -- a remote
``NRATypeError`` raises as ``NRATypeError``, not as a stringly-typed bag.

Frame size is bounded (:data:`MAX_FRAME_BYTES` by default) on **both** ends:
a reader that trusts the peer's length header is a memory-exhaustion bug,
so oversized headers raise :class:`FrameTooLarge` before any allocation.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

from ..nra.errors import (
    NRAError,
    NRAEvalError,
    NRAParseError,
    NRAScopeError,
    NRATypeError,
)
from ..objects.encoding import EncodingError

#: (major, minor).  Major must match exactly; minor negotiates downward.
PROTOCOL_VERSION = (1, 0)

#: Default refusal threshold for a single frame, either direction.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")
HEADER_BYTES = _HEADER.size


# -- error taxonomy ---------------------------------------------------------------

#: Framing / handshake problems (connection is torn down).
BAD_FRAME = "BAD_FRAME"
FRAME_TOO_LARGE = "FRAME_TOO_LARGE"
PROTOCOL_MISMATCH = "PROTOCOL_MISMATCH"
#: Admission control: the only retryable code.
SERVER_BUSY = "SERVER_BUSY"
#: Stale or bogus handles.
UNKNOWN_SESSION = "UNKNOWN_SESSION"
UNKNOWN_CURSOR = "UNKNOWN_CURSOR"
UNKNOWN_STATEMENT = "UNKNOWN_STATEMENT"
UNKNOWN_VIEW = "UNKNOWN_VIEW"
UNKNOWN_OP = "UNKNOWN_OP"
#: Query-layer failures, mapped from engine exceptions.
PARSE_ERROR = "PARSE_ERROR"
TYPE_ERROR = "TYPE_ERROR"
EVAL_ERROR = "EVAL_ERROR"
ENCODING_ERROR = "ENCODING_ERROR"
KEY_ERROR = "KEY_ERROR"
VALUE_ERROR = "VALUE_ERROR"
RUNTIME_ERROR = "RUNTIME_ERROR"
#: Anything the server did not anticipate.
INTERNAL = "INTERNAL"


class ServiceError(Exception):
    """Base of every error the service layer raises on either end."""

    code = INTERNAL


class ProtocolError(ServiceError):
    """Malformed frame, bad handshake, or a response that makes no sense."""

    code = BAD_FRAME


class FrameTooLarge(ProtocolError):
    """A length header exceeding the configured frame-size limit."""

    code = FRAME_TOO_LARGE


class ProtocolMismatch(ProtocolError):
    """Handshake failure: incompatible major protocol versions."""

    code = PROTOCOL_MISMATCH


class ServerBusy(ServiceError):
    """Typed admission-control refusal: session cap, in-flight cap, or queue depth."""

    code = SERVER_BUSY


class ConnectionClosed(ServiceError):
    """The peer went away (cleanly or not) with requests outstanding."""

    code = INTERNAL


class ServiceTimeout(ServiceError):
    """A client-side deadline expired while waiting for a response frame."""

    code = INTERNAL


class RemoteError(ServiceError):
    """A server-side failure with no richer client-side class to map onto."""

    def __init__(self, code: str, error_class: str, message: str) -> None:
        super().__init__(f"{code} ({error_class}): {message}")
        self.code = code
        self.error_class = error_class
        self.message = message


# Exceptions that cross the wire as themselves: the server records the class
# name, the client re-raises the same class.  Only types whose constructor
# accepts a single message string belong here.
_WIRE_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        NRAError,
        NRAEvalError,
        NRAParseError,
        NRAScopeError,
        NRATypeError,
        EncodingError,
        KeyError,
        ValueError,
        TypeError,
        RuntimeError,
        ServerBusy,
    )
}

#: exception type -> wire code, for the server's error frames.
_CODE_OF_CLASS: dict[type, str] = {
    NRAParseError: PARSE_ERROR,
    NRATypeError: TYPE_ERROR,
    NRAScopeError: TYPE_ERROR,
    NRAEvalError: EVAL_ERROR,
    NRAError: EVAL_ERROR,
    EncodingError: ENCODING_ERROR,
    KeyError: KEY_ERROR,
    ValueError: VALUE_ERROR,
    TypeError: TYPE_ERROR,
    RuntimeError: RUNTIME_ERROR,
    ServerBusy: SERVER_BUSY,
}


def error_payload(exc: BaseException) -> dict:
    """The ``error`` dictionary a server response carries for ``exc``."""
    if isinstance(exc, ServiceError):
        code = exc.code
    else:
        code = INTERNAL
        for cls in type(exc).__mro__:
            if cls in _CODE_OF_CLASS:
                code = _CODE_OF_CLASS[cls]
                break
    # KeyError repr-quotes its message; unwrap the single argument instead.
    message = str(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
    return {"code": code, "error_class": type(exc).__name__, "message": message}


def exception_from_error(error: dict) -> Exception:
    """The client-side exception for a server error payload.

    Registered classes round-trip as themselves (``ServerBusy`` included, so
    admission refusals are catchable by type); everything else becomes a
    :class:`RemoteError` carrying the code and original class name.
    """
    code = error.get("code", INTERNAL)
    error_class = error.get("error_class", "")
    message = error.get("message", "")
    if code == SERVER_BUSY:
        return ServerBusy(message)
    cls = _WIRE_CLASSES.get(error_class)
    if cls is not None:
        return cls(message)
    return RemoteError(code, error_class, message)


# -- version negotiation ----------------------------------------------------------

def negotiate(client: Any, server: tuple[int, int] = PROTOCOL_VERSION) -> tuple[int, int]:
    """The version a connection runs at, or raise :class:`ProtocolMismatch`.

    ``client`` is whatever the hello frame carried; anything that is not a
    two-int sequence with a matching major version is a mismatch.
    """
    if (
        not isinstance(client, (list, tuple))
        or len(client) != 2
        or not all(isinstance(part, int) for part in client)
    ):
        raise ProtocolMismatch(f"malformed protocol version {client!r}")
    major, minor = client
    if major != server[0]:
        raise ProtocolMismatch(
            f"client speaks protocol {major}.{minor}, server speaks "
            f"{server[0]}.{server[1]}; major versions must match"
        )
    return (server[0], min(minor, server[1]))


# -- frame codec ------------------------------------------------------------------

def encode_frame(payload: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Header + JSON body for one frame.  Refuses to *build* oversized frames."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; non-JSON or non-object payloads are protocol errors."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_header(header: bytes, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Body length from a 4-byte header, bounds-checked before any allocation."""
    if len(header) != HEADER_BYTES:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(
            f"peer announced a {length}-byte frame; limit is {max_bytes}"
        )
    return length


# -- synchronous socket IO (client side) ------------------------------------------

def write_frame_sync(sock: socket.socket, payload: dict,
                     max_bytes: int = MAX_FRAME_BYTES) -> None:
    sock.sendall(encode_frame(payload, max_bytes))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket,
                    max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """The next frame, or ``None`` on a clean EOF at a frame boundary."""
    try:
        header = sock.recv(HEADER_BYTES)
    except OSError as exc:
        raise ConnectionClosed(str(exc)) from exc
    if not header:
        return None
    if len(header) < HEADER_BYTES:
        header += _recv_exact(sock, HEADER_BYTES - len(header))
    length = decode_header(header, max_bytes)
    return decode_body(_recv_exact(sock, length))


# -- asyncio stream IO (server side) ----------------------------------------------

async def read_frame_async(reader, max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """The next frame from an asyncio reader, ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed inside a frame header ({len(exc.partial)} bytes)"
        ) from exc
    length = decode_header(header, max_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_body(body)


async def write_frame_async(writer, payload: dict,
                            max_bytes: int = MAX_FRAME_BYTES) -> None:
    writer.write(encode_frame(payload, max_bytes))
    await writer.drain()
