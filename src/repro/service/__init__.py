"""The network query service: the api layer served over a socket.

Everything :mod:`repro.api` does in-process -- sessions, prepared
statements, streaming cursors, materialized views -- this package does over
TCP, speaking a length-prefixed JSON-frame protocol:

* :mod:`repro.service.protocol` -- the frame codec, protocol-version
  negotiation, and the typed error taxonomy shared by both ends;
* :mod:`repro.service.server` -- :class:`QueryServer`, an asyncio server
  multiplexing many logical sessions per connection over one shared engine,
  with three-gate admission control (session cap, per-session in-flight
  cap, work-queue depth) answering ``SERVER_BUSY`` instead of hanging;
* :mod:`repro.service.client` -- the synchronous SDK:
  :func:`connect` / :class:`RemoteSession` / :class:`RemoteCursor` /
  :class:`RemotePreparedStatement` / :class:`RemoteView`, mirroring the
  in-process surface, with change notifications pushed as commits land;
* :mod:`repro.service.cli` -- the ``repro-cli`` terminal front end
  (``serve``, ``query``, ``prepare``, ``status``, ``sessions``, ``views``),
  typer+rich when installed, argparse otherwise.

Quick start (one process, two roles)::

    from repro.service import QueryServer, connect
    from repro.workloads.databases import graph_database

    server = QueryServer(db=graph_database(64, "path", mutable=True))
    host, port = server.start_in_thread()
    with connect(host, port) as conn, conn.session() as s:
        print(s.execute("edges").fetchmany(5))
    server.stop()

See README.md for the tour and DESIGN.md ("The network service") for the
wire-level contract.
"""

from .client import (
    RemoteConnection,
    RemoteCursor,
    RemotePreparedStatement,
    RemoteSession,
    RemoteView,
    ViewChange,
    connect,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    ProtocolMismatch,
    RemoteError,
    ServerBusy,
    ServiceError,
    ServiceTimeout,
)
from .server import QueryServer, ServerConfig, ServerStats

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "FrameTooLarge",
    "ProtocolError",
    "ProtocolMismatch",
    "QueryServer",
    "RemoteConnection",
    "RemoteCursor",
    "RemoteError",
    "RemotePreparedStatement",
    "RemoteSession",
    "RemoteView",
    "ServerBusy",
    "ServerConfig",
    "ServerStats",
    "ServiceError",
    "ServiceTimeout",
    "ViewChange",
    "connect",
]
