"""The synchronous client SDK: the in-process API, over a socket.

:func:`connect` opens a :class:`RemoteConnection`; ``conn.session()`` hands
back a :class:`RemoteSession` whose surface mirrors
:class:`~repro.api.session.Session` -- ``execute`` returns a
:class:`RemoteCursor` with ``fetchone``/``fetchmany``/``fetchall``/
iteration, ``prepare`` returns a :class:`RemotePreparedStatement`,
``materialize`` a :class:`RemoteView` that queues change notifications as
commits land server-side::

    with connect(host, port) as conn:
        with conn.session() as s:
            reach = s.prepare(Q.coll("edges").fix().where(
                lambda e: e.fst == Q.param("src")))
            for row in reach.execute(src=0):
                ...

Queries ship as **text**: fluent :class:`~repro.api.query.Q` queries are
elaborated *client-side* against the schema the handshake carried, constants
are lifted into parameter slots (:func:`~repro.api.prepare.lift_constants`),
and the template travels as NRA concrete syntax
(``parse(pretty(template))`` round-trips, including ``$``-namespace slots).
The server therefore caches plans by template text semantics, never sees
client Python objects, and the wire stays pure JSON.

One background **reader thread** per connection demultiplexes response
frames to their waiting requests by correlation id and routes ``notify``
push frames to the subscribed view's queue -- which is what lets a client
block in ``view.notifications()`` while other threads keep issuing queries
on the same connection.

Server errors re-raise typed: an ``NRATypeError`` over there is an
``NRATypeError`` here, admission refusals are :class:`ServerBusy`, and a
deadline missed waiting for a frame is :class:`ServiceTimeout` (the
connection stays usable).  A timed-out request is *abandoned*, not
forgotten: if its response arrives later and carries a server-side resource
handle -- the cursor id of an ``execute``, the statement handle of a
``prepare``, the view handle of a ``materialize`` -- the reader thread fires
a best-effort close for it, so a client deadline never strands handles in
the server's registries until session close.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

from ..api.prepare import lift_constants
from ..api.query import Query
from ..nra.ast import Expr
from ..nra.externals import EMPTY_SIGMA, Signature
from ..nra.parser import parse
from ..nra.pretty import pretty
from ..objects.encoding import to_jsonable
from ..objects.types import format_type, parse_type
from ..objects.values import Value, from_python, to_python
from .protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolMismatch,
    ServiceTimeout,
    exception_from_error,
    read_frame_sync,
    write_frame_sync,
)

CLIENT_NAME = "repro-client/1"

#: What ``execute``/``prepare`` accept: fluent queries, raw ASTs, or
#: concrete-syntax text.
Shippable = Union[Query, Expr, str]


@dataclass(frozen=True)
class ViewChange:
    """One push notification: what a commit did to a subscribed view."""

    inserted: tuple
    deleted: tuple
    fallback: bool
    size: int


class RemoteConnection:
    """One socket, one reader thread, any number of logical sessions."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        sigma: Signature = EMPTY_SIGMA,
    ) -> None:
        self.timeout = timeout
        self.sigma = sigma
        self._sock = socket.create_connection((host, port), timeout=10.0)
        self._sock.settimeout(None)  # the reader thread blocks; deadlines are per-request
        self._wlock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, queue.Queue] = {}
        # Requests that timed out client-side: request id -> session id (or
        # None).  When the late response finally lands, the reader uses this
        # to free any server-side handle it carries (see _reap_late).
        self._abandoned: dict[int, Optional[str]] = {}
        self._plock = threading.Lock()
        self._notify: dict[tuple[str, str], queue.Queue] = {}
        self._closed = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True
        )
        hello_id = next(self._ids)
        hello_q: queue.Queue = queue.Queue()
        with self._plock:
            self._pending[hello_id] = hello_q
        write_frame_sync(self._sock, {
            "id": hello_id,
            "op": "hello",
            "protocol": list(PROTOCOL_VERSION),
            "client": CLIENT_NAME,
        })
        self._reader.start()
        try:
            hello = self._wait(hello_id, hello_q, self.timeout)
        except Exception:
            self.close()
            raise
        self.protocol = tuple(hello.get("protocol", ()))
        self.server = hello.get("server")
        self.db_name = hello.get("db")
        self.max_frame_bytes = hello.get("max_frame_bytes")
        self.schema = {
            name: parse_type(text)
            for name, text in (hello.get("schema") or {}).items()
        }

    # -- plumbing -----------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame_sync(self._sock)
                if frame is None:
                    break
                if frame.get("push") == "notify":
                    key = (frame.get("session"), frame.get("view"))
                    with self._plock:
                        q = self._notify.get(key)
                    if q is not None:
                        q.put(frame)
                    continue
                rid = frame.get("id")
                with self._plock:
                    q = self._pending.pop(rid, None)
                    was_abandoned = q is None and rid in self._abandoned
                    sid = self._abandoned.pop(rid, None)
                if q is not None:
                    q.put(frame)
                elif was_abandoned:
                    self._reap_late(sid, frame)
        except (ConnectionClosed, OSError):
            pass
        finally:
            self._closed.set()
            # Wake every waiter: the connection is gone, not slow.
            with self._plock:
                pending, self._pending = self._pending, {}
                self._abandoned.clear()
            for q in pending.values():
                q.put(None)

    def request(self, op: str, timeout: Optional[float] = None, **fields) -> dict:
        """Send one request and wait for its response (or raise, typed)."""
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        rid = next(self._ids)
        q: queue.Queue = queue.Queue()
        with self._plock:
            self._pending[rid] = q
        frame = {"id": rid, "op": op}
        frame.update(fields)
        try:
            with self._wlock:
                write_frame_sync(self._sock, frame)
        except OSError as exc:
            with self._plock:
                self._pending.pop(rid, None)
            raise ConnectionClosed(str(exc)) from exc
        return self._wait(
            rid, q,
            timeout if timeout is not None else self.timeout,
            sid=fields.get("session"),
        )

    def _wait(
        self,
        rid: int,
        q: queue.Queue,
        timeout: Optional[float],
        sid: Optional[str] = None,
    ) -> dict:
        try:
            frame = q.get(timeout=timeout)
        except queue.Empty:
            # Abandon the request: the connection stays usable, and if the
            # response arrives later the reader frees any server-side
            # handle it carries (cursor/statement/view) via _reap_late.
            with self._plock:
                self._pending.pop(rid, None)
                self._abandoned[rid] = sid
            # The reader may have delivered in the instant between the
            # queue timing out and the bookkeeping above; in that case the
            # frame is in the queue, not on the wire -- reap it here.
            try:
                late = q.get_nowait()
            except queue.Empty:
                late = None
            if late is not None:
                with self._plock:
                    self._abandoned.pop(rid, None)
                self._reap_late(sid, late)
            raise ServiceTimeout(
                f"no response within {timeout}s (request {rid})"
            ) from None
        if frame is None:
            raise ConnectionClosed("connection closed while waiting for a response")
        if frame.get("ok"):
            return frame
        raise exception_from_error(frame.get("error") or {})

    #: Response fields that name server-side resources, and the op that
    #: frees each one.
    _LATE_HANDLES = (
        ("cursor", "close_cursor"),
        ("statement", "close_statement"),
        ("view", "close_view"),
    )

    def _reap_late(self, sid: Optional[str], frame: Any) -> None:
        """Free server-side resources named by an abandoned response.

        A timed-out request may still have succeeded server-side, and its
        late response can carry a cursor/statement/view handle that would
        otherwise sit in the server's registries until the session closes.
        Best-effort and fire-and-forget: this runs on the reader thread,
        which must never wait for a response of its own (it would be waiting
        on itself), so the close frames are written without a pending entry
        and their acks are dropped on arrival like any unclaimed frame.
        """
        if not isinstance(frame, dict) or not frame.get("ok") or sid is None:
            return
        for key, op in self._LATE_HANDLES:
            handle = frame.get(key)
            if handle is None:
                continue
            reap = {"id": next(self._ids), "op": op, "session": sid, key: handle}
            try:
                with self._wlock:
                    write_frame_sync(self._sock, reap)
            except OSError:
                return  # connection gone; the server reaps on disconnect

    def _subscribe(self, sid: str, vid: str) -> queue.Queue:
        q: queue.Queue = queue.Queue()
        with self._plock:
            self._notify[(sid, vid)] = q
        return q

    def _unsubscribe(self, sid: str, vid: str) -> None:
        with self._plock:
            self._notify.pop((sid, vid), None)

    # -- public surface -----------------------------------------------------------

    def session(self, backend: Optional[str] = None) -> "RemoteSession":
        """Open a logical session (raises :class:`ServerBusy` at the cap)."""
        reply = self.request("open_session", backend=backend)
        return RemoteSession(self, reply["session"], reply.get("backend"))

    def ping(self) -> bool:
        self.request("ping")
        return True

    def status(self) -> dict:
        reply = self.request("status")
        return {k: v for k, v in reply.items() if k not in ("id", "ok")}

    def metrics(self, prometheus: bool = False) -> dict:
        """The server's metrics snapshot plus its slow-query log.

        With ``prometheus=True`` the reply also carries the text
        exposition under ``"prometheus"``.
        """
        fields = {"format": "prometheus"} if prometheus else {}
        reply = self.request("metrics", **fields)
        return {k: v for k, v in reply.items() if k not in ("id", "ok")}

    def sessions(self) -> list[dict]:
        return self.request("sessions")["sessions"]

    def views(self) -> list[dict]:
        return self.request("views")["views"]

    def close(self) -> None:
        self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if self._reader.is_alive():
            self._reader.join(timeout=5.0)

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed.is_set() else "open"
        return f"<RemoteConnection {self.server} db={self.db_name!r} {state}>"


class RemoteSession:
    """The wire twin of :class:`~repro.api.session.Session`."""

    def __init__(self, conn: RemoteConnection, sid: str, backend: Optional[str]) -> None:
        self.conn = conn
        self.sid = sid
        self.backend = backend
        self.closed = False

    # -- query shipping -----------------------------------------------------------

    def _ship(self, query: Shippable) -> tuple[str, dict, dict, str]:
        """(template text, param_types payload, defaults payload, label)."""
        if isinstance(query, str):
            return query, {}, {}, "text"
        if isinstance(query, Query):
            el = query.elaborate(self.conn.schema, self.conn.sigma)
            template, types, defaults = lift_constants(el.expr)
            types.update(el.params)
            label = query.label
        elif isinstance(query, Expr):
            template, types, defaults = lift_constants(query)
            label = "expr"
        else:
            raise TypeError(
                f"cannot ship {query!r}; expected Query, Expr or template text"
            )
        return (
            pretty(template),
            {n: format_type(t) for n, t in types.items()},
            {n: to_jsonable(v) for n, v in defaults.items()},
            label,
        )

    @staticmethod
    def _params_payload(params: Optional[dict], named: dict) -> dict:
        bindings = dict(params or {})
        bindings.update(named)
        return {
            name: to_jsonable(v if isinstance(v, Value) else from_python(v))
            for name, v in bindings.items()
        }

    # -- execution ----------------------------------------------------------------

    def execute(
        self,
        query: Shippable,
        params: Optional[dict] = None,
        chunk: int = 512,
        timeout: Optional[float] = None,
        **named,
    ) -> "RemoteCursor":
        text, types, defaults, _ = self._ship(query)
        reply = self.conn.request(
            "execute",
            timeout=timeout,
            session=self.sid,
            query=text,
            param_types=types,
            defaults=defaults,
            params=self._params_payload(params, named),
            chunk=chunk,
        )
        return RemoteCursor(self, reply, chunk)

    def prepare(self, query: Shippable, chunk: int = 512) -> "RemotePreparedStatement":
        text, types, defaults, label = self._ship(query)
        reply = self.conn.request(
            "prepare",
            session=self.sid,
            query=text,
            param_types=types,
            defaults=defaults,
            label=label,
        )
        return RemotePreparedStatement(
            self, reply["statement"], reply.get("params", {}), label, chunk
        )

    def materialize(
        self,
        query: Shippable,
        name: Optional[str] = None,
        params: Optional[dict] = None,
        subscribe: bool = True,
    ) -> "RemoteView":
        text, types, defaults, _ = self._ship(query)
        reply = self.conn.request(
            "materialize",
            session=self.sid,
            query=text,
            param_types=types,
            defaults=defaults,
            params=self._params_payload(params, {}),
            name=name,
            subscribe=subscribe,
        )
        vid = reply["view"]
        notify_q = self.conn._subscribe(self.sid, vid) if subscribe else None
        return RemoteView(self, vid, reply["name"], reply["rows"], notify_q)

    def trace(
        self,
        query: Shippable,
        params: Optional[dict] = None,
        chunk: int = 512,
        timeout: Optional[float] = None,
        **named,
    ) -> dict:
        """Execute once with tracing forced on; returns the span tree.

        The reply dict carries ``"trace"`` (the nested span tree as plain
        data), ``"rendered"`` (an indented text rendering), and
        ``"cursor"`` (a :class:`RemoteCursor` over the result).  Lifted
        constants travel as ordinary parameter bindings since the trace
        op takes template text only.
        """
        text, types, defaults, _ = self._ship(query)
        payload = dict(defaults)
        payload.update(self._params_payload(params, named))
        reply = self.conn.request(
            "trace",
            timeout=timeout,
            session=self.sid,
            query=text,
            params=payload,
            chunk=chunk,
        )
        return {
            "trace": reply["trace"],
            "rendered": reply["rendered"],
            "cursor": RemoteCursor(self, reply, chunk),
        }

    # -- updates ------------------------------------------------------------------

    def insert(self, collection: str, rows) -> dict:
        return self._mutate("insert", collection, rows)

    def delete(self, collection: str, rows) -> dict:
        return self._mutate("delete", collection, rows)

    def _mutate(self, op: str, collection: str, rows) -> dict:
        payload = [
            to_jsonable(r if isinstance(r, Value) else from_python(r)) for r in rows
        ]
        reply = self.conn.request(
            op, session=self.sid, collection=collection, rows=payload
        )
        return {"applied": reply["applied"], "version": reply["version"]}

    # -- lifecycle ----------------------------------------------------------------

    def stats(self) -> dict:
        for row in self.conn.sessions():
            if row["session"] == self.sid:
                return row
        raise KeyError(f"session {self.sid} not known to the server")

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.conn.request("close_session", session=self.sid)
            except (ConnectionClosed, ServiceTimeout):
                pass  # server-side close follows from the connection dropping

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<RemoteSession {self.sid} backend={self.backend!r}>"


class RemoteCursor:
    """Streams one result set, fetching server chunks on demand."""

    def __init__(self, session: RemoteSession, reply: dict, chunk: int) -> None:
        self._session = session
        self._chunk = chunk
        self.total = reply["total"]
        self._scalar = reply.get("scalar", False)
        self._cid = reply.get("cursor")  # None once the server sent everything
        self._buffer = [to_python_row(obj) for obj in reply.get("rows", [])]
        self._fetched = 0

    @property
    def rownumber(self) -> int:
        return self._fetched

    def __len__(self) -> int:
        return self.total

    def scalar(self) -> Any:
        if not self._scalar:
            raise TypeError(
                f"result is a set of {self.total} rows, not a scalar; "
                "iterate or fetch instead"
            )
        row = self.fetchone()
        return row

    def _refill(self) -> None:
        if self._buffer or self._cid is None:
            return
        reply = self._session.conn.request(
            "fetch", session=self._session.sid, cursor=self._cid, size=self._chunk
        )
        self._buffer.extend(to_python_row(obj) for obj in reply.get("rows", []))
        if reply.get("done"):
            self._cid = None

    def fetchone(self) -> Optional[Any]:
        self._refill()
        if not self._buffer:
            return None
        self._fetched += 1
        return self._buffer.pop(0)

    def fetchmany(self, size: int = 1000) -> list[Any]:
        rows: list[Any] = []
        while len(rows) < size:
            self._refill()
            if not self._buffer:
                break
            take = min(size - len(rows), len(self._buffer))
            rows.extend(self._buffer[:take])
            del self._buffer[:take]
        self._fetched += len(rows)
        return rows

    def fetchall(self) -> list[Any]:
        return self.fetchmany(self.total - self._fetched)

    def __iter__(self) -> Iterator[Any]:
        while True:
            self._refill()
            if not self._buffer:
                return
            self._fetched += 1
            yield self._buffer.pop(0)

    def rows(self) -> frozenset:
        return frozenset(self.fetchall())

    def close(self) -> None:
        if self._cid is not None:
            try:
                self._session.conn.request(
                    "close_cursor", session=self._session.sid, cursor=self._cid
                )
            finally:
                self._cid = None

    def __repr__(self) -> str:
        kind = "scalar" if self._scalar else "set"
        return f"<RemoteCursor {kind} rows={self.total} fetched={self._fetched}>"


class RemotePreparedStatement:
    """A statement prepared server-side; executes cost bindings only."""

    def __init__(
        self, session: RemoteSession, pid: str, params: dict, label: str, chunk: int
    ) -> None:
        self.session = session
        self.pid = pid
        self.param_types = dict(params)  # name -> type text, as the server sees it
        self.label = label
        self._chunk = chunk

    @property
    def param_names(self) -> list[str]:
        return sorted(self.param_types)

    def execute(
        self,
        params: Optional[dict] = None,
        timeout: Optional[float] = None,
        **named,
    ) -> RemoteCursor:
        reply = self.session.conn.request(
            "execute_statement",
            timeout=timeout,
            session=self.session.sid,
            statement=self.pid,
            params=self.session._params_payload(params, named),
            chunk=self._chunk,
        )
        return RemoteCursor(self.session, reply, self._chunk)

    def close(self) -> None:
        """Drop the server-side statement handle (idempotent, best-effort)."""
        if self.pid is not None:
            pid, self.pid = self.pid, None
            try:
                self.session.conn.request(
                    "close_statement", session=self.session.sid, statement=pid
                )
            except (ConnectionClosed, ServiceTimeout):
                pass

    def __repr__(self) -> str:
        ps = ", ".join(self.param_names)
        return f"<RemotePreparedStatement {self.label} params=[{ps}]>"


class RemoteView:
    """A server-side materialized view plus its notification stream."""

    def __init__(
        self,
        session: RemoteSession,
        vid: str,
        name: str,
        size: int,
        notify_q: Optional[queue.Queue],
    ) -> None:
        self.session = session
        self.vid = vid
        self.name = name
        self.size = size  # updated by each notification read
        self._notify_q = notify_q
        self.closed = False

    @property
    def subscribed(self) -> bool:
        return self._notify_q is not None

    def rows(self) -> frozenset:
        """The view's current contents, fetched fresh from the server."""
        reply = self.session.conn.request(
            "view_rows", session=self.session.sid, view=self.vid
        )
        rows = [to_python_row(obj) for obj in reply.get("rows", [])]
        self.size = len(rows)
        return frozenset(rows)

    def notifications(self, timeout: Optional[float] = 5.0) -> ViewChange:
        """Block for the next change notification (:class:`ServiceTimeout` on none)."""
        if self._notify_q is None:
            raise RuntimeError(f"view {self.name!r} was materialized without subscribe")
        try:
            frame = self._notify_q.get(timeout=timeout)
        except queue.Empty:
            raise ServiceTimeout(
                f"no notification for view {self.name!r} within {timeout}s"
            ) from None
        change = ViewChange(
            inserted=tuple(to_python_row(o) for o in frame.get("inserted", [])),
            deleted=tuple(to_python_row(o) for o in frame.get("deleted", [])),
            fallback=bool(frame.get("fallback")),
            size=int(frame.get("size", self.size)),
        )
        self.size = change.size
        return change

    def pending_notifications(self) -> int:
        return self._notify_q.qsize() if self._notify_q is not None else 0

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.session.conn._unsubscribe(self.session.sid, self.vid)
            try:
                self.session.conn.request(
                    "close_view", session=self.session.sid, view=self.vid
                )
            except (ConnectionClosed, ServiceTimeout):
                pass

    def __repr__(self) -> str:
        sub = "subscribed" if self.subscribed else "unsubscribed"
        return f"<RemoteView {self.name!r} rows={self.size} {sub}>"


def to_python_row(obj: Any) -> Any:
    """Decode one wire row to plain python data (the cursors' row shape)."""
    from ..objects.encoding import from_jsonable

    return to_python(from_jsonable(obj))


def connect(
    host: str,
    port: int,
    timeout: Optional[float] = 30.0,
    sigma: Signature = EMPTY_SIGMA,
) -> RemoteConnection:
    """Dial a :class:`~repro.service.server.QueryServer` and shake hands."""
    return RemoteConnection(host, port, timeout=timeout, sigma=sigma)
