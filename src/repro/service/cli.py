"""``repro-cli``: the terminal front end of the network query service.

Subcommands::

    serve      run a QueryServer over a demo workload database
    query      execute one query (NRA text) and stream the rows
    prepare    prepare a template, then execute it once per binding set
    status     server health: sessions, queue depth, counters
    sessions   per-session stats as the server attributes them
    views      materialized views across all live sessions
    metrics    metrics registry snapshot plus the slow-query log
    trace      execute one query with tracing on, print the span tree

Every read-side command takes ``--json`` for machine consumption; tables
otherwise.  The implementation is frontend-split on purpose: when `typer`
and `rich` are importable the CLI gets completion, styled help and boxed
tables; when they are not (this repo pins no CLI dependencies), the same
command functions run behind plain :mod:`argparse` with plain aligned
tables.  The *command* layer is identical either way -- the pretty frontend
adds nothing but rendering, so tests of the argparse path cover the logic
for both.

``serve`` is the CI smoke entry point: it prints a parseable
``listening on HOST:PORT`` line once bound, then runs until ``SIGTERM`` /
``SIGINT`` and exits 0 after a clean shutdown -- which is exactly what the
workflow asserts.

Parameter syntax: ``--param name=VALUE`` where ``VALUE`` is wire JSON
(``7``, ``"x"``, ``[1,2]`` for a pair, ``{"s":[...]}`` for a set); bare
words that are not JSON are taken as string atoms.  Types default to ``D``
(atoms); pass ``--param-type name=TYPE`` for anything structured.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from typing import Any, Optional

from ..workloads.databases import GRAPH_KINDS, graph_database
from .client import connect
from .protocol import ServiceError
from .server import QueryServer, ServerConfig

try:  # pragma: no cover - exercised only where the pretty deps exist
    import rich  # type: ignore
    from rich.console import Console  # type: ignore
    from rich.table import Table  # type: ignore
except ImportError:  # the tested path in this repo
    rich = None

try:  # pragma: no cover - exercised only where the pretty deps exist
    import typer  # type: ignore
except ImportError:
    typer = None

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7432
DEFAULT_WORKLOAD = "path:64"


# -- rendering --------------------------------------------------------------------

def _emit_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _emit_table(title: str, columns: list[str], rows: list[list], out=None) -> None:
    out = out if out is not None else sys.stdout
    if rich is not None and out is sys.stdout:  # pragma: no cover
        table = Table(title=title)
        for col in columns:
            table.add_column(col)
        for row in rows:
            table.add_row(*[str(cell) for cell in row])
        Console().print(table)
        return
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max([len(col)] + [len(r[i]) for r in cells]) for i, col in enumerate(columns)
    ]
    print(title, file=out)
    print("  ".join(col.ljust(w) for col, w in zip(columns, widths)), file=out)
    print("  ".join("-" * w for w in widths), file=out)
    for row in cells:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)), file=out)


def _parse_bindings(pairs: list[str]) -> dict:
    """``name=VALUE`` pairs -> wire-JSON parameter payload."""
    from ..objects.encoding import from_jsonable

    out = {}
    for pair in pairs:
        name, sep, text = pair.partition("=")
        if not sep:
            raise ValueError(f"--param needs name=VALUE, got {pair!r}")
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = text  # bare word: a string atom
        out[name] = from_jsonable(obj)
    return out


def _parse_types(pairs: list[str], params: dict) -> dict:
    types = {name: "D" for name in params}
    for pair in pairs:
        name, sep, text = pair.partition("=")
        if not sep:
            raise ValueError(f"--param-type needs name=TYPE, got {pair!r}")
        types[name] = text
    return types


def _demo_database(spec: str):
    """``kind:n`` -> a mutable demo graph database (see workloads.databases)."""
    kind, _, size = spec.partition(":")
    if kind not in GRAPH_KINDS:
        raise ValueError(
            f"unknown workload kind {kind!r}; pick one of {', '.join(GRAPH_KINDS)}"
        )
    n = int(size) if size else 64
    return graph_database(n, kind=kind, mutable=True)


# -- commands ---------------------------------------------------------------------

def cmd_serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workload: str = DEFAULT_WORKLOAD,
    backend: str = "vectorized",
    max_sessions: int = 32,
    max_inflight: int = 4,
    max_queue_depth: int = 64,
    slow_query_s: Optional[float] = None,
) -> int:
    db = _demo_database(workload)
    server = QueryServer(
        db=db,
        backend=backend,
        config=ServerConfig(
            host=host,
            port=port,
            max_sessions=max_sessions,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            slow_query_s=slow_query_s,
        ),
    )
    bound_host, bound_port = server.start_in_thread()
    print(
        f"repro-service listening on {bound_host}:{bound_port} "
        f"(db={db.name}, backend={backend})",
        flush=True,
    )
    stop = threading.Event()

    def on_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    while not stop.wait(0.5):
        pass
    server.stop()
    print("repro-service stopped", flush=True)
    return 0


def cmd_query(
    query: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    params: Optional[list[str]] = None,
    param_types: Optional[list[str]] = None,
    limit: int = 20,
    chunk: int = 512,
    as_json: bool = False,
) -> int:
    bindings = _parse_bindings(params or [])
    with connect(host, port) as conn, conn.session() as s:
        if bindings:
            # Text templates carry their own $slots; ship the declared types.
            types = _parse_types(param_types or [], bindings)
            reply = conn.request(
                "execute", session=s.sid, query=query,
                param_types=types, defaults={},
                params=s._params_payload(bindings, {}), chunk=chunk,
            )
            from .client import RemoteCursor

            cur = RemoteCursor(s, reply, chunk)
        else:
            cur = s.execute(query, chunk=chunk)
        rows = cur.fetchmany(limit) if limit >= 0 else cur.fetchall()
        truncated = cur.total - len(rows)
        cur.close()
        if as_json:
            _emit_json({"total": cur.total, "rows": [list(_norm(r)) for r in rows]})
        else:
            _emit_table(
                f"{cur.total} row(s)",
                ["row"],
                [[r] for r in rows],
            )
            if truncated > 0:
                print(f"... {truncated} more (raise --limit)")
    return 0


def _norm(row: Any) -> Any:
    return row if isinstance(row, (list, tuple)) else (row,)


def cmd_prepare(
    query: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    params: Optional[list[str]] = None,
    param_types: Optional[list[str]] = None,
    bind: Optional[list[str]] = None,
    limit: int = 20,
    as_json: bool = False,
) -> int:
    """Prepare a text template, then execute once per ``--bind`` set.

    ``--bind`` takes a comma-joined binding list (``src=0,dst=5``); repeat
    the flag to execute the same statement with several binding sets --
    the point of preparation.
    """
    first = _parse_bindings(params or [])
    types = _parse_types(param_types or [], first)
    with connect(host, port) as conn, conn.session() as s:
        reply = conn.request(
            "prepare", session=s.sid, query=query,
            param_types=types, defaults={}, label="cli",
        )
        pid = reply["statement"]
        results = []
        binding_sets = [params or []] + [b.split(",") for b in (bind or [])]
        for pairs in binding_sets:
            bindings = _parse_bindings([p for p in pairs if p])
            r = conn.request(
                "execute_statement", session=s.sid, statement=pid,
                params=s._params_payload(bindings, {}), chunk=max(limit, 1),
            )
            from .client import RemoteCursor

            cur = RemoteCursor(s, r, max(limit, 1))
            rows = cur.fetchmany(limit)
            cur.close()
            results.append({
                "bindings": {k: v for k, v in (p.partition("=")[::2] for p in pairs if p)},
                "total": cur.total,
                "rows": [list(_norm(x)) for x in rows],
            })
        if as_json:
            _emit_json({"statement": pid, "params": reply.get("params", {}),
                        "executions": results})
        else:
            _emit_table(
                f"prepared {pid} params={reply.get('params', {})}",
                ["bindings", "total", "first rows"],
                [[res["bindings"], res["total"], res["rows"][:5]] for res in results],
            )
    return 0


def cmd_status(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
               as_json: bool = False) -> int:
    with connect(host, port) as conn:
        status = conn.status()
    if as_json:
        _emit_json(status)
        return 0
    stats = status.pop("stats", {})
    _emit_table(
        f"repro-service @ {host}:{port}",
        ["field", "value"],
        sorted([[k, v] for k, v in status.items()])
        + sorted([[f"stats.{k}", v] for k, v in stats.items()]),
    )
    return 0


def cmd_sessions(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 as_json: bool = False) -> int:
    with connect(host, port) as conn:
        rows = conn.sessions()
    if as_json:
        _emit_json(rows)
        return 0
    _emit_table(
        "sessions",
        ["session", "backend", "inflight", "cursors", "statements", "views",
         "executes", "rows_streamed"],
        [[r["session"], r["backend"], r["inflight"], r["cursors"],
          r["statements"], r["views"], r["stats"]["executes"],
          r["stats"]["rows_streamed"]] for r in rows],
    )
    return 0


def cmd_views(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
              as_json: bool = False) -> int:
    with connect(host, port) as conn:
        rows = conn.views()
    if as_json:
        _emit_json(rows)
        return 0
    _emit_table(
        "materialized views",
        ["view", "session", "name", "rows", "subscribed"],
        [[r["view"], r["session"], r["name"], r["rows"], r["subscribed"]]
         for r in rows],
    )
    return 0


def cmd_metrics(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                as_json: bool = False, prometheus: bool = False) -> int:
    with connect(host, port) as conn:
        payload = conn.metrics(prometheus=prometheus)
    if prometheus:
        print(payload.get("prometheus", ""), end="")
        return 0
    if as_json:
        _emit_json(payload)
        return 0
    metrics = payload.get("metrics", {})
    rows = sorted([[k, v] for k, v in metrics.get("counters", {}).items()])
    rows += sorted([[k, v] for k, v in metrics.get("gauges", {}).items()])
    rows += sorted(
        [[k, f"count={h['count']} sum={h['sum']:.6f}s"]
         for k, h in metrics.get("histograms", {}).items()]
    )
    _emit_table(f"metrics @ {host}:{port}", ["metric", "value"], rows)
    slow = payload.get("slow_queries", [])
    threshold = payload.get("slow_query_s")
    if threshold is None:
        print("slow-query log: disabled (serve with --slow-query-s)")
    else:
        print(f"slow-query log (threshold {threshold}s): {len(slow)} entries")
        for entry in slow:
            hot = ", ".join(
                f"{n['name']} {n['seconds'] * 1e3:.1f}ms"
                for n in entry.get("hot_nodes", [])
            )
            print(f"  {entry['seconds'] * 1e3:.1f}ms  {entry['query']!r} "
                  f"route={entry.get('route', {})} hot=[{hot}]")
    return 0


def cmd_trace(
    query: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    params: Optional[list[str]] = None,
    backend: Optional[str] = None,
    as_json: bool = False,
) -> int:
    bindings = _parse_bindings(params or [])
    with connect(host, port) as conn, conn.session(backend=backend) as s:
        result = s.trace(query, params=bindings)
        cur = result["cursor"]
        total = cur.total
        cur.close()
    if as_json:
        _emit_json({"total": total, "trace": result["trace"]})
    else:
        print(f"{total} row(s)")
        print(result["rendered"])
    return 0


# -- argparse frontend (always available) -----------------------------------------

def _build_argparse():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cli", description="Network query service CLI."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p) -> None:
        p.add_argument("--host", default=DEFAULT_HOST)
        p.add_argument("--port", type=int, default=DEFAULT_PORT)

    p = sub.add_parser("serve", help="run a server over a demo workload")
    common(p)
    p.add_argument("--workload", default=DEFAULT_WORKLOAD,
                   help="kind:n over the graph generators (e.g. path:64)")
    p.add_argument("--backend", default="vectorized")
    p.add_argument("--max-sessions", type=int, default=32)
    p.add_argument("--max-inflight", type=int, default=4)
    p.add_argument("--max-queue-depth", type=int, default=64)
    p.add_argument("--slow-query-s", type=float, default=None,
                   help="arm the slow-query log at this threshold (seconds)")

    p = sub.add_parser("query", help="execute one query and stream rows")
    common(p)
    p.add_argument("query", help="NRA concrete syntax, e.g. 'edges'")
    p.add_argument("--param", action="append", default=[], metavar="NAME=JSON")
    p.add_argument("--param-type", action="append", default=[], metavar="NAME=TYPE")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--chunk", type=int, default=512)
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("prepare", help="prepare a template, execute per binding")
    common(p)
    p.add_argument("query")
    p.add_argument("--param", action="append", default=[], metavar="NAME=JSON")
    p.add_argument("--param-type", action="append", default=[], metavar="NAME=TYPE")
    p.add_argument("--bind", action="append", default=[],
                   metavar="N1=V1,N2=V2", help="extra binding sets")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--json", action="store_true")

    for name, help_text in (
        ("status", "server health and counters"),
        ("sessions", "per-session stats"),
        ("views", "materialized views"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("--json", action="store_true")

    p = sub.add_parser("metrics", help="metrics snapshot + slow-query log")
    common(p)
    p.add_argument("--json", action="store_true")
    p.add_argument("--prometheus", action="store_true",
                   help="print the Prometheus text exposition instead")

    p = sub.add_parser("trace", help="execute one query with tracing on")
    common(p)
    p.add_argument("query", help="NRA concrete syntax, e.g. 'edges'")
    p.add_argument("--param", action="append", default=[], metavar="NAME=JSON")
    p.add_argument("--backend", default=None)
    p.add_argument("--json", action="store_true")

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_argparse()
    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return cmd_serve(
                host=args.host, port=args.port, workload=args.workload,
                backend=args.backend, max_sessions=args.max_sessions,
                max_inflight=args.max_inflight,
                max_queue_depth=args.max_queue_depth,
                slow_query_s=args.slow_query_s,
            )
        if args.command == "query":
            return cmd_query(
                args.query, host=args.host, port=args.port, params=args.param,
                param_types=args.param_type, limit=args.limit,
                chunk=args.chunk, as_json=args.json,
            )
        if args.command == "prepare":
            return cmd_prepare(
                args.query, host=args.host, port=args.port, params=args.param,
                param_types=args.param_type, bind=args.bind,
                limit=args.limit, as_json=args.json,
            )
        if args.command == "status":
            return cmd_status(args.host, args.port, args.json)
        if args.command == "sessions":
            return cmd_sessions(args.host, args.port, args.json)
        if args.command == "views":
            return cmd_views(args.host, args.port, args.json)
        if args.command == "metrics":
            return cmd_metrics(args.host, args.port, args.json, args.prometheus)
        if args.command == "trace":
            return cmd_trace(
                args.query, host=args.host, port=args.port,
                params=args.param, backend=args.backend, as_json=args.json,
            )
    except (ServiceError, ValueError, OSError) as exc:
        print(f"repro-cli: error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


# -- typer frontend (optional; rendering-only sugar) ------------------------------

if typer is not None:  # pragma: no cover - needs the optional dependency
    app = typer.Typer(help="Network query service CLI.")

    @app.command()
    def serve(
        host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
        workload: str = DEFAULT_WORKLOAD, backend: str = "vectorized",
        max_sessions: int = 32, max_inflight: int = 4,
        max_queue_depth: int = 64,
    ):
        raise typer.Exit(cmd_serve(host, port, workload, backend,
                                   max_sessions, max_inflight, max_queue_depth))

    @app.command()
    def query(
        query: str, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
        param: list[str] = typer.Option([], "--param"),
        param_type: list[str] = typer.Option([], "--param-type"),
        limit: int = 20, chunk: int = 512,
        json_out: bool = typer.Option(False, "--json"),
    ):
        raise typer.Exit(cmd_query(query, host, port, param, param_type,
                                   limit, chunk, json_out))

    @app.command()
    def prepare(
        query: str, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
        param: list[str] = typer.Option([], "--param"),
        param_type: list[str] = typer.Option([], "--param-type"),
        bind: list[str] = typer.Option([], "--bind"),
        limit: int = 20, json_out: bool = typer.Option(False, "--json"),
    ):
        raise typer.Exit(cmd_prepare(query, host, port, param, param_type,
                                     bind, limit, json_out))

    @app.command()
    def status(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
               json_out: bool = typer.Option(False, "--json")):
        raise typer.Exit(cmd_status(host, port, json_out))

    @app.command()
    def sessions(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 json_out: bool = typer.Option(False, "--json")):
        raise typer.Exit(cmd_sessions(host, port, json_out))

    @app.command()
    def views(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
              json_out: bool = typer.Option(False, "--json")):
        raise typer.Exit(cmd_views(host, port, json_out))

    @app.command()
    def metrics(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                json_out: bool = typer.Option(False, "--json"),
                prometheus: bool = typer.Option(False, "--prometheus")):
        raise typer.Exit(cmd_metrics(host, port, json_out, prometheus))

    @app.command()
    def trace(
        query: str, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
        param: list[str] = typer.Option([], "--param"),
        backend: Optional[str] = None,
        json_out: bool = typer.Option(False, "--json"),
    ):
        raise typer.Exit(cmd_trace(query, host, port, param, backend, json_out))


if __name__ == "__main__":
    sys.exit(main())
