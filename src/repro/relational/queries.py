"""A library of NRA queries from the paper, in several evaluation styles.

Every query in the paper's narrative is provided as a ready-made NRA
expression (a :class:`repro.nra.ast.Lambda` from the input relation to the
result), in up to three styles:

* the **dcr** style (divide and conquer; Section 1) -- logarithmic combining
  depth, the NC witness;
* the **log_loop** style (Example 7.1) -- repeated squaring, also logarithmic;
* the **sri / esr** style -- element-by-element, the PTIME flavour of
  Proposition 6.6 used as the sequential baseline.

The builders return plain expressions, so they can be type checked, evaluated
by either evaluator, compiled to circuits, or pretty printed.  The helpers at
the bottom run a query against a :class:`repro.relational.relation.Relation`
and hand back plain Python data, which is what the examples and benchmarks
use.

For the query-service API (:mod:`repro.api`) the same library is exposed a
second time as fluent :class:`~repro.api.query.Query` values over named
collections -- see :func:`query_library` and the ``*_query`` builders at the
bottom: ``session.execute(transitive_closure_query())`` runs the paper's
Section 1 construction against the session's ``"edges"`` collection without
the caller ever touching an AST node.
"""

from __future__ import annotations

from ..objects.types import BASE, BOOL, ProdType, SetType
from ..objects.values import SetVal, Value, to_python
from ..nra.ast import (
    Apply,
    BoolConst,
    Dcr,
    EmptySet,
    Eq,
    Esr,
    Expr,
    If,
    Lambda,
    LogLoop,
    Pair,
    Proj1,
    Proj2,
    Sri,
    Union,
    Var,
    lam2,
)
from ..nra.derived import compose, field_of
from ..nra.eval import run
from .relation import Relation

#: The type ``D x D`` of graph edges.
EDGE_T = ProdType(BASE, BASE)
#: The type ``{D x D}`` of binary relations (graphs).
REL_T = SetType(EDGE_T)
#: The type ``D x B`` of boolean-tagged elements used by the parity queries.
TAGGED_BOOL_T = ProdType(BASE, BOOL)


# ---------------------------------------------------------------------------
# Boolean XOR (the combining operation of parity)
# ---------------------------------------------------------------------------

def xor_lambda() -> Lambda:
    """``\\(v1, v2). v1 xor v2`` as an NRA function ``B x B -> B``."""
    return lam2(
        "v1", BOOL, "v2", BOOL,
        If(Eq(Var("v1"), Var("v2")), BoolConst(False), BoolConst(True)),
    )


# ---------------------------------------------------------------------------
# Parity (Section 1)
# ---------------------------------------------------------------------------

def parity_dcr() -> Lambda:
    """Parity of a set of tagged booleans, by divide and conquer.

    Input type ``{D x B}``; the paper's instance ``dcr(false, \\y. pi2 y, xor)``.
    The tag (first component) keeps equal booleans distinct inside the set.
    """
    phi = Dcr(
        BoolConst(False),
        Lambda("y", TAGGED_BOOL_T, Proj2(Var("y"))),
        xor_lambda(),
    )
    return Lambda("s", SetType(TAGGED_BOOL_T), Apply(phi, Var("s")))


def parity_esr() -> Lambda:
    """Parity by element-step recursion (the sequential baseline)."""
    phi = Esr(
        BoolConst(False),
        lam2("y", TAGGED_BOOL_T, "acc", BOOL,
             If(Eq(Proj2(Var("y")), Var("acc")), BoolConst(False), BoolConst(True))),
    )
    return Lambda("s", SetType(TAGGED_BOOL_T), Apply(phi, Var("s")))


def parity_esr_translated() -> Lambda:
    """Parity as the *image* of the Proposition 2.1 translation.

    ``dcr(e, f, u)`` translates to ``esr(e, (x, y) -> u(f(x), y))``; this
    builder writes parity in exactly that translated shape,
    ``esr(false, \\z. xor((\\y. pi2 y)(pi1 z), pi2 z))``.  Evaluated directly
    it exhibits the linear dependent chain of the insert recursions; the
    optimizing engine's ``sri-to-dcr`` rule recognises the shape, re-checks
    the algebraic side conditions, and rewrites it back to the logarithmic
    ``dcr`` form -- see :mod:`repro.engine.rewrite`.
    """
    z = "z"
    f = Lambda("y", TAGGED_BOOL_T, Proj2(Var("y")))
    step = Lambda(
        z,
        ProdType(TAGGED_BOOL_T, BOOL),
        Apply(xor_lambda(), Pair(Apply(f, Proj1(Var(z))), Proj2(Var(z)))),
    )
    phi = Esr(BoolConst(False), step)
    return Lambda("s", SetType(TAGGED_BOOL_T), Apply(phi, Var("s")))


def cardinality_parity_dcr() -> Lambda:
    """Parity of the *cardinality* of a set of atoms, ``{D} -> B``.

    ``dcr(false, \\x. true, xor)``: each element contributes ``true``; the
    combining tree XORs them, yielding ``|s| mod 2``.  This is the query
    first-order logic (without order/BIT) famously cannot express, while a
    single unnested ``dcr`` does.
    """
    phi = Dcr(
        BoolConst(False),
        Lambda("x", BASE, BoolConst(True)),
        xor_lambda(),
    )
    return Lambda("s", SetType(BASE), Apply(phi, Var("s")))


# ---------------------------------------------------------------------------
# Transitive closure (Section 1 and Example 7.1)
# ---------------------------------------------------------------------------

def tc_combine_lambda() -> Lambda:
    """``\\(r1, r2). r1 U r2 U (r1 o r2)``: the combining operation of TC-by-dcr."""
    return lam2(
        "r1", REL_T, "r2", REL_T,
        Union(Union(Var("r1"), Var("r2")), compose(Var("r1"), Var("r2"), BASE)),
    )


def transitive_closure_dcr() -> Lambda:
    """Transitive closure by divide and conquer (the Section 1 construction).

    ``phi = dcr(emptyset, \\y. r, \\(r1, r2). r1 U r2 U r1 o r2)`` applied to
    ``Pi1(r) U Pi2(r)``: the recursion runs over the *nodes*, so the combining
    tree has depth ``ceil(log2 n)`` and each level extends path lengths
    multiplicatively, covering all paths of the n-node graph.
    """
    r = Var("r")
    phi = Dcr(
        EmptySet(EDGE_T),
        Lambda("y", BASE, r),
        tc_combine_lambda(),
    )
    body = Apply(phi, field_of(r, BASE, BASE))
    return Lambda("r", REL_T, body)


def transitive_closure_logloop() -> Lambda:
    """Transitive closure by repeated squaring with ``log_loop`` (Example 7.1).

    ``v = Pi1(r) U Pi2(r)``; repeat ``ceil(log(n+1))`` times
    ``rr <- rr U rr o rr`` starting from ``r``.
    """
    r = Var("r")
    step = Lambda(
        "rr", REL_T,
        Union(Var("rr"), compose(Var("rr"), Var("rr"), BASE)),
    )
    body = Apply(LogLoop(step, BASE), Pair(field_of(r, BASE, BASE), r))
    return Lambda("r", REL_T, body)


def transitive_closure_sri() -> Lambda:
    """Transitive closure by element-by-element recursion (the PTIME style).

    ``sri`` over the node set; each inserted node extends the accumulated
    closure by one composition with the base relation:
    ``i(x, acc) = acc U acc o r``.  The dependent chain has length ``n``
    (one round per node), the hallmark of the PTIME evaluation strategy.
    """
    r = Var("r")
    insert = lam2(
        "x", BASE, "acc", REL_T,
        Union(Var("acc"), compose(Var("acc"), r, BASE)),
    )
    phi = Sri(r, insert)
    body = Apply(phi, field_of(r, BASE, BASE))
    return Lambda("r", REL_T, body)


# ---------------------------------------------------------------------------
# Derived graph queries
# ---------------------------------------------------------------------------

def reachable_pairs_query(style: str = "dcr") -> Lambda:
    """The reachability (transitive closure) query in the requested style."""
    builders = {
        "dcr": transitive_closure_dcr,
        "logloop": transitive_closure_logloop,
        "sri": transitive_closure_sri,
    }
    if style not in builders:
        raise ValueError(f"unknown style {style!r}; expected one of {sorted(builders)}")
    return builders[style]()


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

def run_on_relation(query: Expr, relation: Relation) -> Value:
    """Apply a unary NRA query to the value of a flat relation."""
    return run(query, relation.value())


def run_tc(query: Expr, relation: Relation) -> frozenset:
    """Run a transitive closure query and return plain Python pairs."""
    result = run_on_relation(query, relation)
    assert isinstance(result, SetVal)
    return frozenset(to_python(result))


def tagged_boolean_set(bits: list[bool]) -> SetVal:
    """Build the ``{D x B}`` input of the parity queries from a list of bits."""
    from ..objects.values import BaseVal, BoolVal, PairVal

    return SetVal(PairVal(BaseVal(i), BoolVal(b)) for i, b in enumerate(bits))


# ---------------------------------------------------------------------------
# The library as fluent Query values (the repro.api surface)
# ---------------------------------------------------------------------------
#
# Imports of repro.api stay inside the builders: repro.engine imports this
# package's sibling `relation` module at import time, and repro.api imports
# repro.engine, so a module-level import here would be circular.

def transitive_closure_query(source: str = "edges", style: str = "dcr"):
    """Transitive closure over the ``source`` collection, as a ``Query``.

    ``style="logloop"`` uses the builder-native ``fix`` (repeated squaring,
    the semi-naive fast path of the vectorized backend); every other style
    pipes the collection through the corresponding paper expression.
    """
    from ..api import Q

    base = Q.coll(source, REL_T)
    if style == "logloop":
        return base.fix()
    return base.pipe(reachable_pairs_query(style))


def parity_query(source: str = "bits", style: str = "dcr"):
    """Parity of a collection of tagged booleans, as a boolean ``Query``."""
    from ..api import Q

    builders = {
        "dcr": parity_dcr,
        "esr": parity_esr,
        "esr_translated": parity_esr_translated,
    }
    if style not in builders:
        raise ValueError(f"unknown style {style!r}; expected one of {sorted(builders)}")
    return Q.coll(source, SetType(TAGGED_BOOL_T)).pipe(builders[style]())


def reachable_from_query(source: str = "edges", param: str = "src"):
    """All nodes reachable from the parameter node: the prepared-statement demo.

    ``fix`` then a parametrized selection on the first component --
    ``session.prepare(...)`` turns the per-constant recompile into a per-call
    environment lookup.
    """
    from ..api import Q

    return (
        transitive_closure_query(source, style="logloop")
        .where(lambda e: e.fst == _param(param))
        .map(lambda e: e.snd)
    )


def _param(name: str):
    from ..api import Q

    return Q.param(name)


def query_library(source: str = "edges") -> dict:
    """The paper's named queries as ready ``Query`` values over ``source``.

    Keys mirror the expression builders above; every value cross-checks
    against its expression form in ``tests/api/test_query_builder.py``.
    """
    return {
        "tc_dcr": transitive_closure_query(source, "dcr"),
        "tc_logloop": transitive_closure_query(source, "logloop"),
        "tc_sri": transitive_closure_query(source, "sri"),
        "two_hop": _two_hop(source),
        "reachable_from": reachable_from_query(source),
    }


def _two_hop(source: str):
    from ..api import Q

    edges = Q.coll(source, REL_T)
    return edges.compose(edges)
