"""Ordered databases of flat relations, and genericity of queries.

Section 5 of the paper adopts Chandra and Harel's notion of *database query*:
a family of functions, one per interpretation of the base type, commuting with
every order-preserving injection ("morphism") of base domains.  An
:class:`OrderedDatabase` is a finite interpretation -- a collection of named
flat relations over an ordered active domain -- and :func:`is_generic_query`
is the finite, testable approximation of the commutation requirement: the
query must commute with random order-preserving renamings of the active
domain.

The database also knows how to present itself as an evaluation environment for
NRA expressions (every relation name bound to its complex-object value), which
is how the examples and benchmarks run language-level queries against data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional

from ..objects.values import Atom, SetVal, Value, rename_atoms
from .relation import Relation


@dataclass
class OrderedDatabase:
    """A database instance: named flat relations over one ordered domain."""

    relations: dict[str, Relation] = field(default_factory=dict)

    @staticmethod
    def of(*relations: Relation) -> "OrderedDatabase":
        db = OrderedDatabase()
        for r in relations:
            db.add(r)
        return db

    def add(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already present")
        self.relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def active_domain(self) -> list[Atom]:
        """The atoms mentioned anywhere in the database, in increasing order."""
        atoms: set[Atom] = set()
        for r in self.relations.values():
            atoms |= r.active_domain()
        ints = sorted(a for a in atoms if isinstance(a, int))
        strs = sorted(a for a in atoms if isinstance(a, str))
        return list(ints) + list(strs)

    def environment(self) -> dict[str, Value]:
        """NRA evaluation environment: each relation name bound to its value."""
        return {name: rel.value() for name, rel in self.relations.items()}

    def size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(r) for r in self.relations.values())

    def rename(self, mapping: Mapping[Atom, Atom]) -> "OrderedDatabase":
        """Apply an atom renaming to every relation (used by genericity tests)."""
        out = OrderedDatabase()
        for name, rel in self.relations.items():
            rows = [tuple(mapping.get(a, a) for a in row) for row in rel.tuples]
            out.add(Relation.from_tuples(name, rel.arity, rows))
        return out


def order_preserving_renaming(
    atoms: Iterable[Atom], rng: random.Random, spread: int = 5
) -> dict[Atom, Atom]:
    """A random order-preserving injection of integer atoms into fresh integers.

    The image values are strictly increasing, so the renaming is a *morphism*
    in the paper's sense: ``x <= y  iff  phi(x) <= phi(y)``.  String atoms are
    left unchanged (they already carry their own order).
    """
    ints = sorted(a for a in atoms if isinstance(a, int))
    mapping: dict[Atom, Atom] = {}
    current = rng.randint(-100, 0)
    for a in ints:
        current += rng.randint(1, spread)
        mapping[a] = current
    return mapping


def is_generic_query(
    query: Callable[[OrderedDatabase], Value],
    db: OrderedDatabase,
    trials: int = 3,
    seed: int = 0,
) -> bool:
    """Check the Chandra-Harel genericity condition on one instance.

    For ``trials`` random order-preserving renamings ``phi`` of the active
    domain, verify that ``query(phi(db)) == phi(query(db))``.  All queries
    definable in ``NRA(<=)`` pass this by construction; it is the property
    tests' guard against accidentally "reading" concrete atom values.
    """
    rng = random.Random(seed)
    baseline = query(db)
    for _ in range(trials):
        mapping = order_preserving_renaming(db.active_domain(), rng)
        renamed_db = db.rename(mapping)
        expected = rename_atoms(baseline, dict(mapping))
        if query(renamed_db) != expected:
            return False
    return True
