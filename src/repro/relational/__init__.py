"""Flat relations, ordered databases, the baseline algebra and the query library."""

from .relation import Relation
from .database import OrderedDatabase, is_generic_query, order_preserving_renaming
from .algebra import (
    active_domain,
    cartesian,
    compose,
    difference,
    intersection,
    is_connected,
    natural_join_binary,
    parity_of,
    project,
    reachable_from,
    rows,
    select,
    transitive_closure_naive,
    transitive_closure_seminaive,
    transitive_closure_squaring,
    union,
)
from .queries import (
    EDGE_T,
    REL_T,
    TAGGED_BOOL_T,
    cardinality_parity_dcr,
    parity_dcr,
    parity_esr,
    reachable_pairs_query,
    run_on_relation,
    run_tc,
    tagged_boolean_set,
    transitive_closure_dcr,
    transitive_closure_logloop,
    transitive_closure_sri,
)

__all__ = [
    "Relation", "OrderedDatabase", "is_generic_query", "order_preserving_renaming",
    "rows", "union", "difference", "intersection", "cartesian", "select", "project",
    "natural_join_binary", "compose", "active_domain",
    "transitive_closure_naive", "transitive_closure_seminaive",
    "transitive_closure_squaring", "reachable_from", "is_connected", "parity_of",
    "EDGE_T", "REL_T", "TAGGED_BOOL_T",
    "parity_dcr", "parity_esr", "cardinality_parity_dcr",
    "transitive_closure_dcr", "transitive_closure_logloop", "transitive_closure_sri",
    "reachable_pairs_query", "run_on_relation", "run_tc", "tagged_boolean_set",
]
