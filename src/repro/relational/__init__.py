"""Flat relations, ordered databases, the baseline algebra and the query library.

This package is the paper's Section 6/7 setting made concrete: *flat*
databases (sets of tuples of atoms) over the ordered base type, which is
where the capture theorems live (``NRA1(dcr, <=)`` = NC over flat queries,
``NRA1(sri, <=)`` = PTIME).

* :mod:`repro.relational.relation` -- :class:`Relation`, an immutable named
  set of equal-length atom tuples that knows how to present itself as a
  complex-object value (for the NRA evaluators and the optimizing engine),
  as plain Python tuples (for the imperative baseline), and as a NetworkX
  graph (for the workload generators).
* :mod:`repro.relational.database` -- :class:`OrderedDatabase` and the
  genericity checks of Section 5 (queries must commute with order-preserving
  atom renamings).
* :mod:`repro.relational.algebra` -- the imperative relational algebra used
  as an oracle: select/project/join plus three transitive-closure algorithms
  (naive, semi-naive, squaring) whose round counts calibrate the cost-model
  depths.
* :mod:`repro.relational.queries` -- the paper's query library as ready-made
  NRA expressions, each in up to three evaluation styles (``dcr`` /
  ``log_loop`` / ``sri``-``esr``), plus :func:`parity_esr_translated`, the
  Proposition 2.1 image that the optimizing engine rewrites back to ``dcr``;
  the same library doubles as fluent :mod:`repro.api` ``Query`` values via
  :func:`query_library` / :func:`transitive_closure_query` /
  :func:`parity_query` / :func:`reachable_from_query`.

The examples, benchmarks and the engine cross-checks all funnel through the
runner helpers at the bottom of :mod:`repro.relational.queries`
(:func:`run_on_relation`, :func:`run_tc`), which convert between relations,
complex-object values and plain Python data.
"""

from .relation import Relation
from .database import OrderedDatabase, is_generic_query, order_preserving_renaming
from .algebra import (
    active_domain,
    cartesian,
    compose,
    difference,
    intersection,
    is_connected,
    natural_join_binary,
    parity_of,
    project,
    reachable_from,
    rows,
    select,
    transitive_closure_naive,
    transitive_closure_seminaive,
    transitive_closure_squaring,
    union,
)
from .queries import (
    EDGE_T,
    REL_T,
    TAGGED_BOOL_T,
    cardinality_parity_dcr,
    parity_dcr,
    parity_esr,
    parity_esr_translated,
    parity_query,
    query_library,
    reachable_from_query,
    reachable_pairs_query,
    run_on_relation,
    run_tc,
    tagged_boolean_set,
    transitive_closure_dcr,
    transitive_closure_logloop,
    transitive_closure_query,
    transitive_closure_sri,
)

__all__ = [
    "Relation", "OrderedDatabase", "is_generic_query", "order_preserving_renaming",
    "rows", "union", "difference", "intersection", "cartesian", "select", "project",
    "natural_join_binary", "compose", "active_domain",
    "transitive_closure_naive", "transitive_closure_seminaive",
    "transitive_closure_squaring", "reachable_from", "is_connected", "parity_of",
    "EDGE_T", "REL_T", "TAGGED_BOOL_T",
    "parity_dcr", "parity_esr", "parity_esr_translated", "cardinality_parity_dcr",
    "transitive_closure_dcr", "transitive_closure_logloop", "transitive_closure_sri",
    "reachable_pairs_query", "run_on_relation", "run_tc", "tagged_boolean_set",
    "query_library", "transitive_closure_query", "parity_query",
    "reachable_from_query",
]
