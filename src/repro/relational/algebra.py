"""An imperative flat relational algebra, used as the baseline substrate.

The NRA expressions of :mod:`repro.nra` are the object of study; this module
is the *control*: a direct, Python-level implementation of the classical
relational operations on sets of tuples, plus the standard transitive closure
algorithms (naive iteration, semi-naive iteration, and repeated squaring).
It serves three purposes:

* an **oracle** for the language-level queries in the tests (whatever the NRA
  query computes must agree with the plain-Python computation);
* the **PTIME baseline** of the benchmarks: semi-naive transitive closure
  performs ``Theta(diameter)`` dependent rounds (element-by-element flavour),
  while repeated squaring performs ``Theta(log diameter)`` rounds -- the same
  contrast the paper draws between ``sri`` and ``dcr``;
* a convenience layer for building workloads.

All functions operate on ``frozenset`` of equal-length tuples of atoms and are
pure.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..objects.values import Atom

#: A flat relation instance at the Python level.
Rows = frozenset

def rows(pairs: Iterable[tuple]) -> frozenset:
    """Normalise an iterable of tuples into a frozenset of tuples."""
    return frozenset(tuple(p) for p in pairs)


# ---------------------------------------------------------------------------
# Core operations
# ---------------------------------------------------------------------------

def union(r: frozenset, s: frozenset) -> frozenset:
    return r | s


def difference(r: frozenset, s: frozenset) -> frozenset:
    return r - s


def intersection(r: frozenset, s: frozenset) -> frozenset:
    return r & s


def cartesian(r: frozenset, s: frozenset) -> frozenset:
    return frozenset(a + b for a in r for b in s)


def select(r: frozenset, predicate: Callable[[tuple], bool]) -> frozenset:
    return frozenset(row for row in r if predicate(row))


def project(r: frozenset, columns: tuple[int, ...]) -> frozenset:
    return frozenset(tuple(row[c] for c in columns) for row in r)


def natural_join_binary(r: frozenset, s: frozenset) -> frozenset:
    """Join binary relations on ``r.2 = s.1``, producing ``(r.1, s.2)`` pairs.

    This is relation composition ``r o s``, the building block of transitive
    closure by squaring (Example 7.1).
    """
    by_first: dict[Atom, list[Atom]] = {}
    for a, b in s:
        by_first.setdefault(a, []).append(b)
    out = set()
    for a, b in r:
        for c in by_first.get(b, ()):
            out.add((a, c))
    return frozenset(out)


compose = natural_join_binary


def active_domain(r: frozenset) -> frozenset:
    return frozenset(a for row in r for a in row)


def identity_relation(domain: Iterable[Atom]) -> frozenset:
    return frozenset((a, a) for a in domain)


# ---------------------------------------------------------------------------
# Transitive closure: the three classical strategies
# ---------------------------------------------------------------------------

def transitive_closure_naive(r: frozenset) -> tuple[frozenset, int]:
    """Naive iteration ``T <- T U (T o R)`` until fixpoint.

    Returns the closure and the number of dependent rounds performed
    (``Theta(longest path)``); each round redoes all the join work.  This is
    the element-by-element flavour of computation that ``sri``/``fix`` model.
    """
    closure = r
    rounds = 0
    while True:
        rounds += 1
        extended = closure | natural_join_binary(closure, r)
        if extended == closure:
            return closure, rounds
        closure = extended


def transitive_closure_seminaive(r: frozenset) -> tuple[frozenset, int]:
    """Semi-naive iteration: only newly discovered pairs are re-joined.

    Still ``Theta(longest path)`` dependent rounds, but each round's work is
    proportional to the frontier -- the standard PTIME evaluation strategy for
    Datalog-style recursion.
    """
    closure = r
    delta = r
    rounds = 0
    while delta:
        rounds += 1
        delta = natural_join_binary(delta, r) - closure
        closure = closure | delta
    return closure, rounds


def transitive_closure_squaring(r: frozenset) -> tuple[frozenset, int]:
    """Repeated squaring ``T <- T U (T o T)``, ``ceil(log2(n+1))`` rounds.

    This is Example 7.1: the number of dependent rounds is logarithmic in the
    number of nodes, each round being one big (parallelisable) join -- the
    ``dcr``/``log_loop`` strategy that witnesses membership in NC.
    """
    n = len(active_domain(r))
    closure = r
    rounds = 0
    if not r:
        return r, 0
    while rounds < max(1, (n).bit_length()):
        rounds += 1
        extended = closure | natural_join_binary(closure, closure)
        if extended == closure:
            break
        closure = extended
    return closure, rounds


def reachable_from(r: frozenset, source: Atom) -> frozenset:
    """The set of nodes reachable from ``source`` (via the squaring closure)."""
    closure, _ = transitive_closure_squaring(r)
    return frozenset(b for a, b in closure if a == source) | frozenset({source})


def is_connected(r: frozenset) -> bool:
    """Is the underlying undirected graph connected (on its active domain)?"""
    domain = active_domain(r)
    if not domain:
        return True
    sym = r | frozenset((b, a) for a, b in r)
    start = next(iter(sorted(domain, key=repr)))
    return reachable_from(sym, start) >= domain


def parity_of(values: Iterable[bool]) -> bool:
    """XOR of a collection of booleans (the paper's parity query, as oracle)."""
    result = False
    for v in values:
        result ^= bool(v)
    return result
