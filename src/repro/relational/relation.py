"""Flat relations over the ordered base type.

The paper's flat queries (Theorem 6.2) are over databases of *flat relations*:
finite sets of tuples of base values.  :class:`Relation` is a light, immutable
wrapper around such a set of tuples that knows how to present itself as a
complex object value (for the NRA evaluators), as a Python set of tuples (for
the imperative relational algebra used as a baseline), and as a NetworkX graph
(for the graph workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..objects.types import BASE, SetType, Type, prod, relation_type
from ..objects.values import Atom, BaseVal, SetVal, Value, from_python, to_python, tup, untup


@dataclass(frozen=True)
class Relation:
    """An immutable flat relation: a named set of equal-length atom tuples."""

    name: str
    arity: int
    tuples: frozenset[tuple[Atom, ...]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError(f"relation arity must be >= 1, got {self.arity}")
        for t in self.tuples:
            if len(t) != self.arity:
                raise ValueError(
                    f"tuple {t!r} does not match arity {self.arity} of relation {self.name!r}"
                )
            for a in t:
                if not isinstance(a, (int, str)) or isinstance(a, bool):
                    raise TypeError(f"relation atoms must be int or str, got {a!r}")

    # -- constructors -------------------------------------------------------------
    @staticmethod
    def from_tuples(name: str, arity: int, rows: Iterable[tuple[Atom, ...]]) -> "Relation":
        return Relation(name, arity, frozenset(tuple(r) for r in rows))

    @staticmethod
    def from_pairs(name: str, pairs: Iterable[tuple[Atom, Atom]]) -> "Relation":
        """A binary relation (the common case: graph edge sets)."""
        return Relation.from_tuples(name, 2, pairs)

    @staticmethod
    def unary(name: str, atoms: Iterable[Atom]) -> "Relation":
        return Relation.from_tuples(name, 1, ((a,) for a in atoms))

    # -- container protocol -------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[Atom, ...]]:
        return iter(sorted(self.tuples, key=_tuple_key))

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, row: object) -> bool:
        return row in self.tuples

    # -- views --------------------------------------------------------------------
    @property
    def type(self) -> SetType:
        """The complex object type ``{D x ... x D}`` of this relation."""
        return relation_type(self.arity)

    def value(self) -> SetVal:
        """The relation as a complex object value (right-nested tuples)."""
        return SetVal(tup(*(BaseVal(a) for a in row)) for row in self.tuples)

    @staticmethod
    def from_value(name: str, v: Value, arity: int) -> "Relation":
        """Rebuild a relation from a complex object value of the matching type."""
        if not isinstance(v, SetVal):
            raise TypeError(f"expected a set value, got {v!r}")
        rows = []
        for element in v:
            components = untup(element, arity)
            row = []
            for c in components:
                if not isinstance(c, BaseVal):
                    raise TypeError(f"expected a base value in a flat relation, got {c!r}")
                row.append(c.value)
            rows.append(tuple(row))
        return Relation.from_tuples(name, arity, rows)

    def active_domain(self) -> frozenset[Atom]:
        """All atoms mentioned by the relation."""
        return frozenset(a for row in self.tuples for a in row)

    def project(self, *columns: int) -> frozenset[tuple[Atom, ...]]:
        """Project onto the given 0-based columns (as plain tuples)."""
        for c in columns:
            if not 0 <= c < self.arity:
                raise IndexError(f"column {c} out of range for arity {self.arity}")
        return frozenset(tuple(row[c] for c in columns) for row in self.tuples)

    def rename(self, name: str) -> "Relation":
        return Relation(name, self.arity, self.tuples)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self.tuples)})"


def _tuple_key(row: tuple[Atom, ...]) -> tuple:
    return tuple((0, a) if isinstance(a, int) else (1, a) for a in row)
