"""Bottom-up algebraic rewriting of NRA expressions.

The optimizing engine rewrites a query before evaluating it.  Every rewrite
rule is an *algebraic identity of the NRA* (Section 3 of the paper) or one of
the paper's expressiveness translations read as an optimization:

* **Structural simplifications** -- identity-composition elimination
  (``(\\x. x) e = e``, ``ext(\\x. {x}) = id``), projection/pair cancellation,
  conditional and emptiness short-circuits, union unit/idempotence laws.
  These are sound because the object language is *pure and total*: dropping or
  duplicating a subexpression can change neither the result nor termination
  (the substitution note in DESIGN.md spells this out).

* **Ext fusion** -- ``ext(f) . ext(g) = ext(ext(f) . g)`` (the monad
  associativity law of the set monad, which the paper's Section 3 presents as
  the defining equations of ``ext``), plus the unit laws
  ``ext(f)({e}) = f(e)`` and ``ext(f)({}) = {}``.

* **Cost-directed recursion rewrites** -- Proposition 2.1 exhibits the
  translations ``dcr -> esr -> sri``; read right-to-left they say that an
  insert recursion whose step has the shape ``i(x, y) = u(f(x), y)`` *is* a
  divide-and-conquer recursion whenever ``u`` is associative and commutative
  with identity ``e``.  The rewriter detects that shape syntactically and
  discharges the algebraic side conditions empirically on a finite sampled
  carrier (:mod:`repro.recursion.algebraic` explains why a complete check is
  undecidable), then replaces the ``sri``/``esr`` node by the corresponding
  ``dcr`` node.  Under the work/depth model of :mod:`repro.nra.cost` this
  takes the combining chain from depth ``Theta(n)`` to ``Theta(log n)`` --
  exactly the paper's NC-versus-PTIME contrast, applied as an optimization.

Rules live in a registry (:data:`DEFAULT_RULES`); a :class:`Rewriter` runs
them bottom-up to a fixpoint and records every firing, which is what
``Engine.explain`` reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..nra import ast
from ..nra.ast import Expr, fresh_name, free_variables, map_children, substitute
from ..nra.errors import NRAEvalError, NRATypeError
from ..nra.externals import EMPTY_SIGMA, Signature
from ..nra.typecheck import FunType, infer
from ..objects.types import ProdType, SetType
from ..objects.values import BaseVal, BoolVal, UnitVal, Value
from ..recursion.algebraic import (
    carrier_closure,
    has_identity,
    is_associative,
    is_commutative,
)
from ..workloads.nested import random_object


@dataclass(frozen=True)
class RuleFiring:
    """One recorded application of a rewrite rule."""

    rule: str
    before: Expr
    after: Expr

    def __str__(self) -> str:
        return f"{self.rule}: {self.before!r}  ==>  {self.after!r}"


class Rule:
    """A named local rewrite: ``apply`` returns the replacement or ``None``."""

    def __init__(
        self,
        name: str,
        apply: Callable[[Expr, "Rewriter"], Optional[Expr]],
        doc: str = "",
    ) -> None:
        self.name = name
        self._apply = apply
        self.doc = doc or (apply.__doc__ or "").strip()

    def apply(self, e: Expr, rw: "Rewriter") -> Optional[Expr]:
        return self._apply(e, rw)

    def __repr__(self) -> str:
        return f"<rule {self.name}>"


def rule(name: str):
    """Decorator registering a function as a named :class:`Rule` in DEFAULT_RULES."""

    def wrap(fn: Callable[[Expr, "Rewriter"], Optional[Expr]]) -> Rule:
        r = Rule(name, fn)
        DEFAULT_RULES.append(r)
        return r

    return wrap


#: The standard rule registry, in application order.
DEFAULT_RULES: list[Rule] = []


# ---------------------------------------------------------------------------
# Structural simplifications
# ---------------------------------------------------------------------------

@rule("identity-apply")
def _identity_apply(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``(\\x. x) e = e``: eliminate application of the identity function."""
    if (
        isinstance(e, ast.Apply)
        and isinstance(e.func, ast.Lambda)
        and isinstance(e.func.body, ast.Var)
        and e.func.body.name == e.func.var
    ):
        return e.arg
    return None


@rule("beta-variable")
def _beta_variable(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``(\\x. b) y = b[y/x]`` when the argument is a variable or atomic constant.

    Restricted to arguments whose evaluation is O(1) -- variables, the unit /
    boolean / empty-set formers and atom-sized literals -- so the rewrite can
    only shrink the expression: substituting a large literal (a ``Const``
    wrapping a whole database) into many occurrences would re-intern it per
    occurrence instead of once.
    """
    if isinstance(e, ast.Apply) and isinstance(e.func, ast.Lambda):
        arg = e.arg
        atomic = isinstance(arg, (ast.Var, ast.BoolConst, ast.UnitConst, ast.EmptySet)) or (
            isinstance(arg, ast.Const)
            and isinstance(arg.value, (BaseVal, BoolVal, UnitVal))
        )
        if atomic:
            return substitute(e.func.body, e.func.var, arg)
    return None


@rule("proj-pair")
def _proj_pair(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``pi1 (e1, e2) = e1`` and ``pi2 (e1, e2) = e2``."""
    if isinstance(e, ast.Proj1) and isinstance(e.pair, ast.Pair):
        return e.pair.fst
    if isinstance(e, ast.Proj2) and isinstance(e.pair, ast.Pair):
        return e.pair.snd
    return None


@rule("if-constant")
def _if_constant(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``if true then a else b = a``; ``if false then a else b = b``."""
    if isinstance(e, ast.If) and isinstance(e.cond, ast.BoolConst):
        return e.then if e.cond.value else e.orelse
    return None


@rule("if-same")
def _if_same(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``if c then a else a = a`` (sound: the language is pure and total)."""
    if isinstance(e, ast.If) and e.then == e.orelse:
        return e.then
    return None


@rule("eq-reflexive")
def _eq_reflexive(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``e = e`` is ``true`` (evaluation is deterministic and effect-free)."""
    if isinstance(e, ast.Eq) and e.left == e.right:
        return ast.BoolConst(True)
    return None


@rule("union-empty")
def _union_empty(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``{} U e = e`` and ``e U {} = e``: the unit law of union."""
    if isinstance(e, ast.Union):
        if isinstance(e.left, ast.EmptySet):
            return e.right
        if isinstance(e.right, ast.EmptySet):
            return e.left
    return None


@rule("union-idempotent")
def _union_idempotent(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``e U e = e`` (syntactically equal operands only)."""
    if isinstance(e, ast.Union) and e.left == e.right:
        return e.left
    return None


@rule("empty-test")
def _empty_test(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``empty({}) = true``; ``empty({e}) = false``."""
    if isinstance(e, ast.IsEmpty):
        if isinstance(e.set, ast.EmptySet):
            return ast.BoolConst(True)
        if isinstance(e.set, ast.Singleton):
            return ast.BoolConst(False)
    return None


# ---------------------------------------------------------------------------
# ext laws (the set-monad identities of Section 3)
# ---------------------------------------------------------------------------

@rule("ext-identity")
def _ext_identity(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``ext(\\x. {x})(s) = s``: mapping the singleton former is the identity."""
    if isinstance(e, ast.Apply) and isinstance(e.func, ast.Ext):
        f = e.func.func
        if (
            isinstance(f, ast.Lambda)
            and isinstance(f.body, ast.Singleton)
            and isinstance(f.body.item, ast.Var)
            and f.body.item.name == f.var
        ):
            return e.arg
    return None


@rule("ext-empty")
def _ext_empty(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``ext(f)({}) = {}``.

    Needs the element type of the result, which is read off the type of ``f``;
    the rule therefore only fires when ``f`` is closed and typeable.
    """
    if (
        isinstance(e, ast.Apply)
        and isinstance(e.func, ast.Ext)
        and isinstance(e.arg, ast.EmptySet)
    ):
        result = rw.type_of(e.func.func)
        if (
            isinstance(result, FunType)
            and isinstance(result.result, SetType)
        ):
            return ast.EmptySet(result.result.elem)
    return None


@rule("ext-singleton")
def _ext_singleton(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``ext(f)({e}) = f(e)``: the unit law of the set monad."""
    if (
        isinstance(e, ast.Apply)
        and isinstance(e.func, ast.Ext)
        and isinstance(e.arg, ast.Singleton)
    ):
        return ast.Apply(e.func.func, e.arg.item)
    return None


@rule("ext-fusion")
def _ext_fusion(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """``ext(f)(ext(g)(s)) = ext(\\x. ext(f)(g(x)))(s)``: associativity of ext.

    Restricted to *map-shaped* inner functions (``g`` with a singleton body,
    i.e. ``smap``) so that fusion skips materializing the intermediate set
    without multiplying applications of ``f``: a general ``g`` may fan out or
    produce overlapping sets, where fusing would apply ``f`` once per source
    element instead of once per distinct intermediate element.  For the
    residual duplication a non-injective map can still cause, the memoizing
    evaluator shares one closure (and its cache) per ``(expression,
    environment)``, so repeated intermediate values cost a cache hit at run
    time.
    """
    if (
        isinstance(e, ast.Apply)
        and isinstance(e.func, ast.Ext)
        and isinstance(e.arg, ast.Apply)
        and isinstance(e.arg.func, ast.Ext)
        and isinstance(e.arg.func.func, ast.Lambda)
        and isinstance(e.arg.func.func.body, ast.Singleton)
    ):
        f = e.func.func
        g = e.arg.func.func
        s = e.arg.arg
        var = g.var
        body = g.body
        if var in free_variables(f):
            renamed = fresh_name(var.split("%")[0])
            body = substitute(body, var, ast.Var(renamed))
            var = renamed
        fused = ast.Lambda(var, g.var_type, ast.Apply(ast.Ext(f), body))
        return ast.Apply(ast.Ext(fused), s)
    return None


# ---------------------------------------------------------------------------
# Proposition 2.1 as a cost-directed rewrite: sri/esr -> dcr
# ---------------------------------------------------------------------------

def _uses_var_only_under_proj1(e: Expr, name: str) -> bool:
    """True iff every occurrence of ``Var(name)`` in ``e`` sits under ``Proj1``."""
    if isinstance(e, ast.Proj1) and isinstance(e.pair, ast.Var) and e.pair.name == name:
        return True
    if isinstance(e, ast.Var):
        return e.name != name
    if isinstance(e, ast.Lambda) and e.var == name:
        return True
    return all(_uses_var_only_under_proj1(c, name) for c in e.children())


def _replace_proj1_var(e: Expr, name: str, replacement: Expr) -> Expr:
    """Rewrite ``pi1(Var(name))`` to ``replacement`` everywhere in ``e``."""
    if isinstance(e, ast.Proj1) and isinstance(e.pair, ast.Var) and e.pair.name == name:
        return replacement
    if isinstance(e, ast.Lambda) and e.var == name:
        return e
    return map_children(e, lambda c: _replace_proj1_var(c, name, replacement))


@rule("sri-to-dcr")
def _sri_to_dcr(e: Expr, rw: "Rewriter") -> Optional[Expr]:
    """Prefer divide-and-conquer over insert recursion (Proposition 2.1).

    Matches ``sri(e, \\z. u((... pi1 z ...), pi2 z))`` / the same ``esr`` --
    the image of the Proposition 2.1 translation ``dcr(e, f, u) =
    esr(e, (x, y) -> u(f(x), y))`` -- and rewrites it back to
    ``dcr(e, \\x. f(x), u)``, *provided* the combining operation passes the
    sampled associativity/commutativity/identity check (the full check is
    undecidable; see :mod:`repro.recursion.algebraic`).  The combining chain
    drops from linear to logarithmic depth, which the cost cross-checks in
    ``tests/engine`` verify under :mod:`repro.nra.cost`.
    """
    if not isinstance(e, (ast.Sri, ast.Esr)):
        return None
    ins = e.insert
    if not (isinstance(ins, ast.Lambda) and isinstance(ins.var_type, ProdType)):
        return None
    body = ins.body
    z = ins.var
    # The step must literally be  u(item_expr, pi2 z)  with u a closed lambda.
    if not (
        isinstance(body, ast.Apply)
        and isinstance(body.func, ast.Lambda)
        and isinstance(body.arg, ast.Pair)
        and isinstance(body.arg.snd, ast.Proj2)
        and isinstance(body.arg.snd.pair, ast.Var)
        and body.arg.snd.pair.name == z
    ):
        return None
    u = body.func
    item_expr = body.arg.fst
    if z in free_variables(u):
        return None
    if not _uses_var_only_under_proj1(item_expr, z):
        return None
    if not rw.combiner_is_acu(u, e.seed, ins.var_type.snd):
        return None
    x = fresh_name("d")
    item = ast.Lambda(x, ins.var_type.fst, _replace_proj1_var(item_expr, z, ast.Var(x)))
    return ast.Dcr(e.seed, item, u)


# ---------------------------------------------------------------------------
# Inflationary-step analysis (hooks for the set-at-a-time backend)
# ---------------------------------------------------------------------------
#
# The vectorized engine (:mod:`repro.engine.vectorized`) evaluates the
# iterators and the insert recursions semi-naively when it can *prove* the
# step inflationary: a step ``\v. v U F1(v) U ... U Fk(v)`` only ever grows
# its accumulator, so each round needs to re-derive only from the previous
# round's newly discovered elements (the frontier).  The proofs here are
# syntactic -- no sampled algebraic gate is involved, so unlike the
# cost-directed rules these analyses never mis-fire on adversarial inputs.

def union_operands(e: Expr) -> list[Expr]:
    """Flatten a ``Union`` tree into its operand list, in syntactic order."""
    if isinstance(e, ast.Union):
        return union_operands(e.left) + union_operands(e.right)
    return [e]


def is_inflationary_step(step: Expr) -> bool:
    """True iff ``step`` is syntactically ``\\v. v U ...``: a union tree with
    the loop variable itself as one operand, so ``step(v)`` is a superset of
    ``v`` for every set ``v``.  Inflationary steps form monotone iteration
    sequences, the precondition for frontier (semi-naive) evaluation."""
    if not isinstance(step, ast.Lambda):
        return False
    return any(
        isinstance(op, ast.Var) and op.name == step.var
        for op in union_operands(step.body)
    )


def _uses_var_only_under_proj2(e: Expr, name: str) -> bool:
    """True iff every occurrence of ``Var(name)`` in ``e`` sits under ``Proj2``."""
    if isinstance(e, ast.Proj2) and isinstance(e.pair, ast.Var) and e.pair.name == name:
        return True
    if isinstance(e, ast.Var):
        return e.name != name
    if isinstance(e, ast.Lambda) and e.var == name:
        return True
    return all(_uses_var_only_under_proj2(c, name) for c in e.children())


def _replace_proj2_var(e: Expr, name: str, replacement: Expr) -> Expr:
    """Rewrite ``pi2(Var(name))`` to ``replacement`` everywhere in ``e``."""
    if isinstance(e, ast.Proj2) and isinstance(e.pair, ast.Var) and e.pair.name == name:
        return replacement
    if isinstance(e, ast.Lambda) and e.var == name:
        return e
    return map_children(e, lambda c: _replace_proj2_var(c, name, replacement))


def insert_as_step(insert: Expr) -> Optional[ast.Lambda]:
    """View an ``sri``/``esr`` insert function as a pure iteration step.

    An insert ``\\z^(s x t). body`` that never looks at the inserted element
    (every occurrence of ``z`` is under ``pi2``) computes the same value for
    every element, so ``sri(e, i)(s)`` degenerates to iterating
    ``\\acc. body[pi2 z := acc]`` exactly ``|s|`` times -- the shape the
    paper's Proposition 6.6 PTIME queries take (e.g. transitive closure by
    ``sri``), and the entry point for the loop strategies of the vectorized
    backend.  Returns the step lambda, or ``None`` if the insert inspects the
    element (in which case only element-by-element evaluation is faithful).
    """
    if not (isinstance(insert, ast.Lambda) and isinstance(insert.var_type, ProdType)):
        return None
    if not _uses_var_only_under_proj2(insert.body, insert.var):
        return None
    acc = fresh_name("acc")
    body = _replace_proj2_var(insert.body, insert.var, ast.Var(acc))
    return ast.Lambda(acc, insert.var_type.snd, body)


#: The unconditionally semantics-preserving rules: algebraic identities of
#: the pure, total object language that hold for every expression.
STRUCTURAL_RULES: list[Rule] = [r for r in DEFAULT_RULES if r.name != "sri-to-dcr"]

#: The Proposition 2.1 recursion rewrites: semantics-preserving exactly when
#: the recursion's own algebraic preconditions hold, which the rewriter
#: verifies on a sampled carrier (complete, not sound -- see
#: :meth:`Rewriter.combiner_is_acu`).
COST_DIRECTED_RULES: list[Rule] = [r for r in DEFAULT_RULES if r.name == "sri-to-dcr"]


# ---------------------------------------------------------------------------
# The rewriter
# ---------------------------------------------------------------------------

class Rewriter:
    """Applies a rule registry bottom-up to a fixpoint, recording firings."""

    #: Safety valve against non-terminating rule sets.
    MAX_PASSES = 25

    def __init__(
        self,
        rules: Optional[list[Rule]] = None,
        sigma: Signature = EMPTY_SIGMA,
        seed: int = 0,
        carrier_samples: int = 6,
    ) -> None:
        self.rules = list(DEFAULT_RULES) if rules is None else list(rules)
        self.sigma = sigma
        self.seed = seed
        self.carrier_samples = carrier_samples
        self._acu_cache: dict[tuple[Expr, Expr], bool] = {}

    # -- services used by rules ---------------------------------------------------

    def type_of(self, e: Expr):
        """Best-effort type of a closed subexpression, or ``None``."""
        if free_variables(e):
            return None
        try:
            return infer(e, {}, self.sigma)
        except (NRATypeError, NRAEvalError):
            return None

    def combiner_is_acu(self, u: Expr, seed: Expr, carrier_type) -> bool:
        """Sampled check that ``u`` is associative/commutative with identity ``seed``.

        Evaluates the closed expressions ``u`` and ``seed`` and tests the
        identities on a seeded-random carrier of ``carrier_type`` values (plus
        the seed, plus the closure of the samples under ``u`` up to a cap).

        The check is *complete* but not *sound*: instances where the
        identities genuinely hold -- the only instances for which the source
        recursion is itself well-defined -- always pass, but an adversarial
        combiner that only misbehaves on values outside the sampled carrier
        can slip through (a complete decision procedure cannot exist; see
        :mod:`repro.recursion.algebraic` on the Pi-1-1-completeness of the
        precondition).  Callers who evaluate recursions with unverified
        combiners and need bit-exact reference behaviour should use
        :data:`STRUCTURAL_RULES`, which omits the cost-directed recursion
        rewrites entirely.
        """
        cache_key = (u, seed)
        if cache_key in self._acu_cache:
            return self._acu_cache[cache_key]
        result = self._combiner_is_acu(u, seed, carrier_type)
        self._acu_cache[cache_key] = result
        return result

    def _combiner_is_acu(self, u: Expr, seed: Expr, carrier_type) -> bool:
        from ..nra.eval import evaluate, FunctionValue

        if free_variables(u) or free_variables(seed):
            return False
        try:
            u_fn = evaluate(u, {}, self.sigma)
            seed_val = evaluate(seed, {}, self.sigma)
        except NRAEvalError:
            return False
        if not isinstance(u_fn, FunctionValue) or isinstance(seed_val, FunctionValue):
            return False

        from ..objects.values import PairVal

        def op(a: Value, b: Value) -> Value:
            return u_fn(PairVal(a, b))

        rng = random.Random(self.seed)
        samples: list[Value] = [seed_val]
        for _ in range(self.carrier_samples):
            try:
                samples.append(random_object(carrier_type, rng, max_set_size=3, atom_pool=5))
            except TypeError:
                return False
        try:
            # Also probe values *reachable* from the samples under u itself,
            # which catches combiners that only misbehave off the sample set.
            carrier, _ = carrier_closure(samples, op, max_size=12)
            return (
                has_identity(op, seed_val, carrier) is None
                and is_commutative(op, carrier) is None
                and is_associative(op, carrier) is None
            )
        except (NRAEvalError, TypeError):
            return False

    # -- rewriting ----------------------------------------------------------------

    def rewrite(self, e: Expr) -> tuple[Expr, list[RuleFiring]]:
        """Rewrite ``e`` bottom-up to a fixpoint; return it with the firing log."""
        firings: list[RuleFiring] = []
        current = e
        for _ in range(self.MAX_PASSES):
            rewritten = self._pass(current, firings)
            if rewritten == current:
                return rewritten, firings
            current = rewritten
        return current, firings

    def _pass(self, e: Expr, firings: list[RuleFiring]) -> Expr:
        e = map_children(e, lambda c: self._pass(c, firings))
        # Retry rules at this node until none fires (bounded by MAX_PASSES at
        # the top level; each firing strictly simplifies or changes the head).
        for _ in range(self.MAX_PASSES):
            replacement = self._apply_rules(e, firings)
            if replacement is None:
                return e
            e = replacement
        return e

    def _apply_rules(self, e: Expr, firings: list[RuleFiring]) -> Optional[Expr]:
        for r in self.rules:
            result = r.apply(e, self)
            if result is not None and result != e:
                firings.append(RuleFiring(r.name, e, result))
                return result
        return None


def rewrite(e: Expr, sigma: Signature = EMPTY_SIGMA) -> Expr:
    """Convenience: rewrite with the default registry, discarding the log."""
    return Rewriter(sigma=sigma).rewrite(e)[0]
