"""The worker-pool scheduler: shard tasks onto isolated vectorized workers.

Execution model.  The engine's interning discipline makes *sharing* an intern
table across concurrent mutators unsound (identity equality requires every
value to be canonicalized exactly once), so parallel workers do not share:
each :class:`ShardWorker` owns a private
:class:`~repro.engine.vectorized.VectorizedEvaluator` -- its own intern
table, compile cache and join indexes -- and communicates with the driver
exclusively through immutable values.  Driver-side values entering a worker
are *translated* (re-interned) into the worker's table through a per-worker
translation cache, so the loop-invariant environment of a fixpoint (the
accumulator's stable elements, the collection bindings) is translated once,
not once per round; worker results flow back as plain canonical values the
driver re-interns under the engine lock.

A wave of tasks is distributed round-robin over the workers; each worker
processes its slice in order on one pool thread, so a worker's caches are
only ever touched by one thread at a time (the driver blocks on the whole
wave before dispatching the next).  Failures are collected per task and the
one with the smallest task index is re-raised, keeping error reporting
deterministic regardless of thread scheduling.

The **process pool** option trades the translation caches for genuine
address-space isolation: tasks (expression, environment, arguments -- all
picklable) are shipped to worker processes holding one module-global
evaluator each.  On multi-core machines this sidesteps the GIL for CPU-bound
shards; the thread pool remains the default because on overlap-bound
workloads (external calls) it wins without any serialization cost.

The **shared-memory pool** (``kind="shm"``) keeps the process isolation but
drops the pickle traffic: each worker is an *addressable* single-process
executor (tasks pin to a slot, so a slot's intern dictionary only ever
grows), set bindings ship as dense-id columns with a one-time per-slot
``(id, value)`` sync for unseen ids (:mod:`repro.engine.parallel.shm`), and
the flat fixpoint exchanges raw code arrays -- through SharedMemory segments
once they outgrow the inline threshold.  The thread pool additionally
exposes :meth:`WorkerPool.run_callables`, which the driver-side flat
fixpoint uses to fan a round's probe chunks across the pool threads.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ...nra.ast import Expr
from ...nra.errors import NRAEvalError
from ...nra.externals import EMPTY_SIGMA, Signature
from ...objects.values import SetVal, Value
from ..interning import InternTable, intern_env
from ..vectorized import VectorizedEvaluator
from ..vectorized.batch import VecStats
from ..vectorized.compiler import VFunction
from .shm import encode_env, shm_init, shm_run_task

#: The pool flavours :class:`WorkerPool` accepts.
POOL_KINDS = ("thread", "process", "shm")


@dataclass(frozen=True)
class ShardTask:
    """One unit of worker work: evaluate ``expr`` under ``env``.

    With ``args`` unset the expression must denote a value (a shard-local
    sub-plan evaluated for its set); with ``args`` set it must denote a
    function, which is applied to each argument in order (the ``run_many``
    fan-out path).
    """

    expr: Expr
    env: dict
    args: Optional[tuple] = None


class ShardWorker:
    """One isolated evaluation context: private interner, compile cache."""

    #: Bound on cached translations.  Stable driver values (collection
    #: bindings, accumulator elements) are re-probed constantly and stay
    #: hot under LRU; the per-round wrappers (frontier shards, the round's
    #: accumulator set) are used once and age out instead of pinning dead
    #: driver objects for the engine's lifetime.
    MAX_TRANSLATIONS = 4096

    def __init__(self, sigma: Signature) -> None:
        self.evaluator = VectorizedEvaluator(sigma)
        # id(driver value) -> (driver value, worker value).  The driver value
        # is kept so its id stays valid for the entry's lifetime; evicting an
        # entry drops both, so a recycled id can never produce a stale hit.
        self._translated: dict[int, tuple[Value, Value]] = {}

    @property
    def stats(self) -> VecStats:
        return self.evaluator.stats

    def translate(self, v: Value) -> Value:
        """Re-intern a driver-side value into this worker's table (cached).

        Canonical order is structural (``sort_key``), so a canonical set
        translates element-by-element without re-sorting; element-level cache
        hits make re-translating a grown accumulator cost only its new part.
        """
        cache = self._translated
        cached = cache.pop(id(v), None)
        if cached is not None:
            cache[id(v)] = cached  # re-insert: most recently used last
            return cached[1]
        it = self.evaluator.interner
        if isinstance(v, SetVal) and v.elements:
            w = it.canonical_set(self.translate(e) for e in v.elements)
        else:
            w = it.intern(v)
        cache[id(v)] = (v, w)
        if len(cache) > self.MAX_TRANSLATIONS:
            cache.pop(next(iter(cache)))  # evict least recently used
        return w

    def run_task(self, task: ShardTask):
        env = {
            name: self.translate(v) if isinstance(v, Value) else v
            for name, v in task.env.items()
        }
        d = self.evaluator.compile(task.expr).fn(env)
        if task.args is None:
            if isinstance(d, VFunction):
                raise NRAEvalError(
                    "shard task produced a function denotation; expected a value"
                )
            return d
        if not isinstance(d, VFunction):
            raise NRAEvalError(f"run_many: expected a function expression, got {d!r}")
        return [d(self.translate(a)) for a in task.args]

    def reset(self) -> None:
        """Drop every cache (compiled plans, join indexes, translations)."""
        self.evaluator.clear_caches()
        self._translated.clear()


def _run_slice(worker: ShardWorker, items: list):
    """Run one worker's slice of a wave; never raises (failures are data)."""
    done: list = []
    for idx, task in items:
        try:
            done.append((idx, worker.run_task(task)))
        except BaseException as exc:  # noqa: BLE001 - re-raised by the driver
            return done, (idx, exc)
    return done, None


# -- process-pool glue (module level so it pickles by reference) --------------

_PROCESS_EVALUATOR: Optional[VectorizedEvaluator] = None


def _process_init(sigma: Signature) -> None:
    global _PROCESS_EVALUATOR
    _PROCESS_EVALUATOR = VectorizedEvaluator(sigma)


def _process_run_task(task: ShardTask):
    ev = _PROCESS_EVALUATOR
    if ev is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process used before initialization")
    d = ev.compile(task.expr).fn(intern_env(ev.interner, task.env))
    if task.args is None:
        if isinstance(d, VFunction):
            raise NRAEvalError(
                "shard task produced a function denotation; expected a value"
            )
        return d
    if not isinstance(d, VFunction):
        raise NRAEvalError(f"run_many: expected a function expression, got {d!r}")
    return [d(ev.interner.intern(a)) for a in task.args]


@dataclass
class WorkerPool:
    """A fixed set of isolated workers plus the executor that drives them."""

    sigma: Signature = EMPTY_SIGMA
    workers: int = 4
    kind: str = "thread"
    #: The driver's intern table ("shm" pools only): supplies the dense ids
    #: tasks are encoded against.  ``None`` degrades shm shipping to plain
    #: pickles (process-pool behaviour) without changing results.
    interner: Optional[InternTable] = None
    #: Cumulative id-array payload deliveries to shm workers and their byte
    #: volume (a SharedMemory segment read by every slot counts once).
    shm_ships: int = 0
    array_bytes_shipped: int = 0
    _workers: list[ShardWorker] = field(default_factory=list, repr=False)
    _executor: Optional[Executor] = field(default=None, repr=False)
    _slots: list = field(default_factory=list, repr=False)
    _slot_known: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {self.kind!r}; expected one of {POOL_KINDS}"
            )
        if self.workers < 1:
            raise ValueError("a worker pool needs at least one worker")

    # -- lazy plumbing ------------------------------------------------------------

    def _ensure(self) -> Executor:
        if self._executor is None:
            if self.kind == "thread":
                self._workers = [ShardWorker(self.sigma) for _ in range(self.workers)]
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-shard"
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_process_init,
                    initargs=(self.sigma,),
                )
        return self._executor

    def _ensure_slots(self) -> list:
        """The addressable single-process executors of an ``"shm"`` pool."""
        if not self._slots:
            self._slots = [
                ProcessPoolExecutor(
                    max_workers=1, initializer=shm_init, initargs=(self.sigma,)
                )
                for _ in range(self.workers)
            ]
            self._slot_known = [set() for _ in range(self.workers)]
        return self._slots

    # -- the wave protocol --------------------------------------------------------

    def run_tasks(self, tasks: list[ShardTask]) -> list:
        """Run one wave; returns results aligned with ``tasks``.

        Raises the failure with the smallest task index, if any (after the
        whole wave has drained, so worker caches stay consistent).
        """
        if not tasks:
            return []
        if self.kind == "shm":
            return self._run_tasks_shm(tasks)
        executor = self._ensure()
        if self.kind == "thread":
            if len(tasks) == 1:
                # One shard: no reason to hop threads.
                return [self._workers[0].run_task(tasks[0])]
            slices: list[list] = [[] for _ in range(min(self.workers, len(tasks)))]
            for idx, task in enumerate(tasks):
                slices[idx % len(slices)].append((idx, task))
            futures = [
                executor.submit(_run_slice, self._workers[w], items)
                for w, items in enumerate(slices)
            ]
            results: dict[int, object] = {}
            failures: list[tuple[int, BaseException]] = []
            for f in futures:
                done, failed = f.result()
                results.update(done)
                if failed is not None:
                    failures.append(failed)
        else:
            futures = [executor.submit(_process_run_task, t) for t in tasks]
            results = {}
            failures = []
            for idx, f in enumerate(futures):
                try:
                    results[idx] = f.result()
                except BaseException as exc:  # noqa: BLE001
                    failures.append((idx, exc))
        if failures:
            raise min(failures, key=lambda f: f[0])[1]
        return [results[i] for i in range(len(tasks))]

    def _run_tasks_shm(self, tasks: list[ShardTask]) -> list:
        """The shm wave: tasks pin to slots round-robin, envs ship as ids."""
        slots = self._ensure_slots()
        futures = []
        for idx, task in enumerate(tasks):
            slot = idx % len(slots)
            sync, enc_env, enc_args, shipped = encode_env(
                self.interner, self._slot_known[slot], task.env, task.args
            )
            if shipped:
                self.shm_ships += 1
                self.array_bytes_shipped += shipped
            payload = (sync, task.expr, enc_env, enc_args)
            futures.append(slots[slot].submit(shm_run_task, payload))
        results: dict[int, object] = {}
        failures: list[tuple[int, BaseException]] = []
        for idx, f in enumerate(futures):
            try:
                results[idx] = f.result()
            except BaseException as exc:  # noqa: BLE001
                failures.append((idx, exc))
        if failures:
            raise min(failures, key=lambda f: f[0])[1]
        return [results[i] for i in range(len(tasks))]

    # -- chunk callables and slot broadcasts --------------------------------------

    def run_callables(self, fns: list) -> list:
        """Run plain callables, one result each, in order.

        Thread pools fan them across the pool threads -- this is how a
        driver-side flat fixpoint parallelizes a round's probe chunks (the
        chunks only *read* frozen indexes, so concurrent threads are safe).
        Other kinds run them inline: closures over driver state cannot cross
        a process boundary.
        """
        if not fns:
            return []
        if self.kind != "thread" or len(fns) == 1:
            return [fn() for fn in fns]
        executor = self._ensure()
        futures = [executor.submit(fn) for fn in fns]
        results = []
        failure: Optional[BaseException] = None
        for f in futures:
            try:
                results.append(f.result())
            except BaseException as exc:  # noqa: BLE001
                if failure is None:
                    failure = exc
                results.append(None)
        if failure is not None:
            raise failure
        return results

    def broadcast(self, fn, *args) -> list:
        """Run ``fn(*args)`` on every shm slot; results in slot order."""
        slots = self._ensure_slots()
        futures = [slot.submit(fn, *args) for slot in slots]
        return [f.result() for f in futures]

    def broadcast_slotted(self, fn, *args) -> list:
        """Run ``fn(*args, slot_index, slot_count)`` on every shm slot."""
        slots = self._ensure_slots()
        k = len(slots)
        futures = [slot.submit(fn, *args, i, k) for i, slot in enumerate(slots)]
        return [f.result() for f in futures]

    # -- maintenance --------------------------------------------------------------

    def worker_stats(self) -> list[VecStats]:
        """Per-worker vectorized counters (thread pools; empty for processes)."""
        return [w.stats.copy() for w in self._workers]

    def reset(self) -> None:
        """Drop every worker-side cache (and, for processes, the processes)."""
        for w in self._workers:
            w.reset()
        if self.kind == "process" and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._slots:
            for slot in self._slots:
                slot.shutdown(wait=True)
            self._slots = []
            self._slot_known = []

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for slot in self._slots:
            slot.shutdown(wait=True)
        self._slots = []
        self._slot_known = []
        self._workers = []
