"""The parallel evaluator: sharded plans, a worker pool, union combiners.

:class:`ParallelEvaluator` is the fourth evaluation backend of the engine.
It realises the paper's data-parallel reading of NRA as a measurable system
property: a query that distributes over union is evaluated on a hash
partition of its input -- one shard-local *vectorized* sub-plan per shard,
driven by the worker pool of :mod:`repro.engine.parallel.scheduler` -- and
recombined with a union combiner; a semi-naive evaluable fixpoint runs
parallel rounds in which the *frontier* is what gets sharded (and re-sharded
every round as it changes).  Everything else falls back to whole-set
evaluation on the **driver** -- the engine's own
:class:`~repro.engine.vectorized.VectorizedEvaluator`, shared so compile
caches, join indexes and the intern table are common across backends.

Exactness is the same contract the vectorized backend honours: sharding is
applied only where distributivity is a syntactic theorem
(:mod:`repro.engine.parallel.sharder`), the sharded fixpoint evaluates the
same delta terms the vectorized semi-naive loop does (their union over a
partition of the frontier equals their value on the whole frontier, because
delta terms are union-distributive in the frontier variable by
construction), and every unshardable or ill-shaped input takes the driver
path, so error behaviour matches the reference interpreter.  The
differential suite (``tests/property/test_backend_differential.py``) holds
all four backends to value-for-value agreement.

The evaluator is not itself thread-safe; the engine serializes calls behind
its lock (workers are internal to a call).  Results returned by workers are
re-interned into the driver's table by the driver thread, so no foreign
canonical representative ever leaks into engine state.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from ...nra.ast import Expr
from ...nra.errors import NRAEvalError
from ...nra.externals import EMPTY_SIGMA, Signature
from ...objects.values import PairVal, SetVal, Value
from ...obs.trace import TRACER
from ...recursion.iterators import log_iterations
from ..interning import intern_env
from ..vectorized import VectorizedEvaluator
from ..vectorized.compiler import match_join
from ..vectorized.flat import FlatLoop, FlatUnavailable, analyze_flat_terms
from ..vectorized.plan import PlanNode, leaf, node
from .partition import hash_partition, hash_partition_aligned
from .scheduler import ShardTask, WorkerPool
from .sharder import FixpointSpec, ShardSpec, analyze
from .shm import ShmFixpoint


@dataclass
class ParStats:
    """Counters describing what the parallel backend actually did."""

    shard_runs: int = 0        # runs executed shard-at-a-time
    join_runs: int = 0         # runs executed as co-partitioned equi-joins
    fixpoint_runs: int = 0     # runs executed as sharded semi-naive rounds
    fallback_runs: int = 0     # runs delegated whole to the driver
    batch_runs: int = 0        # run_many fan-outs
    batch_inputs: int = 0      # inputs fanned out across workers
    tasks: int = 0             # worker tasks dispatched
    shards: int = 0            # shards produced (incl. re-sharded frontiers)
    fixpoint_rounds: int = 0   # parallel semi-naive rounds executed
    frontier_reshards: int = 0 # frontier partitions (one per parallel round)
    flat_fixpoint_runs: int = 0  # fixpoints run on the flat-column path
    shm_ships: int = 0         # id-array payloads delivered to shm workers
    array_bytes_shipped: int = 0  # bytes of dense-id arrays across processes
    worker_compiles: int = 0   # subexpression compiles inside pool workers

    def copy(self) -> "ParStats":
        return ParStats(**{f: getattr(self, f) for f in self.__dataclass_fields__})

    def since(self, baseline: "ParStats") -> "ParStats":
        """Per-call view, mirroring :meth:`repro.engine.vectorized.batch.VecStats.since`."""
        return ParStats(
            **{f: getattr(self, f) - getattr(baseline, f)
               for f in self.__dataclass_fields__}
        )


class ParallelEvaluator:
    """Shard-at-a-time evaluation over a pool of isolated vectorized workers.

    Parameters
    ----------
    sigma:
        The external signature (workers get their own copy of the lookup).
    driver:
        The engine's vectorized evaluator: compiles shard templates for
        explain, evaluates fallbacks and fixpoint carriers, and owns the
        intern table all results are canonicalized into.
    workers:
        Pool size.  Worth raising beyond the core count when shard work
        blocks on external calls (the pool overlaps their latency even under
        the GIL); for CPU-bound shards the process pool with one worker per
        core is the scaling route.
    shards:
        Target shard count per wave (defaults to ``2 * workers`` so slightly
        skewed shards still keep every worker busy).
    pool:
        ``"thread"`` (default), ``"process"``, or ``"shm"`` (isolated
        processes fed dense-id arrays instead of pickled sets) -- see the
        scheduler module.
    """

    def __init__(
        self,
        sigma: Signature = EMPTY_SIGMA,
        driver: Optional[VectorizedEvaluator] = None,
        workers: int = 4,
        shards: Optional[int] = None,
        pool: str = "thread",
    ) -> None:
        self.driver = driver if driver is not None else VectorizedEvaluator(sigma)
        self.interner = self.driver.interner
        self.workers = workers
        self.shard_count = shards if shards is not None else 2 * workers
        if self.shard_count < 1:
            raise ValueError("shard count must be >= 1")
        self.pool = WorkerPool(
            sigma=sigma, workers=workers, kind=pool,
            interner=self.driver.interner,
        )
        self.stats = ParStats()
        self._specs: dict[Expr, Optional[ShardSpec]] = {}

    # -- analysis / explain -------------------------------------------------------

    def _spec(self, e: Expr) -> Optional[ShardSpec]:
        if e not in self._specs:
            self._specs[e] = analyze(e)
        return self._specs[e]

    def shard_plan(self, e: Expr) -> PlanNode:
        """The sharded operator tree (what ``explain_plan`` shows for this backend).

        Compiling the shard template through the driver also warms the
        compile cache ``prepare`` relies on.
        """
        spec = self._spec(e)
        w, k = self.workers, self.shard_count
        if spec is None:
            return node(
                "parallel",
                "fallback: not union-distributive, driver evaluates whole",
                self.driver.plan(e),
            )
        if spec.kind == "fixpoint":
            fx = spec.fixpoint
            shape = "log_loop" if fx.logarithmic else (
                "loop" if fx.loop_style else "sri-as-loop"
            )
            annotations: tuple[str, ...] = ("semi-naive", "reshard-per-round")
            if self.driver.ctx.use_flat and analyze_flat_terms(
                list(fx.delta_terms), fx.step_var, fx.delta_var, match_join
            ) is not None:
                annotations += ("flat-columns",)
            return node(
                "parallel-fixpoint",
                f"{shape}: frontier into <={k} shards, workers={w}",
                node(
                    "shard",
                    f"frontier {fx.delta_var!r} by structural hash",
                    self.driver.plan(fx.delta_union),
                ),
                leaf("combine-union", "derived = union of shard results"),
                annotations=annotations,
            )
        if spec.kind == "join":
            js = spec.join
            return node(
                "parallel",
                f"workers={w} pool={self.pool.kind}",
                node(
                    "shard",
                    f"aligned join {js.left_var!r} x {js.right_var!r}: both "
                    f"sides into <={k} shards by join-key hash",
                    self.driver.plan(spec.body),
                ),
                leaf("combine-union", f"union of <={k} shard results"),
                annotations=("co-partitioned",),
            )
        return node(
            "parallel",
            f"workers={w} pool={self.pool.kind}",
            node(
                "shard",
                f"{spec.kind} {spec.var!r} into <={k} shards by structural hash",
                self.driver.plan(spec.body),
            ),
            leaf("combine-union", f"union of <={k} shard results"),
        )

    def clear_caches(self) -> None:
        """Drop shard specs and every worker-side cache (driver cleared by owner)."""
        self._specs.clear()
        self.pool.reset()

    def _mirror_worker_compiles(self) -> None:
        """Fold worker-side compile counts into ``stats`` (stays monotone).

        Thread-pool workers compile shard templates on their own private
        evaluators; without this mirror, the session layer's differencing
        of ``Engine.vectorized_compiles()`` misses recompiles a mid-stream
        reroute triggers inside the pool.  Worker stats survive
        ``pool.reset()`` (the worker objects live as long as the pool), so
        assigning the sum is monotone; process/shm workers are invisible
        across the process boundary and contribute zero -- their compiles
        are deliberately dropped, never misattributed.
        """
        ws = self.pool.worker_stats()
        if ws:
            self.stats.worker_compiles = sum(s.compiled_exprs for s in ws)

    def _run_wave(self, tasks: list, kind: str) -> list:
        """One pool wave, with a driver-side span when tracing is on.

        The driver blocks on the wave, so timing it here attributes all
        worker activity to the driver's current span -- worker threads and
        processes never open spans of their own (see the span-correctness
        tests: merged or dropped, never misparented).
        """
        if TRACER.enabled:
            with TRACER.span("shard-wave", kind=kind, tasks=len(tasks)):
                return self.pool.run_tasks(tasks)
        return self.pool.run_tasks(tasks)

    def close(self) -> None:
        self.pool.close()

    # -- combining ----------------------------------------------------------------

    def _combine(self, results: list) -> Value:
        """Union the shard results (idempotence admits equal non-set scalars).

        A distributive body whose value does not depend on the sharded
        variable (a constant branch) yields the *same* value on every shard;
        the union combiner degenerates to that value.  Mixed or differing
        non-set results cannot arise from a well-typed distributive body and
        are reported as evaluation errors.
        """
        it = self.interner
        interned = [it.intern(r) for r in results]
        if len(interned) == 1:
            return interned[0]
        if all(isinstance(r, SetVal) for r in interned):
            out: Value = it.empty_set
            for r in interned:
                out = it.union(out, r)
            return out
        first = interned[0]
        if all(r is first for r in interned[1:]):
            return first
        raise NRAEvalError(
            "shard combiner: shards disagree on a non-set result "
            f"({[repr(r) for r in interned]})"
        )

    # -- evaluation ---------------------------------------------------------------

    def run(
        self,
        e: Expr,
        arg: Optional[Value] = None,
        env: Optional[dict] = None,
        shards: Optional[int] = None,
    ) -> Value:
        """Evaluate ``e``; ``shards`` overrides the per-wave shard target.

        The override is per-call plan input (the adaptive router sizes waves
        from its cardinality estimate); ``None`` keeps the constructor-time
        ``shard_count``.
        """
        try:
            return self._run(e, arg, env, shards)
        finally:
            # Shipping counters accrue on the pool (shm encoders live
            # there); mirror them so ``stats.since`` sees them per call.
            self.stats.shm_ships = self.pool.shm_ships
            self.stats.array_bytes_shipped = self.pool.array_bytes_shipped
            self._mirror_worker_compiles()

    def _run(
        self,
        e: Expr,
        arg: Optional[Value] = None,
        env: Optional[dict] = None,
        shards: Optional[int] = None,
    ) -> Value:
        shard_count = shards if shards is not None else self.shard_count
        env = intern_env(self.interner, env)
        spec = self._spec(e)
        if spec is None:
            self.stats.fallback_runs += 1
            return self.driver.run(e, arg=arg, env=env)
        if spec.kind == "fixpoint":
            return self._run_fixpoint(e, spec.fixpoint, arg, env, shard_count)
        if spec.kind == "join":
            return self._run_join(e, spec, arg, env, shard_count)
        if spec.kind == "arg":
            if arg is None:
                # The result would be a function denotation; the driver
                # raises the canonical error.
                self.stats.fallback_runs += 1
                return self.driver.run(e, arg=None, env=env)
            value = self.interner.intern(arg)
        else:
            if arg is not None:
                # An env-sharded template is not a function; driver raises.
                self.stats.fallback_runs += 1
                return self.driver.run(e, arg=arg, env=env)
            value = env.get(spec.var)
        if not isinstance(value, SetVal):
            # Unbound or non-set input: the driver's error paths are exact.
            self.stats.fallback_runs += 1
            return self.driver.run(e, arg=arg, env=env)
        shards = hash_partition(value, min(shard_count, len(value.elements) or 1))
        tasks = [
            ShardTask(spec.body, {**env, spec.var: shard}) for shard in shards
        ]
        results = self._run_wave(tasks, "shard")
        self.stats.shard_runs += 1
        self.stats.tasks += len(tasks)
        self.stats.shards += len(shards)
        return self._combine(results)

    def run_many(
        self,
        e: Expr,
        args: list,
        env: Optional[dict] = None,
    ) -> list[Value]:
        """Fan a batch of inputs out across the workers (order preserved).

        Each input is evaluated whole by one worker (shard-at-a-time *within*
        an input would shard-and-combine per input; across a batch, whole
        inputs are the natural unit), so a batch of B inputs keeps every
        worker busy as long as B >= workers.  Worker caches persist across
        batches: re-running an input on the worker it hashes to pays only
        re-application.
        """
        try:
            return self._run_many(e, args, env)
        finally:
            self.stats.shm_ships = self.pool.shm_ships
            self.stats.array_bytes_shipped = self.pool.array_bytes_shipped
            self._mirror_worker_compiles()

    def _run_many(
        self,
        e: Expr,
        args: list,
        env: Optional[dict] = None,
    ) -> list[Value]:
        env = intern_env(self.interner, env)
        values = [self.interner.intern(a) for a in args]
        if not values:
            return self.driver.run_many(e, [], env=env)
        groups: list[list[int]] = [[] for _ in range(min(self.workers, len(values)))]
        for i in range(len(values)):
            groups[i % len(groups)].append(i)
        tasks = [
            ShardTask(e, env, args=tuple(values[i] for i in group))
            for group in groups
        ]
        grouped = self._run_wave(tasks, "batch")
        self.stats.batch_runs += 1
        self.stats.batch_inputs += len(values)
        self.stats.tasks += len(tasks)
        out: list[Optional[Value]] = [None] * len(values)
        it = self.interner
        for group, results in zip(groups, grouped):
            for i, r in zip(group, results):
                out[i] = it.intern(r)
        return out  # type: ignore[return-value]

    # -- the co-partitioned equi-join ---------------------------------------------

    def _run_join(
        self,
        e: Expr,
        spec: ShardSpec,
        arg,
        env: dict,
        shard_count: Optional[int] = None,
    ) -> Value:
        """Shard-aligned build/probe: both join sides partitioned by key hash.

        Matching pairs hash to the same shard index, so worker ``i`` builds
        a hash index over the ``i``-th fraction of the right side only and
        probes it with the ``i``-th fraction of the left -- total index work
        is one pass over the right side however many workers run.  Left
        shards that came up empty are skipped (their join is empty); an
        empty left side short-circuits before the right side is touched,
        exactly like the vectorized backend's hash join.
        """
        js = spec.join
        it = self.interner
        if js.outer == "arg":
            if arg is None:
                return self._fallback(e, None, env)
            lval = it.intern(arg)
        else:
            if arg is not None:
                return self._fallback(e, arg, env)
            lval = env.get(js.left_var)
        rval = env.get(js.right_var)
        if not (isinstance(lval, SetVal) and isinstance(rval, SetVal)):
            return self._fallback(e, arg, env)
        if not lval.elements:
            return it.empty_set
        k = min(shard_count or self.shard_count, len(lval.elements))
        lkey = self._driver_eval(js.left_key, {})
        rkey = self._driver_eval(js.right_key, {})
        lshards = hash_partition_aligned(lval, k, lkey)
        rshards = hash_partition_aligned(rval, k, rkey)
        pairs = [(ls, rs) for ls, rs in zip(lshards, rshards) if ls.elements]
        if not pairs:  # pragma: no cover - lval nonempty implies pairs
            return it.empty_set
        tasks = [
            ShardTask(spec.body, {**env, js.left_var: ls, js.right_var: rs})
            for ls, rs in pairs
        ]
        results = self._run_wave(tasks, "join")
        self.stats.join_runs += 1
        self.stats.tasks += len(tasks)
        self.stats.shards += len(pairs)
        return self._combine(results)

    # -- the parallel semi-naive fixpoint -----------------------------------------

    def _driver_eval(self, expr: Expr, env: dict):
        return self.driver.compile(expr).fn(env)

    def _fallback(self, e: Expr, arg: Optional[Value], env: dict) -> Value:
        self.stats.fallback_runs += 1
        return self.driver.run(e, arg=arg, env=env)

    def _run_fixpoint(
        self,
        e: Expr,
        fix: FixpointSpec,
        arg: Optional[Value],
        env: dict,
        shard_count: Optional[int] = None,
    ) -> Value:
        """Semi-naive rounds with the frontier hash-partitioned every round.

        Mirrors :func:`repro.recursion.iterators.seminaive_iterate` exactly:
        round one applies the full step on the driver; every later round
        evaluates the delta terms -- with the accumulator bound whole and the
        frontier split into shards -- across the pool, unions the derived
        elements, and differences out the new frontier.  Ill-shaped inputs
        (non-pair iterator arguments, non-set carriers or start values) are
        delegated whole to the driver so error behaviour stays canonical.
        """
        it = self.interner
        env = dict(env)
        if fix.arg_var is not None:
            if arg is None:
                return self._fallback(e, None, env)
            env[fix.arg_var] = it.intern(arg)
        elif arg is not None:
            return self._fallback(e, arg, env)
        carrier = self._driver_eval(fix.carrier, env)
        if fix.loop_style:
            if not (isinstance(carrier, PairVal) and isinstance(carrier.fst, SetVal)):
                return self._fallback(e, arg, env)
            n = len(carrier.fst.elements)
            rounds = log_iterations(n) if fix.logarithmic else n
            start = carrier.snd
        else:
            if not isinstance(carrier, SetVal):
                return self._fallback(e, arg, env)
            rounds = len(carrier.elements)
            start = self._driver_eval(fix.seed, env)
        if not isinstance(start, SetVal):
            # The vectorized backend runs non-set accumulators through exact
            # full iteration; so do we, on the driver.
            return self._fallback(e, arg, env)
        if rounds <= 0:
            return start
        self.stats.fixpoint_runs += 1
        acc = self._driver_eval(fix.step_body, {**env, fix.step_var: start})
        if not isinstance(acc, SetVal):
            raise NRAEvalError(f"iterator step: expected a set, got {acc!r}")
        delta = it.difference(acc, start)
        done = 1
        if done < rounds and delta.elements:
            flat = self._try_flat_fixpoint(fix, env, acc, delta, rounds, done)
            if flat is not None:
                return flat
        while done < rounds and len(delta.elements):
            shards = hash_partition(
                delta, min(shard_count or self.shard_count, len(delta.elements))
            )
            base = {**env, fix.step_var: acc}
            tasks = [
                ShardTask(fix.delta_union, {**base, fix.delta_var: shard})
                for shard in shards
            ]
            results = self._run_wave(tasks, "fixpoint-round")
            self.stats.fixpoint_rounds += 1
            self.stats.frontier_reshards += 1
            self.stats.tasks += len(tasks)
            self.stats.shards += len(shards)
            derived: Value = it.empty_set
            for r in results:
                rv = it.intern(r)
                if not isinstance(rv, SetVal):
                    raise NRAEvalError(
                        f"iterator step: expected a set, got {rv!r}"
                    )
                derived = it.union(derived, rv)
            nxt = it.union(acc, derived)
            delta = it.difference(nxt, acc)
            acc = nxt
            done += 1
        return acc

    def _try_flat_fixpoint(
        self,
        fix: FixpointSpec,
        env: dict,
        acc: SetVal,
        delta: SetVal,
        rounds: int,
        done: int,
    ) -> Optional[Value]:
        """Run the remaining rounds on dense-id arrays, or ``None`` to decline.

        The frontier terms are lowered exactly as the vectorized backend's
        semi-naive loop lowers them; what changes is who executes a round's
        probe chunks.  Thread pools fan the chunk *callables* across the pool
        (the indexes are frozen during a round, so the readers don't race and
        -- because the hot loops are integer probes, not object protocol
        calls -- they block each other far less than the ``SetVal`` path
        did).  Shared-memory pools mirror the loop's code state into the
        worker processes once, then exchange only raw frontier/derived
        arrays per round.  Process pools (and one-worker pools) keep the loop
        driver-local: that already beats shipping per-round pickles.  Any
        ineligible shape declines *before* state is touched, so the caller's
        object rounds proceed unchanged.
        """
        driver = self.driver
        if not (driver.ctx.use_flat and fix.delta_terms):
            return None
        specs = analyze_flat_terms(
            list(fix.delta_terms), fix.step_var, fix.delta_var, match_join
        )
        if specs is None:
            return None
        it = self.interner
        try:
            inv_vals: list = []
            for spec in specs:
                if spec == "copy":
                    inv_vals.append((None, None))
                    continue
                lval = rval = None
                if spec.left == "inv":
                    lval = self._driver_eval(spec.left_src, env)
                    if not isinstance(lval, SetVal):
                        raise FlatUnavailable("invariant source is not a set")
                    if not lval.elements:
                        # The object join never evaluates its right side
                        # under an empty left; preserve that order.
                        inv_vals.append((lval, None))
                        continue
                if spec.right == "inv":
                    rval = self._driver_eval(spec.right_src, env)
                    if not isinstance(rval, SetVal):
                        raise FlatUnavailable("invariant source is not a set")
                inv_vals.append((lval, rval))
            loop = FlatLoop(it, driver.stats, specs, chunks=self.workers)
            loop.setup(acc, delta, inv_vals)
        except FlatUnavailable:
            driver.stats.flat_fallbacks += 1
            return None
        self.stats.flat_fixpoint_runs += 1
        driver.stats.flat_fixpoints += 1
        shm: Optional[ShmFixpoint] = None
        if self.pool.kind == "shm":
            shm = ShmFixpoint(self.pool, loop)
            if not shm.setup():
                shm = None  # deep accessor paths: stay driver-local
        use_threads = self.pool.kind == "thread" and self.workers > 1
        trace_on = TRACER.enabled  # captured once per fixpoint
        try:
            while done < rounds and loop.frontier:
                if trace_on:
                    frontier = loop.frontier_size
                    rt0 = perf_counter()
                if shm is not None:
                    shm.run_round()
                    self.stats.tasks += self.workers
                    self.stats.shards += self.workers
                elif use_threads:
                    tasks = loop.round_tasks()
                    loop.commit(self.pool.run_callables(tasks))
                    self.stats.tasks += len(tasks)
                    self.stats.shards += len(tasks)
                else:
                    loop.run_round()
                if trace_on:
                    TRACER.event(
                        "fixpoint-round",
                        seconds=perf_counter() - rt0,
                        round=done, frontier=frontier,
                        flat=True, pool=self.pool.kind,
                    )
                self.stats.fixpoint_rounds += 1
                if shm is not None or use_threads:
                    self.stats.frontier_reshards += 1
                done += 1
        finally:
            if shm is not None:
                shm.close()
        return loop.materialize()
