"""The shared-memory process path: id arrays across address spaces.

The process pool of :mod:`repro.engine.parallel.scheduler` isolates workers
perfectly but ships ``SetVal`` pickles -- every round of a sharded fixpoint
re-serializes objects the worker has already seen.  This module replaces the
payload, not the isolation: with the flat-column representation of
:mod:`repro.engine.vectorized.flat`, a shard is an ``array('q')`` of packed
dense-id codes, and what crosses the process boundary is

* **one-time intern-dictionary syncs**: a worker that receives a dense id it
  has not seen gets the ``(id, value)`` pair exactly once; every later
  reference to that id is eight bytes (:func:`encode_env` /
  :func:`decode_env` below, used by the generic ``"shm"`` task path);
* **raw code arrays**: the fixpoint protocol
  (:func:`shm_loop_setup` / :func:`shm_loop_round`, coordinated by
  :class:`ShmFixpoint`) broadcasts each round's frontier as one buffer --
  inline when small, a :class:`multiprocessing.shared_memory.SharedMemory`
  segment above :data:`SHM_THRESHOLD` -- and workers return derived codes
  the same way.  No ``SetVal`` is pickled after setup.

Workers never hold interner metadata for the fixpoint: eligibility is
restricted to depth-1 accessor paths, so key and output extraction is pure
``(code >> 32, code & mask)`` arithmetic (:class:`CodeLoop`), and frontier
shard assignment is recomputed worker-side from the broadcast array with
:func:`~repro.engine.parallel.partition.mix64` -- deterministic in every
address space, nothing extra on the wire.

Segment ownership is single-writer: the driver creates a segment, every
slot attaches read-only for the duration of one wave, and the driver closes
and unlinks it as soon as the wave drains -- workers only ever ``close()``
their attachment, so the resource tracker sees one register/unlink pair per
segment.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Optional

from ...nra.errors import NRAEvalError
from ...objects.values import SetVal, Value
from ..vectorized import VectorizedEvaluator
from ..vectorized.compiler import VFunction
from ..vectorized.flat import CODE_BITS, CODE_MASK
from .partition import partition_codes

#: Payloads at or below this many bytes ship inline (pickled with the task);
#: larger arrays go through one SharedMemory segment all workers read.
SHM_THRESHOLD = 1 << 16


# ---------------------------------------------------------------------------
# Blob transport
# ---------------------------------------------------------------------------

def pack_blob(data: bytes) -> tuple[tuple, Optional[shared_memory.SharedMemory]]:
    """Wrap ``data`` for shipping; returns ``(blob, segment_or_None)``.

    The caller owns a returned segment and must ``close()`` + ``unlink()``
    it once the wave that references the blob has drained.
    """
    if len(data) > SHM_THRESHOLD:
        seg = shared_memory.SharedMemory(create=True, size=len(data))
        seg.buf[: len(data)] = data
        return ("seg", seg.name, len(data)), seg
    return ("raw", data), None


def open_blob(blob: tuple) -> bytes:
    """Worker side of :func:`pack_blob`: copy the payload out, detach.

    Attaching does not register with the resource tracker on the Pythons we
    support (3.11+ registers at *create* only), so a plain ``close`` is the
    whole cleanup -- the driver, as creator, is the single owner that
    unlinks after the wave.
    """
    if blob[0] == "raw":
        return blob[1]
    seg = shared_memory.SharedMemory(name=blob[1])
    try:
        return bytes(seg.buf[: blob[2]])
    finally:
        seg.close()


def _codes_of(blob: tuple) -> array:
    codes = array("q")
    codes.frombytes(open_blob(blob))
    return codes


# ---------------------------------------------------------------------------
# Environment encoding (the generic shm task path)
# ---------------------------------------------------------------------------

def encode_env(interner, known: set, env: dict, args):
    """Encode a task environment as dense-id references plus a sync list.

    ``known`` is the driver's record of ids this worker has already been
    sent; it is updated in place, which is what makes the dictionary sync
    one-time.  Interned sets become ``("ids", bytes)`` columns; other
    interned values become ``("ref", id)``; anything the interner does not
    know (or a ``None`` interner) pickles raw, preserving process-pool
    behaviour.  Returns ``(sync, enc_env, enc_args, ids_shipped_bytes)``.
    """
    sync: list = []

    def need(did: int) -> None:
        if did not in known:
            known.add(did)
            sync.append((did, interner.value_of(did)))

    shipped = 0

    def enc(v):
        nonlocal shipped
        if interner is None or not isinstance(v, Value):
            return ("raw", v)
        if isinstance(v, SetVal) and v.elements:
            # Shards are canonical *subsequences*, not interned sets, so the
            # column is built from the (interned) elements directly -- no
            # per-shard interner state.
            try:
                ids = array("q", [interner.dense_id(e) for e in v.elements])
            except KeyError:
                return ("raw", v)
            for i in ids:
                need(i)
            data = ids.tobytes()
            shipped += len(data)
            return ("ids", data)
        try:
            did = interner.dense_id(v)
        except KeyError:
            return ("raw", v)
        need(did)
        return ("ref", did)

    enc_env = {name: enc(v) for name, v in env.items()}
    enc_args = None if args is None else tuple(enc(a) for a in args)
    return sync, enc_env, enc_args, shipped


# ---------------------------------------------------------------------------
# Worker state (one per "shm" pool slot; each slot is its own process)
# ---------------------------------------------------------------------------

_EVALUATOR: Optional[VectorizedEvaluator] = None
_VALUES: dict[int, Value] = {}      # driver dense id -> worker-interned value
_LOOPS: dict[str, "CodeLoop"] = {}  # fixpoint token -> loop state


def shm_init(sigma) -> None:
    """Process-pool initializer for a shared-memory slot."""
    global _EVALUATOR
    _EVALUATOR = VectorizedEvaluator(sigma)
    _VALUES.clear()
    _LOOPS.clear()


def _apply_sync(sync: list) -> None:
    it = _EVALUATOR.interner
    for did, v in sync:
        _VALUES[did] = it.intern(v)


def _decode(enc):
    tag = enc[0]
    if tag == "raw":
        v = enc[1]
        return _EVALUATOR.interner.intern(v) if isinstance(v, Value) else v
    if tag == "ref":
        return _VALUES[enc[1]]
    ids = array("q")
    ids.frombytes(enc[1])
    # Driver ids arrive in the driver's canonical element order; canonical
    # order is structural, so the re-interned elements are already sorted.
    return _EVALUATOR.interner.canonical_set(_VALUES[i] for i in ids)


def shm_run_task(payload):
    """Generic task: ``(sync, expr, enc_env, enc_args)`` -> value(s)."""
    sync, expr, enc_env, enc_args = payload
    ev = _EVALUATOR
    if ev is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("shm worker used before initialization")
    _apply_sync(sync)
    env = {name: _decode(e) for name, e in enc_env.items()}
    d = ev.compile(expr).fn(env)
    if enc_args is None:
        if isinstance(d, VFunction):
            raise NRAEvalError(
                "shard task produced a function denotation; expected a value"
            )
        return d
    if not isinstance(d, VFunction):
        raise NRAEvalError(f"run_many: expected a function expression, got {d!r}")
    return [d(_decode(a)) for a in enc_args]


# ---------------------------------------------------------------------------
# The interner-free fixpoint core
# ---------------------------------------------------------------------------

class _CodeTerm:
    """One flat join term over packed codes, depth-1 selectors only."""

    __slots__ = (
        "left", "right", "lk", "rk", "oa_left", "oa", "ob_left", "ob",
        "inv_rows", "index",
    )

    def __init__(self, spec: tuple, inv_rows, inv_index):
        (self.left, self.right, self.lk, self.rk,
         self.oa_left, self.oa, self.ob_left, self.ob) = spec
        self.inv_rows = inv_rows or []
        self.index: dict[int, list] = dict(inv_index) if inv_index else {}

    def _extend_index(self, codes: array) -> None:
        rk_f = self.rk == "f"
        oa = None if self.oa_left else self.oa == "f"
        ob = None if self.ob_left else self.ob == "f"
        setdefault = self.index.setdefault
        for c in codes:
            f = c >> CODE_BITS
            s = c & CODE_MASK
            ra = 0 if oa is None else (f if oa else s)
            rb = 0 if ob is None else (f if ob else s)
            setdefault(f if rk_f else s, []).append((ra, rb))


class CodeLoop:
    """A worker's half of the shared-memory flat fixpoint.

    Holds the per-term indexes and the accumulator *as codes* -- no interner,
    no ``Value`` objects.  The driver keeps the dedup state and decides
    convergence; the worker only derives: each round it appends the broadcast
    frontier to its accumulator-side indexes, rebuilds its frontier-side
    indexes, and probes its own share of the rows (frontier shards by
    ``mix64``, accumulator and invariant rows by stride).
    """

    def __init__(self, specs: list[tuple], inv_rows: list, inv_index: list,
                 acc_codes: array):
        self._terms = [
            _CodeTerm(spec, rows, index)
            for spec, rows, index in zip(specs, inv_rows, inv_index)
        ]
        self._acc = acc_codes
        for t in self._terms:
            if t.right == "acc":
                t._extend_index(acc_codes)

    def round(self, frontier: array, slot: int, k: int) -> array:
        """Derive one round's codes for shard ``slot`` of ``k``."""
        for t in self._terms:
            if t.right == "acc":
                t._extend_index(frontier)
            elif t.right == "delta":
                t.index = {}
                t._extend_index(frontier)
        self._acc.extend(frontier)
        mine = partition_codes(frontier, k)[slot] if k > 1 else frontier
        out: set[int] = set()
        add = out.add
        for t in self._terms:
            if t.left == "inv":
                rows = t.inv_rows
                get = t.index.get
                a_left, b_left = t.oa_left, t.ob_left
                for j in range(slot, len(rows), k):
                    lk, la, lb = rows[j]
                    ms = get(lk)
                    if ms:
                        for ra, rb in ms:
                            add(((la if a_left else ra) << CODE_BITS)
                                | (lb if b_left else rb))
                continue
            codes = mine if t.left == "delta" else self._acc
            stride = 1 if t.left == "delta" else k
            start = 0 if t.left == "delta" else slot
            lk_f = t.lk == "f"
            oa_f, ob_f = t.oa == "f", t.ob == "f"
            a_left, b_left = t.oa_left, t.ob_left
            get = t.index.get
            for j in range(start, len(codes), stride):
                c = codes[j]
                f = c >> CODE_BITS
                s = c & CODE_MASK
                ms = get(f if lk_f else s)
                if ms:
                    la = (f if oa_f else s) if a_left else 0
                    lb = (f if ob_f else s) if b_left else 0
                    for ra, rb in ms:
                        add(((la if a_left else ra) << CODE_BITS)
                            | (lb if b_left else rb))
        return array("q", sorted(out))


def shm_loop_setup(token: str, specs, inv_rows, inv_index, acc_blob) -> bool:
    _LOOPS[token] = CodeLoop(specs, inv_rows, inv_index, _codes_of(acc_blob))
    return True


def shm_loop_round(token: str, frontier_blob, slot: int, k: int) -> bytes:
    return _LOOPS[token].round(_codes_of(frontier_blob), slot, k).tobytes()


def shm_loop_drop(token: str) -> None:
    _LOOPS.pop(token, None)


# ---------------------------------------------------------------------------
# The driver-side coordinator
# ---------------------------------------------------------------------------

def shm_term_payloads(loop) -> Optional[tuple[list, list, list]]:
    """Serialize a :class:`~repro.engine.vectorized.flat.FlatLoop`'s terms.

    Returns ``(specs, inv_rows, inv_index)`` aligned lists, or ``None`` when
    any frontier/accumulator-side path is deeper than one step -- those rows
    need the driver's pair-part columns, so the loop stays driver-local.
    Invariant sides are exempt: their rows and indexes are precomputed here,
    whatever their depth.
    """
    specs: list[tuple] = []
    inv_rows: list = []
    inv_index: list = []
    for t in loop._terms:
        spec = t.spec
        for kind, path in (
            (spec.left, spec.lkey),
            (spec.right, spec.rkey),
            (spec.left if t.a_left else spec.right, spec.out_a[1]),
            (spec.left if t.b_left else spec.right, spec.out_b[1]),
        ):
            if kind != "inv" and len(path) != 1:
                return None
        specs.append((
            spec.left, spec.right,
            spec.lkey[0] if spec.left != "inv" else "",
            spec.rkey[0] if spec.right != "inv" else "",
            t.a_left, spec.out_a[1][0] if spec.out_a[1] else "",
            t.b_left, spec.out_b[1][0] if spec.out_b[1] else "",
        ))
        inv_rows.append(t.inv_rows if spec.left == "inv" else None)
        inv_index.append(t.index if spec.right == "inv" else None)
    return specs, inv_rows, inv_index


class ShmFixpoint:
    """Drive one flat fixpoint across the shared-memory slots.

    The driver-side :class:`FlatLoop` keeps the authoritative accumulator and
    dedup state (its ``commit`` is reused verbatim); workers hold mirrored
    code state and do the probing.  Per round exactly one frontier array goes
    out (one segment, every slot reads it) and one derived array comes back
    per slot.
    """

    _tokens = 0

    def __init__(self, pool, loop) -> None:
        self.pool = pool
        self.loop = loop
        ShmFixpoint._tokens += 1
        self.token = f"fix-{ShmFixpoint._tokens}"

    def setup(self) -> bool:
        """Ship term state and the base accumulator; False if ineligible."""
        payloads = shm_term_payloads(self.loop)
        if payloads is None:
            return False
        specs, inv_rows, inv_index = payloads
        # Base = accumulator minus the live frontier: the first round's
        # broadcast re-appends the frontier on every worker, mirroring the
        # driver loop's commit order.
        fr = set(self.loop.frontier_codes())
        data = array(
            "q", (c for c in self.loop.acc_codes_array() if c not in fr)
        ).tobytes()
        blob, seg = pack_blob(data)
        try:
            self.pool.broadcast(
                shm_loop_setup, self.token, specs, inv_rows, inv_index, blob
            )
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()
        slots = self.pool.workers
        self.pool.shm_ships += slots
        self.pool.array_bytes_shipped += (
            len(data) if seg is not None else len(data) * slots
        )
        return True

    def run_round(self) -> None:
        loop = self.loop
        data = loop.frontier_codes().tobytes()
        blob, seg = pack_blob(data)
        try:
            results = self.pool.broadcast_slotted(
                shm_loop_round, self.token, blob
            )
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()
        slots = self.pool.workers
        derived = []
        returned = 0
        for chunk in results:
            got: set[int] = set()
            codes = array("q")
            codes.frombytes(chunk)
            got.update(codes)
            returned += len(chunk)
            derived.append(got)
        loop.commit(derived)
        self.pool.shm_ships += 2 * slots
        self.pool.array_bytes_shipped += returned + (
            len(data) if seg is not None else len(data) * slots
        )

    def close(self) -> None:
        try:
            self.pool.broadcast(shm_loop_drop, self.token)
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
