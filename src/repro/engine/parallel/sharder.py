"""Shard-plan analysis: which NRA queries may be evaluated shard-at-a-time.

The paper's central claim is that NRA queries are evaluable by *data-parallel
machines* (NC on a PRAM); the syntactic handle this module provides is
**union distributivity**.  A query ``q`` with ``q(A U B) = q(A) U q(B)`` can
be evaluated on a hash-partition of its input and recombined with a union
combiner -- the partition is the paper's processor assignment, the combiner
the log-depth union tree.  Distributivity is decided on a syntactic fragment
where it is a theorem (not sampled, not approximate), mirroring how the
vectorized compiler decides semi-naive evaluation:

* the sharded variable itself (``q = id``),
* unions of distributive operands (idempotence also admits operands that do
  not mention the variable at all: constants satisfy ``C = C U C``),
* ``ext(f)(src)`` with ``src`` distributive and the variable not free in
  ``f`` (``ext`` distributes over union unconditionally),
* conditionals whose condition ignores the variable and whose branches are
  distributive.

Everything else -- in particular *bilinear* occurrences such as ``v o v``,
where correctness would need all cross-shard pairs -- is rejected, and the
parallel backend falls back to whole-set vectorized evaluation.

Two further shapes are recognised:

* a **fixpoint**: ``loop``/``log_loop`` applications (and ``sri``/``esr``
  inserts that are iterations in disguise) whose step the inflationary
  analysis of :mod:`repro.engine.rewrite` proves semi-naive evaluable.  Here
  the *frontier* is what gets sharded -- the delta terms produced by
  ``_delta_terms`` are union-distributive in the frontier variable by
  construction -- and re-sharded every round as the frontier changes.
* an engine-style **applied query** ``Lambda(x, body)``: the argument is the
  sharded set when ``body`` distributes over unions of ``x``.  For the
  query-service layer, whose templates keep collections as *free* variables
  bound through the environment, the analysis instead looks for a free
  variable the expression distributes over and shards its binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...nra import ast
from ...nra.ast import Expr, free_variables, fresh_name
from ..rewrite import insert_as_step, is_inflationary_step
# The frontier decomposition is shared with the vectorized compiler: the
# delta terms it emits are exactly the union-distributive rounds the
# parallel fixpoint shards.
from ..vectorized.compiler import _delta_terms


def distributes_over_union(e: Expr, var: str) -> bool:
    """True iff ``e[var := A U B] = e[var := A] U e[var := B]`` syntactically.

    Sound and incomplete: every accepted expression distributes (each case is
    an algebraic theorem of the pure object language, using idempotence for
    the variable-free operands); rejection only costs parallelism, never
    correctness.
    """
    if var not in free_variables(e):
        # Constants under a union combiner: C U ... U C = C by idempotence.
        return True
    if isinstance(e, ast.Var):
        return e.name == var
    if isinstance(e, ast.Union):
        return distributes_over_union(e.left, var) and distributes_over_union(
            e.right, var
        )
    if isinstance(e, ast.Apply) and isinstance(e.func, ast.Ext):
        return var not in free_variables(e.func) and distributes_over_union(
            e.arg, var
        )
    if isinstance(e, ast.If):
        return (
            var not in free_variables(e.cond)
            and distributes_over_union(e.then, var)
            and distributes_over_union(e.orelse, var)
        )
    return False


@dataclass(frozen=True)
class FixpointSpec:
    """A loop the parallel backend runs as sharded semi-naive rounds."""

    #: The lambda parameter when the fixpoint sits under ``Lambda(x, ...)``
    #: (engine-style applied query); ``None`` for bare session templates.
    arg_var: Optional[str]
    #: ``True`` for ``log_loop`` (``ceil(log2(n+1))`` rounds), ``False`` for
    #: ``loop``/``sri``/``esr`` (``n`` rounds).
    logarithmic: bool
    #: ``True`` when the carrier expression is the ``Pair(card, start)`` of a
    #: loop application; ``False`` when it is the argument set of an
    #: ``sri``/``esr`` application (rounds = its cardinality).
    loop_style: bool
    #: Evaluated by the driver to obtain rounds and the start value: the
    #: ``Pair(card, start)`` argument for loops, the argument set for ``sri``.
    carrier: Expr
    #: The seed expression of an ``sri``/``esr`` (start value); ``None`` for
    #: loops (whose start is the carrier pair's second component).
    seed: Optional[Expr]
    #: The step's accumulator variable and its body (the full first round).
    step_var: str
    step_body: Expr
    #: The frontier variable and the union of the step's delta terms: one
    #: sharded evaluation of ``delta_union`` with ``step_var`` bound to the
    #: accumulator and ``delta_var`` to a frontier shard is one worker task.
    delta_var: str
    delta_union: Expr
    #: The same delta terms before union-folding, in evaluation order: the
    #: flat-column fixpoint lowers these term-by-term
    #: (:func:`repro.engine.vectorized.flat.analyze_flat_terms`).
    delta_terms: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join over two named relations, co-partitioned by join key.

    Both sides are hash-partitioned with the *same* shard count by their
    respective key expressions, so matching pairs land at the same shard
    index and worker ``i`` builds and probes only its aligned fraction of
    the right-side index -- total index work stays ``O(|right|)`` instead of
    every worker indexing the whole right side.
    """

    #: Whether the left side is the applied argument (``"arg"``) or an
    #: environment binding (``"env"``).
    outer: str
    left_var: str
    right_var: str
    #: Key extractors as unary lambdas (closed but for their parameter), so
    #: the driver can evaluate them per element while partitioning.
    left_key: Expr
    right_key: Expr


@dataclass(frozen=True)
class ShardSpec:
    """How one optimized expression is executed shard-at-a-time."""

    #: ``"arg"`` -- shard the applied argument of a ``Lambda``;
    #: ``"env"`` -- shard the environment binding of a free variable;
    #: ``"join"`` -- co-partition both sides of an equi-join by join key;
    #: ``"fixpoint"`` -- run sharded semi-naive rounds.
    kind: str
    #: The sharded variable (lambda parameter or free variable); for
    #: fixpoints, the step's accumulator variable; for joins, the left side.
    var: str
    #: The expression each worker evaluates with the sharded variable(s)
    #: bound through the environment; ``None`` for fixpoints.
    body: Optional[Expr] = None
    fixpoint: Optional[FixpointSpec] = None
    join: Optional[JoinSpec] = None


def _match_fixpoint(e: Expr, arg_var: Optional[str]) -> Optional[ShardSpec]:
    """Recognise loop/sri applications with a semi-naive evaluable step."""
    if not isinstance(e, ast.Apply):
        return None
    func, carrier = e.func, e.arg
    if isinstance(func, (ast.Loop, ast.LogLoop)):
        step = func.step
        loop_style = True
        logarithmic = isinstance(func, ast.LogLoop)
        seed: Optional[Expr] = None
    elif isinstance(func, (ast.Sri, ast.Esr)):
        step = insert_as_step(func.insert)
        if step is None:
            return None
        loop_style = False
        logarithmic = False
        seed = func.seed
    else:
        return None
    if not (isinstance(step, ast.Lambda) and is_inflationary_step(step)):
        return None
    dv = fresh_name("shard_delta")
    terms = _delta_terms(step.body, step.var, dv)
    if not terms:
        return None
    delta_union: Expr = terms[0]
    for t in terms[1:]:
        delta_union = ast.Union(delta_union, t)
    return ShardSpec(
        kind="fixpoint",
        var=step.var,
        fixpoint=FixpointSpec(
            arg_var=arg_var,
            logarithmic=logarithmic,
            loop_style=loop_style,
            carrier=carrier,
            seed=seed,
            step_var=step.var,
            step_body=step.body,
            delta_var=dv,
            delta_union=delta_union,
            delta_terms=tuple(terms),
        ),
    )


def _match_aligned_join(e: Expr, arg_var: Optional[str]) -> Optional[ShardSpec]:
    """Recognise ``ext(\\x. ext(\\y. if k1(x) = k2(y) then {out} else {})(B))(A)``
    with ``A``/``B`` distinct named relations and pure per-side keys.

    ``A`` is either the applied argument (``arg_var``) or a free variable;
    ``B`` must be a different free variable.  The keys must be functions of
    their own element alone (no environment capture), so the driver can
    evaluate them while partitioning and alignment is well defined.
    """
    if not (
        isinstance(e, ast.Apply)
        and isinstance(e.func, ast.Ext)
        and isinstance(e.func.func, ast.Lambda)
        and isinstance(e.arg, ast.Var)
    ):
        return None
    outer_lam = e.func.func
    left_var = e.arg.name
    body = outer_lam.body
    if not (
        isinstance(body, ast.Apply)
        and isinstance(body.func, ast.Ext)
        and isinstance(body.func.func, ast.Lambda)
        and isinstance(body.arg, ast.Var)
    ):
        return None
    inner_lam = body.func.func
    right_var = body.arg.name
    if right_var in (left_var, outer_lam.var) or inner_lam.var == outer_lam.var:
        return None
    cond_body = inner_lam.body
    if not (
        isinstance(cond_body, ast.If)
        and isinstance(cond_body.cond, ast.Eq)
        and isinstance(cond_body.then, ast.Singleton)
        and isinstance(cond_body.orelse, ast.EmptySet)
    ):
        return None
    # The join body may mention the element variables and the environment,
    # but never the relation variables themselves: workers see only their
    # shards of those, so an output (or key) reading the whole relation
    # would silently shrink under sharding.
    if {left_var, right_var} & free_variables(inner_lam.body):
        return None
    a, b = cond_body.cond.left, cond_body.cond.right
    fa, fb = free_variables(a), free_variables(b)
    lv, rv = outer_lam.var, inner_lam.var
    if fa == {lv} and fb == {rv}:
        lkey, rkey = a, b
    elif fb == {lv} and fa == {rv}:
        lkey, rkey = b, a
    else:
        return None
    if arg_var is not None and left_var != arg_var:
        # A join whose left side is a free variable under a lambda would
        # need the lambda argument bound as well; keep the shapes disjoint.
        return None
    outer = "arg" if arg_var is not None else "env"
    return ShardSpec(
        kind="join",
        var=left_var,
        body=e,
        join=JoinSpec(
            outer=outer,
            left_var=left_var,
            right_var=right_var,
            left_key=ast.Lambda(lv, outer_lam.var_type, lkey),
            right_key=ast.Lambda(rv, inner_lam.var_type, rkey),
        ),
    )


def analyze(e: Expr) -> Optional[ShardSpec]:
    """The shard plan for an optimized expression, or ``None`` (fall back).

    Tried in order: a fixpoint (bare or under a top-level lambda), a
    co-partitioned equi-join, the applied argument of a top-level lambda,
    then -- for the bare templates of the query-service layer -- the
    alphabetically first free variable the expression distributes over
    (deterministic choice, so plans are stable across runs and engines).
    """
    if isinstance(e, ast.Lambda):
        fix = _match_fixpoint(e.body, e.var)
        if fix is not None:
            return fix
        join = _match_aligned_join(e.body, e.var)
        if join is not None:
            return join
        if distributes_over_union(e.body, e.var):
            return ShardSpec(kind="arg", var=e.var, body=e.body)
        return None
    if isinstance(e, ast.Ext):
        # A bare ``ext(f)`` in function position is distributive by
        # definition: name the argument and shard it.
        x = fresh_name("shard_arg")
        return ShardSpec(kind="arg", var=x, body=ast.Apply(e, ast.Var(x)))
    fix = _match_fixpoint(e, None)
    if fix is not None:
        return fix
    join = _match_aligned_join(e, None)
    if join is not None:
        return join
    for var in sorted(free_variables(e)):
        if distributes_over_union(e, var):
            return ShardSpec(kind="env", var=var, body=e)
    return None
