"""Hash-sharding of canonical set values.

The parallel backend partitions a set into *shards* -- disjoint canonical
subsets whose union is the original set -- and evaluates a shard-local plan
on each.  Partitioning must be

* **deterministic**: the same value always lands in the same shard, whatever
  the interpreter's randomized string hashing does (``PYTHONHASHSEED``) and
  whether the shard is processed by a thread or shipped to another process --
  shard assignment is part of the observable execution plan, and the tests
  pin it;
* **structural**: shards are computed from the value itself, so two engines
  (or a thread worker and a process worker) agree without sharing state;
* **cheap to re-apply**: the semi-naive fixpoint re-shards every round's
  frontier, so a shard is a subsequence of a canonical element tuple and is
  built without re-sorting (a subsequence of a canonical sequence is
  canonical).

:func:`structural_hash` is an FNV-1a walk over the value structure mirroring
:func:`repro.objects.values.sort_key` (same traversal, numeric digest).  It
is *not* Python's ``hash`` -- equal values get equal digests in every
process.
"""

from __future__ import annotations

from array import array
from typing import Callable, Optional

from ...objects.values import BaseVal, BoolVal, PairVal, SetVal, UnitVal, Value

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _mix(h: int, n: int) -> int:
    return ((h ^ (n & _MASK)) * _FNV_PRIME) & _MASK


def structural_hash(v: Value) -> int:
    """A deterministic 64-bit digest of a complex object value.

    Independent of ``PYTHONHASHSEED``, interning, and process identity: equal
    values (in the canonical-form sense of :mod:`repro.objects.values`) have
    equal digests everywhere.  Used for shard assignment only -- collisions
    merely skew shard sizes, they never affect results.
    """
    if isinstance(v, UnitVal):
        return _mix(_FNV_OFFSET, 1)
    if isinstance(v, BoolVal):
        return _mix(_mix(_FNV_OFFSET, 2), 1 if v.value else 0)
    if isinstance(v, BaseVal):
        if isinstance(v.value, int):
            return _mix(_mix(_FNV_OFFSET, 3), v.value)
        h = _mix(_FNV_OFFSET, 4)
        for b in v.value.encode("utf-8"):
            h = _mix(h, b)
        return h
    if isinstance(v, PairVal):
        h = _mix(_FNV_OFFSET, 5)
        h = _mix(h, structural_hash(v.fst))
        return _mix(h, structural_hash(v.snd))
    if isinstance(v, SetVal):
        h = _mix(_FNV_OFFSET, 6)
        for e in v.elements:
            h = _mix(h, structural_hash(e))
        return h
    raise TypeError(f"not a complex object value: {v!r}")


def mix64(x: int) -> int:
    """A splitmix64-style finalizer over a packed dense-id code.

    The flat-column fixpoint shards *codes* -- the 64-bit packed
    ``(fst_id << 32) | snd_id`` rows of :mod:`repro.engine.vectorized.flat`
    -- not values, so shard assignment must scramble raw integers whose low
    bits are one dense id.  Deterministic across processes by construction
    (pure integer arithmetic); shared-memory workers compute their own
    assignment from a broadcast frontier with nothing extra on the wire.
    """
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def partition_codes(codes, k: int) -> list[array]:
    """Partition packed codes into exactly ``k`` buckets by :func:`mix64`.

    The flat analogue of :func:`hash_partition_aligned`: positions matter
    (bucket ``i`` is worker ``i``'s slice of the frontier), so empties are
    kept.  Buckets are disjoint, cover the input, and are identical in every
    process that evaluates this function on the same codes.
    """
    buckets = [array("q") for _ in range(max(1, k))]
    n = len(buckets)
    if n == 1:
        buckets[0].extend(codes)
        return buckets
    for c in codes:
        buckets[mix64(c) % n].append(c)
    return buckets


def _subsequence_set(elements: tuple[Value, ...]) -> SetVal:
    """A ``SetVal`` from an already-canonical element tuple, skipping the sort.

    Sound only for subsequences of a canonical element tuple (deduplicated,
    sorted by ``sort_key``) -- exactly what partitioning produces.
    """
    s = SetVal.__new__(SetVal)
    object.__setattr__(s, "elements", elements)
    object.__setattr__(s, "_hash", None)
    return s


def hash_partition(
    s: SetVal,
    k: int,
    key_of: Optional[Callable[[Value], Value]] = None,
) -> list[SetVal]:
    """Split a canonical set into at most ``k`` disjoint canonical shards.

    Elements are assigned by ``structural_hash(element) % k`` -- or, when
    ``key_of`` is given, by the hash of ``key_of(element)``, which is how a
    join side is *aligned*: partitioning both sides of an equi-join by their
    join keys sends every matching pair to the same shard index, so each
    worker builds and probes only its aligned fraction of the index.

    Empty shards are dropped (their union contributes nothing and their
    evaluation would waste a task); the empty input is returned as the single
    shard ``[{}]`` so a shard-local plan still runs exactly once -- needed
    because a union-distributive query may contain loop-invariant operands
    that contribute to the result even on empty input.
    """
    if k <= 1 or len(s.elements) <= 1:
        return [s]
    buckets: list[list[Value]] = [[] for _ in range(k)]
    if key_of is None:
        for e in s.elements:
            buckets[structural_hash(e) % k].append(e)
    else:
        for e in s.elements:
            buckets[structural_hash(key_of(e)) % k].append(e)
    return [_subsequence_set(tuple(b)) for b in buckets if b]


def hash_partition_aligned(
    s: SetVal,
    k: int,
    key_of: Callable[[Value], Value],
) -> list[SetVal]:
    """Partition by key hash into *exactly* ``k`` shards, empties kept.

    The co-partitioned join protocol: both sides of an equi-join are
    partitioned with the same ``k`` and their respective key functions, so
    shard index ``i`` of the left side joins against shard index ``i`` of
    the right side and no cross-shard pair can match.  Positions matter, so
    empty shards are preserved (the caller skips aligned pairs whose left
    side is empty).
    """
    buckets: list[list[Value]] = [[] for _ in range(max(1, k))]
    for e in s.elements:
        buckets[structural_hash(key_of(e)) % len(buckets)].append(e)
    return [_subsequence_set(tuple(b)) for b in buckets]
