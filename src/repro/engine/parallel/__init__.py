"""The data-parallel sharded backend (``Engine(backend="parallel")``).

The source paper proves NRA queries parallelizable in principle (NC on a
PRAM); this package makes the claim operational.  Four layers:

* :mod:`~repro.engine.parallel.partition` -- deterministic structural
  hashing and hash-sharding of canonical sets (shards are canonical
  subsequences, built without re-sorting);
* :mod:`~repro.engine.parallel.sharder` -- the syntactic analysis deciding
  *what* may be sharded: union-distributive queries (shard the input, union
  the shard results) and semi-naive evaluable fixpoints (shard the frontier,
  re-shard it every round);
* :mod:`~repro.engine.parallel.scheduler` -- the worker pool: isolated
  vectorized evaluators (private intern tables, translation caches) driven
  by a thread pool, with a process-pool option for CPU-bound shards on
  multi-core machines;
* :mod:`~repro.engine.parallel.executor` -- :class:`ParallelEvaluator`, the
  backend proper: analysis, dispatch, union combiners, driver fallback.

See the "parallel backend" section of DESIGN.md for the semantics of the
combiners, the frontier re-sharding, and an honest account of when this
backend loses to the single-threaded vectorized one.
"""

from .executor import ParallelEvaluator, ParStats
from .partition import hash_partition, structural_hash
from .scheduler import POOL_KINDS, ShardTask, ShardWorker, WorkerPool
from .sharder import FixpointSpec, JoinSpec, ShardSpec, analyze, distributes_over_union

__all__ = [
    "ParallelEvaluator",
    "ParStats",
    "hash_partition",
    "structural_hash",
    "POOL_KINDS",
    "ShardTask",
    "ShardWorker",
    "WorkerPool",
    "ShardSpec",
    "FixpointSpec",
    "JoinSpec",
    "analyze",
    "distributes_over_union",
]
