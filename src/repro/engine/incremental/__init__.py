"""Incremental view maintenance: delta-compiled standing queries.

The constructs the engine already exploits for *evaluation* -- monotone,
union-distributive operators (semi-naive fixpoints in
:mod:`repro.engine.vectorized`, shardable unions in
:mod:`repro.engine.parallel`) -- are exactly the ones that make query results
*incrementally maintainable*: a small change to a base collection induces a
derivable change to the result.  This package closes that loop:

* :mod:`~repro.engine.incremental.changeset` --
  :class:`Changeset`, the normalized (net, disjoint) unit of mutation
  produced by mutable :class:`~repro.api.catalog.Database` objects;
* :mod:`~repro.engine.incremental.delta` -- the delta-rule compiler: one
  maintenance rule per accepted operator shape (linear ``ext`` family,
  bilinear joins, counted unions, semi-naive fixpoint continuation), each a
  syntactic theorem, with an explicit per-node ``recompute`` fallback for
  everything else;
* :mod:`~repro.engine.incremental.view` -- :class:`MaterializedView`: the
  runtime that holds support counts, incrementally maintained join indexes
  and fixpoint accumulators, and applies changesets.

The client surface is :meth:`repro.api.session.Session.materialize` plus the
mutation methods of :class:`repro.api.catalog.Database`;
``Engine.explain_plan(query, backend="incremental")`` shows the maintenance
plan a view would use.  See DESIGN.md (incremental view maintenance) for the
delta rules and the cost model.
"""

from .changeset import Changeset, CollectionDelta

# The analysis and runtime halves import the rewriter and the vectorized
# compiler, which sit downstream of repro.workloads -> repro.api.catalog ->
# this package's changeset module; loading them lazily (PEP 562) keeps that
# chain acyclic while `from repro.engine.incremental import MaterializedView`
# still works.
_LAZY = {
    "DELTA_KINDS": "delta",
    "DeltaOp": "delta",
    "derive": "delta",
    "maintenance_plan": "delta",
    "MaterializedView": "view",
    "ViewDelta": "view",
    "ViewStats": "view",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


__all__ = [
    "Changeset",
    "CollectionDelta",
    "DELTA_KINDS",
    "DeltaOp",
    "derive",
    "maintenance_plan",
    "MaterializedView",
    "ViewDelta",
    "ViewStats",
]
