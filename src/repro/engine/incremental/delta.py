"""Delta compilation: NRA view templates to maintenance plans.

Given a view template (an NRA expression whose free variables include the
names of *mutable base collections*), :func:`derive` produces a
:class:`DeltaOp` tree -- one node per maintainable operator -- that
:class:`~repro.engine.incremental.view.MaterializedView` executes against
changesets.  The discipline mirrors the sharder's
(:mod:`repro.engine.parallel.sharder`): a delta rule is accepted only where
it is a **syntactic theorem** of the pure, total object language, and
everything else degrades to an explicit ``recompute`` node rather than an
approximate rule.  The accepted shapes, and the rules they get:

``base``
    ``Var(c)`` for a mutable collection ``c``.  The changeset *is* the
    delta: ``+1`` per inserted element, ``-1`` per deleted one (sound
    because :class:`~repro.engine.incremental.changeset.Changeset` carries
    net, disjoint deltas).

``map`` / ``select`` / ``ext``
    ``ext(\\x. body)(src)`` where ``body`` mentions no mutable collection:
    ``ext`` distributes over union in its source, so each source delta
    element ``x`` contributes ``body(x)`` with the delta's sign.  The three
    kinds differ only in how the per-element set is produced (the same
    classification the vectorized compiler uses); all are **linear** rules
    over support counts.

``join``
    the equi-join nest :func:`repro.engine.vectorized.compiler.match_join`
    recognises, with keys and output pure in their own side.  **Bilinear**
    rule ``delta(L >< R) = dL >< R_old  U  L_new >< dR`` over incrementally
    maintained hash indexes on both sides.

``union``
    linear in both operands; support counts make an element contributed by
    both sides survive the deletion of one.

``fixpoint``
    ``apply(loop/log_loop(step), (ctrl, base))`` where the step passes the
    inflationary + union-distributive analysis of the vectorized backend
    (:func:`~repro.engine.vectorized.compiler.delta_terms` -- the *same*
    analysis that gates semi-naive execution, so a view is fixpoint-
    maintainable iff its loop runs semi-naively).  Insertions are maintained
    by semi-naive **continuation** from the new frontier; deletions by
    **delete/rederive** (DRed) -- over-delete every derivation through a
    deleted element, re-prove the still-supported survivors, continue
    semi-naively (the ``ivm-dred-*`` nodes under the fixpoint in the
    rendered plan).  When the step is additionally the **bilinear
    self-join** shape ``\\v. v U (v >< v)`` (the library's ``fix()``), the
    view keeps counted two-sided hash indexes over the fixpoint itself, so
    both DRed passes cost the derivation cone, never a full re-join; other
    accepted steps run DRed over the generic frontier terms.  Both passes
    are sound for exactly the accepted grammar, which is why no *extra*
    analysis gates them: a shape that compiles to ``fixpoint`` is
    deletion-maintainable, and a shape that does not never reaches DRed.

``static``
    any subexpression mentioning no mutable collection: evaluated once,
    never re-derived.

``recompute``
    everything else (difference/intersection bodies, correlated inner
    sources, steps that fail the inflationary analysis, keys that mix
    sides, ...): the node re-evaluates its subtree through the engine's
    vectorized compiler on every relevant commit and emits the diff as its
    delta, so a single awkward operator degrades one node, not the view.

:func:`maintenance_plan` renders the same tree as a
:class:`~repro.engine.vectorized.plan.PlanNode` (ops ``ivm-*``) for
``Engine.explain_plan(backend="incremental")`` and the strategy-selection
tests.  Compilation is pure analysis: no state is allocated here (that is
:mod:`repro.engine.incremental.view`'s job) and nothing is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...nra import ast
from ...nra.ast import Expr, free_variables, fresh_name, substitute
from ..rewrite import is_inflationary_step
from ..vectorized.compiler import delta_terms, match_join
from ..vectorized.plan import PlanNode, node

#: The maintenance-rule vocabulary (``DeltaOp.kind`` ranges over these).
DELTA_KINDS = (
    "static", "base", "map", "select", "ext", "join", "union",
    "fixpoint", "recompute",
)


@dataclass(frozen=True)
class DeltaOp:
    """One node of a compiled maintenance plan (pure description, no state)."""

    kind: str
    expr: Expr
    children: tuple["DeltaOp", ...] = ()
    #: ``base``: the collection name.
    source: str = ""
    #: ``map``/``select``/``ext``: the bound element variable and set-valued body.
    var: str = ""
    body: Optional[Expr] = None
    #: ``join``: bound variables, key expressions, output expression.  A
    #: ``fixpoint`` whose step is the bilinear self-join shape (``fix()``'s
    #: repeated squaring) carries the same fields for its indexed strategy;
    #: they stay at their defaults for other accepted step shapes.
    rvar: str = ""
    lkey: Optional[Expr] = None
    rkey: Optional[Expr] = None
    out: Optional[Expr] = None
    #: ``fixpoint``: the step lambda, the frontier variable, the frontier terms.
    step: Optional[ast.Lambda] = None
    delta_var: str = ""
    terms: tuple[Expr, ...] = field(default=())

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()

    def kinds(self) -> set[str]:
        """Every rule kind occurring in the plan (for strategy assertions)."""
        return {op.kind for op in self.walk()}

    def maintainable(self) -> bool:
        """True iff no node of the plan is a ``recompute`` fallback."""
        return "recompute" not in self.kinds()


def _bases_in(e: Expr, bases: frozenset[str]) -> frozenset[str]:
    return free_variables(e) & bases


def derive(e: Expr, bases: frozenset[str]) -> DeltaOp:
    """Compile the delta-maintenance plan for ``e`` over mutable ``bases``."""
    if not _bases_in(e, bases):
        return DeltaOp("static", e)
    if isinstance(e, ast.Var):
        return DeltaOp("base", e, source=e.name)
    if isinstance(e, ast.Union):
        return DeltaOp("union", e, (derive(e.left, bases), derive(e.right, bases)))
    if isinstance(e, ast.Apply):
        if isinstance(e.func, ast.Lambda):
            # A let-binding: inline it.  Duplicated occurrences are analysed
            # (and maintained) per occurrence, which is correct -- support
            # counts are per-node -- just not shared.
            return derive(substitute(e.func.body, e.func.var, e.arg), bases)
        if isinstance(e.func, ast.Ext) and isinstance(e.func.func, ast.Lambda):
            return _derive_ext(e, bases)
        if isinstance(e.func, (ast.Loop, ast.LogLoop)) and isinstance(e.arg, ast.Pair):
            fix = _derive_fixpoint(e, bases)
            if fix is not None:
                return fix
    return DeltaOp("recompute", e)


def _derive_ext(e: ast.Apply, bases: frozenset[str]) -> DeltaOp:
    f: ast.Lambda = e.func.func  # type: ignore[union-attr]
    src = e.arg
    var, body = f.var, f.body

    join = match_join(var, body)
    if join is not None:
        rvar, lkey, rkey, out, inner_src = join
        side_pure = (
            not ((free_variables(lkey) - {var}) & bases)
            and not ((free_variables(rkey) - {rvar}) & bases)
            and not ((free_variables(out) - {var, rvar}) & bases)
        )
        if side_pure:
            return DeltaOp(
                "join",
                e,
                (derive(src, bases), derive(inner_src, bases)),
                var=var,
                rvar=rvar,
                lkey=lkey,
                rkey=rkey,
                out=out,
            )
        return DeltaOp("recompute", e)

    if (free_variables(body) - {var}) & bases:
        # The body itself reads a mutable collection: per-element
        # contributions are no longer a pure function of the element.
        return DeltaOp("recompute", e)
    if isinstance(body, ast.Singleton):
        kind = "map"
    elif (
        isinstance(body, ast.If)
        and (
            (isinstance(body.then, ast.Singleton) and isinstance(body.orelse, ast.EmptySet))
            or (isinstance(body.orelse, ast.Singleton) and isinstance(body.then, ast.EmptySet))
        )
    ):
        kind = "select"
    else:
        kind = "ext"
    return DeltaOp(kind, e, (derive(src, bases),), var=var, body=body)


def _derive_fixpoint(e: ast.Apply, bases: frozenset[str]) -> Optional[DeltaOp]:
    step = e.func.step  # type: ignore[union-attr]
    ctrl, base_expr = e.arg.fst, e.arg.snd  # type: ignore[union-attr]
    if not isinstance(step, ast.Lambda) or not is_inflationary_step(step):
        return None
    if (free_variables(step.body) - {step.var}) & bases:
        # The step reads a mutable collection beyond the accumulator: a
        # commit would change the step function itself, not just the seed.
        return None
    if _bases_in(ctrl, bases) != _bases_in(base_expr, bases):
        # The iteration budget must read exactly the collections the seed
        # reads.  A budget over extra collections could change without the
        # continuation seeing it; a budget over *fewer* (e.g. a constant
        # control set) stays fixed while the data grows, so a cold run's
        # round count can stop short of the fixpoint the continuation
        # reaches -- the build-time verification would pass on small data
        # and diverge later.  The library's ``fix()`` shape (control =
        # field of the seed relation) satisfies this exactly.
        return None
    dv = fresh_name("ivmdelta")
    terms = delta_terms(step.body, step.var, dv)
    if terms is None:
        return None
    join = _match_self_join(step)
    if join is not None:
        lvar, rvar, lkey, rkey, out = join
        return DeltaOp(
            "fixpoint",
            e,
            (derive(base_expr, bases),),
            step=step,
            delta_var=dv,
            terms=tuple(terms),
            var=lvar,
            rvar=rvar,
            lkey=lkey,
            rkey=rkey,
            out=out,
        )
    return DeltaOp(
        "fixpoint",
        e,
        (derive(base_expr, bases),),
        step=step,
        delta_var=dv,
        terms=tuple(terms),
    )


def _match_self_join(step: ast.Lambda) -> Optional[tuple[str, str, Expr, Expr, Expr]]:
    """Recognise the bilinear self-join step ``\\v. v U (v >< v)``.

    The shape the library's ``fix()`` emits (repeated-squaring transitive
    closure): a union of the accumulator with an equi-join of the
    accumulator against itself.  For this shape the view keeps **two-sided
    hash indexes and per-output support counts over the fixpoint itself**,
    so deletion maintenance walks the derivation cone by index probes and
    rederives by remaining-support counts instead of re-running the step
    body (see ``MaterializedView._ijoin_dred``).  Returns
    ``(lvar, rvar, lkey, rkey, out)`` or ``None``; a miss is not an error --
    the generic frontier-term DRed still applies.
    """
    body = step.body
    if not isinstance(body, ast.Union):
        return None
    for ident, joined in ((body.left, body.right), (body.right, body.left)):
        if not (isinstance(ident, ast.Var) and ident.name == step.var):
            continue
        if not (
            isinstance(joined, ast.Apply)
            and isinstance(joined.func, ast.Ext)
            and isinstance(joined.func.func, ast.Lambda)
            and isinstance(joined.arg, ast.Var)
            and joined.arg.name == step.var
        ):
            continue
        f = joined.func.func
        m = match_join(f.var, f.body)
        if m is None:
            continue
        rvar, lkey, rkey, out, inner_src = m
        if not (isinstance(inner_src, ast.Var) and inner_src.name == step.var):
            continue
        if step.var in (
            free_variables(lkey) | free_variables(rkey) | free_variables(out)
        ):
            continue  # a key reading the accumulator defeats the indexes
        return f.var, rvar, lkey, rkey, out
    return None


# ---------------------------------------------------------------------------
# Explain rendering
# ---------------------------------------------------------------------------

def _plan_of(op: DeltaOp) -> PlanNode:
    detail = ""
    annotations: tuple[str, ...] = ()
    children = [_plan_of(c) for c in op.children]
    if op.kind == "base":
        detail = op.source
    elif op.kind in ("map", "select", "ext"):
        detail = op.var
        annotations = ("counted",)
    elif op.kind == "join":
        detail = f"{op.var} x {op.rvar}"
        annotations = ("bilinear", "indexed")
    elif op.kind == "union":
        annotations = ("counted",)
    elif op.kind == "fixpoint":
        detail = f"{len(op.terms)} frontier terms"
        annotations = ("semi-naive continuation", "delete-rederive")
        # The deletion strategy, rendered as explicit sub-steps.  The
        # bilinear self-join step (fix()'s repeated squaring) keeps counted
        # two-sided indexes over the fixpoint itself: the over-deletion
        # sweep walks the derivation cone by index probes and rederivation
        # reads the remaining support counts.  Other accepted steps reuse
        # the continuation's frontier terms for the sweep and re-prove
        # survivors' one-step consequences with the step body.
        if op.lkey is not None:
            annotations += ("bilinear-indexed",)
            children.append(node("ivm-dred-overdelete",
                                 "indexed derivation cone, counts decremented",
                                 annotations=("derivation-cone", "indexed")))
            children.append(node("ivm-dred-rederive",
                                 "surviving support counts + seed, then continuation",
                                 annotations=("semi-naive continuation",)))
        else:
            children.append(node("ivm-dred-overdelete",
                                 f"{len(op.terms)} frontier terms over old fixpoint",
                                 annotations=("derivation-cone",)))
            children.append(node("ivm-dred-rederive",
                                 "seed + one-step support, then continuation",
                                 annotations=("semi-naive continuation",)))
    elif op.kind == "recompute":
        annotations = ("fallback",)
    return node(f"ivm-{op.kind}", detail, *children, annotations=annotations)


def maintenance_plan(e: Expr, bases: Optional[frozenset[str]] = None) -> PlanNode:
    """The maintenance-plan tree for ``e`` (``ivm-*`` ops, for explain/tests).

    ``bases`` defaults to every free variable of the expression -- the
    pessimistic view in which any named collection may be mutated, which is
    what ``Engine.explain_plan(backend="incremental")`` shows.
    """
    if bases is None:
        bases = free_variables(e)
    return _plan_of(derive(e, frozenset(bases)))
