"""Changesets: the normalized unit of database mutation.

A :class:`Changeset` records, per collection, which elements were **inserted**
and which were **deleted** by one commit.  It is the value that flows from
mutable :class:`~repro.api.catalog.Database` objects into
:class:`~repro.engine.incremental.view.MaterializedView.apply`, and its
invariants are what keep delta maintenance sound without re-deriving them at
every operator:

* **net effect** -- inserts are elements that were genuinely absent before
  the commit and deletes are elements that were genuinely present; re-adding
  a present row or removing an absent one is a no-op and never appears here
  (``Database.insert``/``delete`` normalize against the live collection);
* **disjointness** -- no element appears on both sides for one collection;
* **canonical values** -- every element is a complex object
  :class:`~repro.objects.values.Value` (views re-intern them into their
  engine's table on arrival).

With those invariants, the delta a changeset induces at a base-collection
leaf of a maintenance plan is exactly ``+1`` per insert and ``-1`` per
delete, and every operator above the leaf can propagate signed support
counts without consulting the database again.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ...objects.values import Value, from_python


class CollectionDelta:
    """Inserted and deleted elements of one collection (net, disjoint)."""

    __slots__ = ("inserts", "deletes")

    def __init__(
        self,
        inserts: Iterable[Value] = (),
        deletes: Iterable[Value] = (),
    ) -> None:
        self.inserts: tuple[Value, ...] = tuple(inserts)
        self.deletes: tuple[Value, ...] = tuple(deletes)

    def __bool__(self) -> bool:
        return bool(self.inserts or self.deletes)

    def __repr__(self) -> str:
        return f"(+{len(self.inserts)}/-{len(self.deletes)})"


class Changeset:
    """One commit's worth of collection deltas, keyed by collection name."""

    def __init__(self, deltas: Optional[dict[str, CollectionDelta]] = None) -> None:
        self._deltas: dict[str, CollectionDelta] = {
            name: d for name, d in (deltas or {}).items() if d
        }

    # -- construction ----------------------------------------------------------

    @classmethod
    def of(cls, **collections) -> "Changeset":
        """``Changeset.of(edges=([(0, 9)], [(3, 4)]))``: (inserts, deletes) pairs.

        Plain python rows are converted with
        :func:`~repro.objects.values.from_python`.  This builder does *not*
        normalize against any database state -- pass the result to
        :meth:`~repro.api.catalog.Database.apply`, which does.
        """
        deltas = {}
        for name, (ins, dels) in collections.items():
            deltas[name] = CollectionDelta(
                (v if isinstance(v, Value) else from_python(v) for v in ins),
                (v if isinstance(v, Value) else from_python(v) for v in dels),
            )
        return cls(deltas)

    # -- views -----------------------------------------------------------------

    def collections(self) -> list[str]:
        """The collections this changeset touches, sorted."""
        return sorted(self._deltas)

    def touches(self, names: Iterable[str]) -> bool:
        """True iff the changeset mutates any of the named collections."""
        return any(name in self._deltas for name in names)

    def get(self, name: str) -> Optional[CollectionDelta]:
        return self._deltas.get(name)

    def __getitem__(self, name: str) -> CollectionDelta:
        return self._deltas[name]

    def __contains__(self, name: str) -> bool:
        return name in self._deltas

    def __iter__(self) -> Iterator[str]:
        return iter(self._deltas)

    def __bool__(self) -> bool:
        return bool(self._deltas)

    def rows_touched(self) -> int:
        """Total inserts plus deletes, over all collections."""
        return sum(len(d.inserts) + len(d.deletes) for d in self._deltas.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}{d!r}" for n, d in sorted(self._deltas.items()))
        return f"Changeset({inner})"
